//! The simulator execution core.
//!
//! Per-op semantics live in one shared executor ([`Exec`]); two
//! schedulers drive it:
//!
//! * **event-driven** (the default, [`Simulator::run`]) — an explicit
//!   ready-queue of runnable ranks plus wakeup bookkeeping indexed by
//!   what a rank is blocked on (a `(src, dst)` channel, the open
//!   collective instance, or a rendezvous match), so completing an op
//!   re-enqueues only the specific ranks it can unblock;
//! * **polling** ([`Simulator::run_polling`]) — the original
//!   O(rounds × n) engine this one replaced, preserved verbatim in the
//!   [`crate::polling`] module (HashMap-keyed channels and all) as the
//!   reference implementation for the equivalence harness and the perf
//!   baseline the bench runner measures against.
//!
//! Both engines execute the exact same op sequence in the exact same
//! order, so their traces, statistics, and diagnostics are bit-identical
//! (see DESIGN.md, "Simulator scheduling", for the argument; the
//! equivalence harness under `tests/` locks it empirically).

use std::collections::VecDeque;

use limba_model::ActivityKind;
use limba_trace::{Event, ReducedTrace, SalvagedTrace, Trace, TraceBuilder};

use crate::balance::{BalancePlan, BalanceReport, BalanceState, HostView};
use crate::collectives::collective_cost;
use crate::faults::{FaultPlan, FaultReport, FaultState};
use crate::{CollectiveKind, MachineConfig, Op, Program, SimError};

/// Maximum number of stuck ranks listed individually in a deadlock
/// report; the rest are summarized as a count so pathological deadlocks
/// on large machines don't allocate unboundedly.
const DEADLOCK_REPORT_CAP: usize = 8;

/// Formats the capped deadlock report from `(rank, pc)` pairs of stuck
/// ranks, in rank order. Shared by both schedulers so their diagnostics
/// are identical by construction.
pub(crate) fn format_deadlock_detail(
    program: &Program,
    stuck: impl Iterator<Item = (usize, usize)>,
) -> String {
    let stuck: Vec<(usize, usize)> = stuck.collect();
    let mut detail = stuck
        .iter()
        .take(DEADLOCK_REPORT_CAP)
        .map(|&(r, pc)| format!("rank {r} stuck at op {:?} (pc {pc})", program.ops(r)[pc]))
        .collect::<Vec<_>>()
        .join("; ");
    if stuck.len() > DEADLOCK_REPORT_CAP {
        use std::fmt::Write as _;
        let _ = write!(
            detail,
            "; ... and {} more stuck ranks",
            stuck.len() - DEADLOCK_REPORT_CAP
        );
    }
    detail
}

/// Cooperative interruption budget for a single simulation run,
/// checked inside both engines' scheduling loops.
///
/// All three limits are optional; the default budget is unlimited. A
/// tripped budget aborts the run with [`SimError::Interrupted`] and
/// discards all partial state — a budgeted run either completes
/// bit-identically to an unbudgeted one or produces no output at all,
/// which is what lets a supervisor re-run interrupted work later with
/// byte-identical results.
///
/// Op-count budgets are deterministic: both engines execute exactly the
/// same program ops, so `max_ops` either interrupts on every engine and
/// thread count or on none. Deadlines and cancellation are wall-clock
/// signals and inherently racy; they decide only *whether* a run
/// finishes, never what a finished run contains.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Abort after this many executed program ops.
    pub max_ops: Option<u64>,
    /// Abort once this wall-clock instant passes.
    pub deadline: Option<std::time::Instant>,
    /// Abort when this token is cancelled.
    pub cancel: Option<limba_par::CancelToken>,
}

/// How many executed ops pass between wall-clock/cancellation polls
/// (the op counter itself is checked on every op). The first op always
/// polls, so even tiny programs notice a pre-tripped token.
const BUDGET_POLL_INTERVAL: u64 = 16;

impl RunBudget {
    /// An unlimited budget: never interrupts.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Whether no limit is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.max_ops.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// Polls the budget after the `ops_done`-th executed op; returns the
    /// interruption error when a limit has fired.
    pub(crate) fn check(&self, ops_done: u64) -> Option<SimError> {
        if let Some(max) = self.max_ops {
            if ops_done > max {
                return Some(SimError::Interrupted {
                    detail: format!("op budget of {max} exhausted after {ops_done} ops"),
                });
            }
        }
        if ops_done % BUDGET_POLL_INTERVAL == 1 {
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() >= deadline {
                    return Some(SimError::Interrupted {
                        detail: format!("wall-clock deadline exceeded after {ops_done} ops"),
                    });
                }
            }
            if let Some(cancel) = &self.cancel {
                if cancel.is_cancelled() {
                    return Some(SimError::Interrupted {
                        detail: format!("cancelled after {ops_done} ops"),
                    });
                }
            }
        }
        None
    }
}

/// Summary statistics of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Per-rank completion time in seconds.
    pub rank_end_times: Vec<f64>,
    /// Latest completion time over all ranks (the run's makespan).
    pub makespan: f64,
    /// Total point-to-point messages delivered.
    pub messages: u64,
    /// Total point-to-point payload bytes delivered.
    pub bytes: u64,
    /// Number of collective operations completed.
    pub collectives: u64,
}

/// Output of a simulation: the recorded trace plus summary statistics.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The event trace of the run.
    pub trace: Trace,
    /// Summary statistics.
    pub stats: SimStats,
    /// What the fault plan did to this run; empty for unfaulted runs.
    pub faults: FaultReport,
    /// What the balance plan did to this run; inactive (`policy: None`)
    /// for unbalanced runs.
    pub balance: BalanceReport,
}

impl SimOutput {
    /// Reduces the trace to measurement matrices (see
    /// [`limba_trace::reduce`]).
    ///
    /// Simulator-produced traces are well-formed by construction, so
    /// this takes the fast path that skips structural re-validation
    /// ([`limba_trace::reduce_well_formed`]). For traces loaded from
    /// external files, use the checked [`limba_trace::reduce`] — or
    /// [`SimOutput::reduce_checked`] when the output was deserialized
    /// rather than produced by [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Propagates reduction errors; a trace produced by the simulator
    /// always reduces, so failures indicate a bug.
    pub fn reduce(&self) -> Result<ReducedTrace, SimError> {
        Ok(limba_trace::reduce_well_formed(&self.trace)?)
    }

    /// Like [`SimOutput::reduce`], but re-validates the trace first and
    /// *salvages* truncated per-rank streams instead of erroring. Use
    /// when the trace did not come straight out of an unfaulted
    /// [`Simulator::run`] — it round-tripped through an untrusted file,
    /// or the run was fault-injected and some ranks crashed mid-region.
    ///
    /// The result carries per-rank coverage
    /// ([`limba_trace::RankCoverage`]) flagging every rank whose stream
    /// ended with regions still open, so downstream views can mark
    /// incomplete data instead of silently under-reporting it.
    ///
    /// # Errors
    ///
    /// Returns a structured [`limba_trace::TraceError`] naming the
    /// offending event index and rank when the trace is corrupt (not
    /// merely truncated), and propagates reduction errors.
    pub fn reduce_checked(&self) -> Result<SalvagedTrace, SimError> {
        Ok(limba_trace::reduce_checked(&self.trace)?)
    }
}

/// In-flight message on one `(src, dst)` channel.
#[derive(Debug, Clone, Copy)]
enum MsgInFlight {
    /// Sender already finished its side; payload arrives at `arrival`.
    Eager { arrival: f64, bytes: u64 },
    /// Sender is blocked waiting for the receiver (rendezvous protocol);
    /// it became ready at `sender_ready`.
    Rendezvous { sender_ready: f64, bytes: u64 },
}

/// Outstanding nonblocking request of one rank.
#[derive(Debug, Clone, Copy)]
enum Outstanding {
    /// Nonblocking send: the local buffer is free at this time.
    SendDone(f64),
    /// Nonblocking receive posted at this time, waiting for `src`.
    RecvPending { src: usize, posted: f64 },
}

#[derive(Debug, Clone, Default)]
struct RankState {
    pc: usize,
    time: f64,
    /// Set when a Recv was reached but could not complete (posted time).
    recv_posted: Option<f64>,
    /// Set when a Wait on a pending receive was reached but could not
    /// complete (the time the wait started).
    wait_started: Option<f64>,
    /// True when the current Send op is already queued as a rendezvous.
    send_registered: bool,
    /// Set when waiting inside a collective (arrival time).
    collective_arrived: Option<f64>,
    /// Number of collective calls completed so far.
    collective_counter: usize,
    /// Outstanding nonblocking requests by handle. A flat vector: ranks
    /// keep a handful of requests in flight, so linear scans beat
    /// hashing on the hot path.
    handles: Vec<(u32, Outstanding)>,
}

/// What a blocked rank is waiting on — the wakeup index of the
/// event-driven scheduler. A rank blocks on at most one thing at a
/// time, so a per-rank slot doubles as the per-resource waiter list:
/// only `dst` can ever wait on channel `(src, dst)`.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BlockedOn {
    /// Runnable or finished: not waiting on anything.
    Nothing,
    /// Waiting for a message on this dense channel index.
    Channel(usize),
    /// A registered rendezvous send waiting for the receiver to match.
    Match,
    /// Waiting inside the open collective instance.
    Collective,
}

/// Outcome of attempting one op of one rank.
enum StepOutcome {
    /// The op completed; the rank may run its next op.
    Ran,
    /// The rank cannot progress until the given resource fires.
    Blocked(BlockedOn),
    /// The rank's program is finished.
    Done,
    /// The fault plan crashed the rank at this op boundary; it executes
    /// nothing further and its trace is truncated here.
    Crashed,
}

/// The one reusable collective instance. Collective call `k` completes
/// atomically for every rank before any rank can reach call `k + 1`, so
/// at most one instance is ever open; this slot recycles its arrival
/// buffer across instances (a free list of size one) instead of growing
/// a per-instance vector for the life of the run.
#[derive(Debug)]
struct CollectiveSlot {
    active: bool,
    index: usize,
    kind: CollectiveKind,
    max_bytes: u64,
    arrivals: Vec<Option<f64>>,
    arrived: usize,
}

/// A fixed-universe set of rank indices backed by `u64` words, drained
/// in ascending order with `trailing_zeros` scans. Insert and remove
/// are O(1) and idempotent; advancing past a run of absent ranks costs
/// one word read per 64 ranks, where the polling engine pays a full
/// re-attempt per blocked rank.
#[derive(Debug)]
struct RankSet {
    words: Vec<u64>,
    len: usize,
}

impl RankSet {
    fn new(n: usize) -> Self {
        RankSet {
            words: vec![0; n.div_ceil(64)],
            len: 0,
        }
    }

    fn insert(&mut self, i: usize) {
        let (w, bit) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & bit == 0 {
            self.words[w] |= bit;
            self.len += 1;
        }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes and returns the smallest member at or after `from`.
    fn pop_at_or_after(&mut self, from: usize) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mut w = from / 64;
        let mut word = match self.words.get(w) {
            Some(&word) => word & (!0u64 << (from % 64)),
            None => return None,
        };
        loop {
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                self.words[w] &= !(1u64 << bit);
                self.len -= 1;
                return Some(w * 64 + bit);
            }
            w += 1;
            word = match self.words.get(w) {
                Some(&word) => word,
                None => return None,
            };
        }
    }
}

/// The executor: rank states, flattened hot-path structures, and the
/// per-op semantics the event-driven scheduler drives.
struct Exec<'a> {
    config: &'a MachineConfig,
    program: &'a Program,
    n: usize,
    states: Vec<RankState>,
    /// In-flight messages, dense-indexed `src * n + dst` through a
    /// two-level scheme: `channel_index[ch]` holds `slot + 1` into the
    /// compact `channel_pool` (0 = channel never used). The index is a
    /// zero-filled `Vec<u32>` — a calloc'd 4·n² bytes the allocator
    /// hands back without touching pages — so a 256-rank run does not
    /// pay to construct 65 536 deques for the few hundred channels its
    /// communication pattern actually uses.
    channel_index: Vec<u32>,
    channel_pool: Vec<VecDeque<MsgInFlight>>,
    coll: CollectiveSlot,
    builder: TraceBuilder,
    stats: SimStats,
    /// Wakeup index: what each rank is blocked on.
    blocked: Vec<BlockedOn>,
    /// Ready ranks of the running round, drained in ascending order.
    current: RankSet,
    /// Ranks woken for the next round (woken by a rank at or after
    /// their own index); swapped into `current` at round turnover.
    next_round: RankSet,
    /// Dense per-link `(latency, bandwidth)`, `src * n + dst`; only
    /// materialized when the machine has per-link overrides.
    links: Option<Vec<(f64, f64)>>,
    /// Active fault injection, `None` for unfaulted runs (and for empty
    /// plans, so the no-fault arithmetic stays bit-exact).
    faults: Option<FaultState>,
    /// Active dynamic balancing, `None` for unbalanced runs (the
    /// default compute arithmetic stays bit-exact).
    balance: Option<BalanceState>,
    /// Interruption budget, `None` for unbudgeted runs (no per-op
    /// bookkeeping on the default path).
    budget: Option<&'a RunBudget>,
    /// Program ops executed so far; drives the budget checks.
    ops_done: u64,
}

impl<'a> Exec<'a> {
    fn new(
        config: &'a MachineConfig,
        program: &'a Program,
        plan: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let p = config.processors();
        if program.ranks() > p {
            return Err(SimError::RankOutOfRange {
                rank: program.ranks() - 1,
                ranks: p,
            });
        }
        let n = program.ranks();
        let faults = match plan {
            Some(plan) if !plan.is_empty() => {
                plan.validate(n)?;
                Some(FaultState::new(plan, n))
            }
            _ => None,
        };
        let balance = match balance {
            Some(plan) => {
                plan.validate()?;
                Some(BalanceState::new(plan, n, config))
            }
            None => None,
        };

        let mut builder = TraceBuilder::new(n);
        builder.reserve_events(program.event_capacity_hint());
        for name in program.region_names() {
            builder.add_region(name.clone());
        }

        let links = if config.has_link_overrides() {
            let mut table = Vec::with_capacity(n * n);
            for src in 0..n {
                for dst in 0..n {
                    table.push((
                        config.link_latency(src, dst),
                        config.link_bandwidth(src, dst),
                    ));
                }
            }
            Some(table)
        } else {
            None
        };

        Ok(Exec {
            config,
            program,
            n,
            states: vec![RankState::default(); n],
            channel_index: vec![0; n * n],
            channel_pool: Vec::new(),
            coll: CollectiveSlot {
                active: false,
                index: 0,
                kind: CollectiveKind::Barrier,
                max_bytes: 0,
                arrivals: vec![None; n],
                arrived: 0,
            },
            builder,
            stats: SimStats {
                rank_end_times: vec![0.0; n],
                makespan: 0.0,
                messages: 0,
                bytes: 0,
                collectives: 0,
            },
            blocked: vec![BlockedOn::Nothing; n],
            current: RankSet::new(n),
            next_round: RankSet::new(n),
            links,
            faults,
            balance,
            budget: None,
            ops_done: 0,
        })
    }

    fn link_latency(&self, src: usize, dst: usize) -> f64 {
        match &self.links {
            Some(table) => table[src * self.n + dst].0,
            None => self.config.latency(),
        }
    }

    fn link_transfer_time(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        let bandwidth = match &self.links {
            Some(table) => table[src * self.n + dst].1,
            None => self.config.bandwidth(),
        };
        bytes as f64 / bandwidth
    }

    /// Transfer time, wire latency, and loss/retry delay of the message
    /// whose transfer starts on `src → dst` at `at`. Fault-adjusted
    /// when a plan is active (consuming one loss-sequence number), the
    /// plain link costs otherwise.
    fn message_costs(&mut self, src: usize, dst: usize, at: f64, bytes: u64) -> (f64, f64, f64) {
        let transfer = self.link_transfer_time(src, dst, bytes);
        let latency = self.link_latency(src, dst);
        match &mut self.faults {
            None => (transfer, latency, 0.0),
            Some(fs) => fs.message_costs(src, dst, at, transfer, latency),
        }
    }

    /// Marks `w` runnable and enqueues it. A rank woken by `running`
    /// lands in the current round when its index is still ahead of the
    /// scan (`w > running` — the polling scan would have reached it
    /// later this round) and in the next round otherwise.
    fn wake(&mut self, w: usize, running: usize) {
        self.blocked[w] = BlockedOn::Nothing;
        if w > running {
            self.current.insert(w);
        } else {
            // Ranks run in ascending order, so every later waker of `w`
            // this round is also ≥ w: once parked for the next round, a
            // rank stays there — exactly when the polling scan would
            // reach it again.
            self.next_round.insert(w);
        }
    }

    /// Head of the deque for dense channel key `ch`, if any.
    fn channel_front(&self, ch: usize) -> Option<MsgInFlight> {
        match self.channel_index[ch] {
            0 => None,
            idx => self.channel_pool[idx as usize - 1].front().copied(),
        }
    }

    /// The deque for dense channel key `ch`, allocating its pool slot on
    /// first use.
    fn channel_mut(&mut self, ch: usize) -> &mut VecDeque<MsgInFlight> {
        let slot = match self.channel_index[ch] {
            0 => {
                self.channel_pool.push(VecDeque::new());
                self.channel_index[ch] = self.channel_pool.len() as u32;
                self.channel_pool.len() - 1
            }
            idx => idx as usize - 1,
        };
        &mut self.channel_pool[slot]
    }

    /// Appends a message to channel `src → dst` and wakes the receiver
    /// if it is blocked on exactly that channel.
    fn push_msg(&mut self, src: usize, dst: usize, msg: MsgInFlight, running: usize) {
        let ch = src * self.n + dst;
        self.channel_mut(ch).push_back(msg);
        if self.blocked[dst] == BlockedOn::Channel(ch) {
            self.wake(dst, running);
        }
    }

    fn handle_get(&self, rank: usize, handle: u32) -> Outstanding {
        self.states[rank]
            .handles
            .iter()
            .find(|(h, _)| *h == handle)
            .map(|(_, o)| *o)
            .expect("validated: handle outstanding")
    }

    fn handle_remove(&mut self, rank: usize, handle: u32) {
        let handles = &mut self.states[rank].handles;
        let i = handles
            .iter()
            .position(|(h, _)| *h == handle)
            .expect("validated: handle outstanding");
        handles.swap_remove(i);
    }

    /// Capped report of every rank that cannot finish: the first
    /// [`DEADLOCK_REPORT_CAP`] stuck ranks in full, the rest as a count.
    fn deadlock_detail(&self) -> String {
        format_deadlock_detail(
            self.program,
            (0..self.n)
                .filter(|&r| self.states[r].pc < self.program.ops(r).len())
                .map(|r| (r, self.states[r].pc)),
        )
    }

    /// Attempts the current op of `rank`. Idempotent while blocked:
    /// registration side effects (posting a receive, queueing a
    /// rendezvous, arriving at a collective) happen on the first
    /// attempt only.
    fn try_op(&mut self, rank: usize) -> Result<StepOutcome, SimError> {
        let ops = self.program.ops(rank);
        if self.states[rank].pc >= ops.len() {
            return Ok(StepOutcome::Done);
        }
        // Crash check at the op boundary: a rank whose local clock has
        // reached its planned crash time executes nothing further. The
        // clock of a blocked rank is frozen, so the decision is stable
        // across re-attempts and identical in both engines.
        if let Some(fs) = &mut self.faults {
            let now = self.states[rank].time;
            if fs.should_crash(rank, now) {
                fs.record_crash(rank, now);
                return Ok(StepOutcome::Crashed);
            }
        }
        let op = ops[self.states[rank].pc];
        let o = self.config.overhead();
        let n = self.n;
        match op {
            Op::Compute { seconds } => {
                self.states[rank].time = match &mut self.balance {
                    // Balancing owns the compute boundary: it may migrate
                    // part of the op and integrates the fault-adjusted
                    // timing itself (identically in both engines).
                    Some(bs) => {
                        let host = HostView {
                            config: self.config,
                            faults: self.faults.as_ref(),
                        };
                        bs.compute(rank, self.states[rank].time, seconds, &host)
                    }
                    None => {
                        let duration = seconds / self.config.cpu_speed(rank);
                        match &self.faults {
                            None => self.states[rank].time + duration,
                            Some(fs) => fs.compute_end(rank, self.states[rank].time, duration),
                        }
                    }
                };
                self.states[rank].pc += 1;
                Ok(StepOutcome::Ran)
            }
            Op::Enter { region } => {
                self.builder
                    .push(Event::enter(self.states[rank].time, rank as u32, region));
                self.states[rank].pc += 1;
                Ok(StepOutcome::Ran)
            }
            Op::Leave { region } => {
                self.builder
                    .push(Event::leave(self.states[rank].time, rank as u32, region));
                self.states[rank].pc += 1;
                Ok(StepOutcome::Ran)
            }
            Op::Send { dst, bytes } => {
                if bytes <= self.config.eager_threshold() {
                    let begin = self.states[rank].time;
                    let (transfer, latency, loss_delay) =
                        self.message_costs(rank, dst, begin, bytes);
                    let end = begin + o + transfer;
                    self.builder.push(Event::begin_activity(
                        begin,
                        rank as u32,
                        ActivityKind::PointToPoint,
                    ));
                    self.builder
                        .push(Event::message_send(begin, rank as u32, dst as u32, bytes));
                    self.builder.push(Event::end_activity(
                        end,
                        rank as u32,
                        ActivityKind::PointToPoint,
                    ));
                    // Lost transmissions retry in the transport after the
                    // local injection, delaying only the arrival.
                    let arrival = end + latency + loss_delay;
                    self.push_msg(rank, dst, MsgInFlight::Eager { arrival, bytes }, rank);
                    self.states[rank].time = end;
                    self.states[rank].pc += 1;
                    self.stats.messages += 1;
                    self.stats.bytes += bytes;
                    Ok(StepOutcome::Ran)
                } else {
                    if !self.states[rank].send_registered {
                        let msg = MsgInFlight::Rendezvous {
                            sender_ready: self.states[rank].time,
                            bytes,
                        };
                        self.states[rank].send_registered = true;
                        self.push_msg(rank, dst, msg, rank);
                    }
                    // Blocked until the receiver performs the match.
                    Ok(StepOutcome::Blocked(BlockedOn::Match))
                }
            }
            Op::Recv { src } => {
                let now = self.states[rank].time;
                let posted = *self.states[rank].recv_posted.get_or_insert(now);
                let ch = src * n + rank;
                let Some(head) = self.channel_front(ch) else {
                    return Ok(StepOutcome::Blocked(BlockedOn::Channel(ch)));
                };
                match head {
                    MsgInFlight::Eager { arrival, bytes } => {
                        self.channel_mut(ch).pop_front();
                        let end = (posted + o).max(arrival);
                        self.builder.push(Event::begin_activity(
                            posted,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.builder
                            .push(Event::message_recv(end, rank as u32, src as u32, bytes));
                        self.builder.push(Event::end_activity(
                            end,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.states[rank].time = end;
                        self.states[rank].recv_posted = None;
                        self.states[rank].pc += 1;
                        Ok(StepOutcome::Ran)
                    }
                    MsgInFlight::Rendezvous {
                        sender_ready,
                        bytes,
                    } => {
                        self.channel_mut(ch).pop_front();
                        let sync = posted.max(sender_ready);
                        // A rendezvous sender is blocked until the
                        // transfer is acknowledged, so retry timeouts
                        // delay its completion too.
                        let (transfer, latency, loss_delay) =
                            self.message_costs(src, rank, sync, bytes);
                        let sender_done = sync + o + transfer + loss_delay;
                        let recv_done = sender_done + latency;
                        // Complete the blocked sender's side.
                        self.builder.push(Event::begin_activity(
                            sender_ready,
                            src as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.builder.push(Event::message_send(
                            sender_ready,
                            src as u32,
                            rank as u32,
                            bytes,
                        ));
                        self.builder.push(Event::end_activity(
                            sender_done,
                            src as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.states[src].time = sender_done;
                        self.states[src].send_registered = false;
                        self.states[src].pc += 1;
                        self.wake(src, rank);
                        // Complete the receive.
                        self.builder.push(Event::begin_activity(
                            posted,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.builder.push(Event::message_recv(
                            recv_done,
                            rank as u32,
                            src as u32,
                            bytes,
                        ));
                        self.builder.push(Event::end_activity(
                            recv_done,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.states[rank].time = recv_done;
                        self.states[rank].recv_posted = None;
                        self.states[rank].pc += 1;
                        self.stats.messages += 1;
                        self.stats.bytes += bytes;
                        Ok(StepOutcome::Ran)
                    }
                }
            }
            Op::Isend { dst, bytes, handle } => {
                // Buffered nonblocking send: the NIC takes over; the
                // local buffer frees after the injection completes.
                let begin = self.states[rank].time;
                let (transfer, latency, loss_delay) = self.message_costs(rank, dst, begin, bytes);
                let issue = begin + o;
                let buffer_free = issue + transfer;
                self.builder.push(Event::begin_activity(
                    begin,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                self.builder
                    .push(Event::message_send(begin, rank as u32, dst as u32, bytes));
                self.builder.push(Event::end_activity(
                    issue,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                let arrival = buffer_free + latency + loss_delay;
                self.push_msg(rank, dst, MsgInFlight::Eager { arrival, bytes }, rank);
                self.states[rank]
                    .handles
                    .push((handle, Outstanding::SendDone(buffer_free)));
                self.states[rank].time = issue;
                self.states[rank].pc += 1;
                self.stats.messages += 1;
                self.stats.bytes += bytes;
                Ok(StepOutcome::Ran)
            }
            Op::Irecv { src, handle } => {
                let begin = self.states[rank].time;
                let posted = begin + o;
                self.builder.push(Event::begin_activity(
                    begin,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                self.builder.push(Event::end_activity(
                    posted,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                self.states[rank]
                    .handles
                    .push((handle, Outstanding::RecvPending { src, posted }));
                self.states[rank].time = posted;
                self.states[rank].pc += 1;
                Ok(StepOutcome::Ran)
            }
            Op::Wait { handle } => {
                let outstanding = self.handle_get(rank, handle);
                match outstanding {
                    Outstanding::SendDone(free) => {
                        let begin = self.states[rank].time;
                        let end = begin.max(free);
                        if end > begin {
                            self.builder.push(Event::begin_activity(
                                begin,
                                rank as u32,
                                ActivityKind::PointToPoint,
                            ));
                            self.builder.push(Event::end_activity(
                                end,
                                rank as u32,
                                ActivityKind::PointToPoint,
                            ));
                        }
                        self.handle_remove(rank, handle);
                        self.states[rank].time = end;
                        self.states[rank].pc += 1;
                        Ok(StepOutcome::Ran)
                    }
                    Outstanding::RecvPending { src, posted } => {
                        let now = self.states[rank].time;
                        let begin = *self.states[rank].wait_started.get_or_insert(now);
                        let ch = src * n + rank;
                        let Some(head) = self.channel_front(ch) else {
                            return Ok(StepOutcome::Blocked(BlockedOn::Channel(ch)));
                        };
                        match head {
                            MsgInFlight::Eager { arrival, bytes } => {
                                self.channel_mut(ch).pop_front();
                                let end = begin.max(arrival);
                                self.builder.push(Event::begin_activity(
                                    begin,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.builder.push(Event::message_recv(
                                    end,
                                    rank as u32,
                                    src as u32,
                                    bytes,
                                ));
                                self.builder.push(Event::end_activity(
                                    end,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.handle_remove(rank, handle);
                                self.states[rank].wait_started = None;
                                self.states[rank].time = end;
                                self.states[rank].pc += 1;
                                Ok(StepOutcome::Ran)
                            }
                            MsgInFlight::Rendezvous {
                                sender_ready,
                                bytes,
                            } => {
                                self.channel_mut(ch).pop_front();
                                // The receive was posted at irecv time, so
                                // the rendezvous can start as soon as both
                                // sides are ready.
                                let sync = posted.max(sender_ready);
                                let (transfer, latency, loss_delay) =
                                    self.message_costs(src, rank, sync, bytes);
                                let sender_done = sync + o + transfer + loss_delay;
                                let recv_done = sender_done + latency;
                                self.builder.push(Event::begin_activity(
                                    sender_ready,
                                    src as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.builder.push(Event::message_send(
                                    sender_ready,
                                    src as u32,
                                    rank as u32,
                                    bytes,
                                ));
                                self.builder.push(Event::end_activity(
                                    sender_done,
                                    src as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.states[src].time = sender_done;
                                self.states[src].send_registered = false;
                                self.states[src].pc += 1;
                                self.wake(src, rank);
                                let end = begin.max(recv_done);
                                self.builder.push(Event::begin_activity(
                                    begin,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.builder.push(Event::message_recv(
                                    end,
                                    rank as u32,
                                    src as u32,
                                    bytes,
                                ));
                                self.builder.push(Event::end_activity(
                                    end,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.handle_remove(rank, handle);
                                self.states[rank].wait_started = None;
                                self.states[rank].time = end;
                                self.states[rank].pc += 1;
                                self.stats.messages += 1;
                                self.stats.bytes += bytes;
                                Ok(StepOutcome::Ran)
                            }
                        }
                    }
                }
            }
            Op::Collective { kind, bytes } => {
                let instance = self.states[rank].collective_counter;
                if !self.coll.active {
                    self.coll.active = true;
                    self.coll.index = instance;
                    self.coll.kind = kind;
                    self.coll.max_bytes = 0;
                    debug_assert_eq!(self.coll.arrived, 0);
                }
                debug_assert_eq!(self.coll.index, instance, "one open instance at a time");
                if self.coll.kind != kind {
                    return Err(SimError::CollectiveMismatch {
                        instance,
                        detail: format!(
                            "rank {rank} calls {kind} but instance is {}",
                            self.coll.kind
                        ),
                    });
                }
                if self.states[rank].collective_arrived.is_none() {
                    self.states[rank].collective_arrived = Some(self.states[rank].time);
                    self.coll.arrivals[rank] = Some(self.states[rank].time);
                    self.coll.arrived += 1;
                    self.coll.max_bytes = self.coll.max_bytes.max(bytes);
                }
                if self.coll.arrived < self.program.ranks() {
                    return Ok(StepOutcome::Blocked(BlockedOn::Collective));
                }
                // Everyone has arrived: release all participants.
                let ready = self
                    .coll
                    .arrivals
                    .iter()
                    .map(|a| a.expect("all arrived"))
                    .fold(f64::NEG_INFINITY, f64::max);
                let cost =
                    collective_cost(kind, self.program.ranks(), self.coll.max_bytes, self.config);
                let completion = ready + cost;
                let activity = if kind == CollectiveKind::Barrier {
                    ActivityKind::Synchronization
                } else {
                    ActivityKind::Collective
                };
                for r in 0..n {
                    let arrival = self.coll.arrivals[r].expect("all arrived");
                    self.builder
                        .push(Event::begin_activity(arrival, r as u32, activity));
                    self.builder
                        .push(Event::end_activity(completion, r as u32, activity));
                    let state = &mut self.states[r];
                    state.time = completion;
                    state.collective_arrived = None;
                    state.collective_counter += 1;
                    state.pc += 1;
                }
                self.stats.collectives += 1;
                // Recycle the slot for the next instance.
                self.coll.active = false;
                self.coll.arrived = 0;
                for a in &mut self.coll.arrivals {
                    *a = None;
                }
                for w in 0..n {
                    if w != rank {
                        self.wake(w, rank);
                    }
                }
                Ok(StepOutcome::Ran)
            }
        }
    }

    /// The event-driven scheduler: rounds over an explicit ready-queue.
    /// A round pops ranks in ascending order and runs each until it
    /// blocks or finishes; completions enqueue exactly the ranks they
    /// unblocked (same round when still ahead of the scan, next round
    /// otherwise). Deadlock is the state where work remains but both
    /// queues are empty — nothing can ever wake again — unless a fault
    /// plan crashed a rank, in which case the quiescent state is an
    /// *interrupted* run: the survivors were waiting on the dead rank,
    /// and their truncated traces are returned for salvage instead.
    fn run_event(&mut self) -> Result<(), SimError> {
        let mut remaining = 0usize;
        for rank in 0..self.n {
            if self.states[rank].pc < self.program.ops(rank).len() {
                remaining += 1;
                self.current.insert(rank);
            }
        }
        while remaining > 0 {
            if self.current.is_empty() {
                if self.next_round.is_empty() {
                    if self.faults.as_ref().is_some_and(|f| f.any_crashed()) {
                        return Ok(());
                    }
                    return Err(SimError::Deadlock {
                        detail: self.deadlock_detail(),
                    });
                }
                std::mem::swap(&mut self.current, &mut self.next_round);
            }
            // Ascending scan; ranks woken mid-round with an index still
            // ahead of the cursor are picked up by the same scan.
            let mut cursor = 0usize;
            while let Some(rank) = self.current.pop_at_or_after(cursor) {
                cursor = rank;
                if self.faults.as_ref().is_some_and(|f| f.has_crashed(rank)) {
                    continue;
                }
                loop {
                    match self.try_op(rank)? {
                        StepOutcome::Ran => {
                            if let Some(budget) = self.budget {
                                self.ops_done += 1;
                                if let Some(interrupted) = budget.check(self.ops_done) {
                                    return Err(interrupted);
                                }
                            }
                        }
                        StepOutcome::Blocked(on) => {
                            self.blocked[rank] = on;
                            break;
                        }
                        StepOutcome::Done => {
                            remaining -= 1;
                            break;
                        }
                        StepOutcome::Crashed => {
                            remaining -= 1;
                            break;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(mut self) -> SimOutput {
        for (rank, s) in self.states.iter().enumerate() {
            self.stats.rank_end_times[rank] = s.time;
            self.stats.makespan = self.stats.makespan.max(s.time);
        }
        let faults = match &self.faults {
            Some(fs) => {
                fs.report((0..self.n).filter(|&r| self.states[r].pc < self.program.ops(r).len()))
            }
            None => FaultReport::default(),
        };
        let balance = match &self.balance {
            Some(bs) => bs.report(),
            None => BalanceReport::default(),
        };
        SimOutput {
            trace: self.builder.build(),
            stats: self.stats,
            faults,
            balance,
        }
    }
}

/// The simulator: runs a [`Program`] on a [`MachineConfig`].
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
}

impl Simulator {
    /// Creates a simulator for the given machine.
    pub fn new(config: MachineConfig) -> Self {
        Simulator { config }
    }

    /// The machine being simulated.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs `program` to completion with the event-driven scheduler,
    /// producing the trace and statistics.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid, the program
    /// references more ranks than the machine has, or the ranks deadlock
    /// (e.g. a receive whose matching send never happens).
    pub fn run(&self, program: &Program) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, None, None)?;
        exec.run_event()?;
        Ok(exec.finish())
    }

    /// Runs `program` under a deterministic fault plan (see
    /// [`FaultPlan`]): slowdown windows, link degradation, message loss
    /// with retries, and rank crashes. Crashed and interrupted ranks
    /// end the run with truncated traces and are listed in
    /// [`SimOutput::faults`]; reduce such outputs with
    /// [`SimOutput::reduce_checked`], which salvages partial streams.
    ///
    /// An empty plan is bit-identical to [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`], plus
    /// [`SimError::InvalidFaultPlan`] for plans that fail
    /// [`FaultPlan::validate`]. A quiescent state with at least one
    /// crashed rank is an interrupted run, not a deadlock error.
    pub fn run_with_faults(
        &self,
        program: &Program,
        plan: &FaultPlan,
    ) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, Some(plan), None)?;
        exec.run_event()?;
        Ok(exec.finish())
    }

    /// Runs `program` under a dynamic load-balancing plan (see
    /// [`BalancePlan`]): at every compute-op boundary the attached
    /// policy may migrate work to less loaded ranks, with deterministic
    /// migration costs and a profitability guard. The
    /// [`SimOutput::balance`] report accounts every migration.
    ///
    /// A plan whose policy never triggers is bit-identical to
    /// [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`], plus
    /// [`SimError::InvalidBalancePlan`] for plans that fail
    /// [`BalancePlan::validate`].
    pub fn run_with_balance(
        &self,
        program: &Program,
        plan: &BalancePlan,
    ) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, None, Some(plan))?;
        exec.run_event()?;
        Ok(exec.finish())
    }

    /// Runs `program` with any combination of fault plan, balance plan,
    /// and interruption budget — the fully general entry point the CLI
    /// drives. `None` everywhere is bit-identical to [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// The union of the conditions of [`Simulator::run_with_faults`],
    /// [`Simulator::run_with_balance`], and [`Simulator::run_budgeted`].
    pub fn run_configured(
        &self,
        program: &Program,
        faults: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
        budget: Option<&RunBudget>,
    ) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, faults, balance)?;
        if let Some(budget) = budget {
            if !budget.is_unlimited() {
                exec.budget = Some(budget);
            }
        }
        exec.run_event()?;
        Ok(exec.finish())
    }

    /// Runs `program` under an interruption budget (and optionally a
    /// fault plan) with the event-driven scheduler. The budget is
    /// polled inside the scheduling loop: when an op-count or
    /// wall-clock limit fires, or the cancellation token trips, the run
    /// aborts with [`SimError::Interrupted`] and produces nothing.
    ///
    /// A run that completes under a budget is bit-identical to the same
    /// run without one — the budget decides *whether* the run finishes,
    /// never what a finished run contains. An unlimited budget takes
    /// the exact unbudgeted code path (no per-op bookkeeping).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_with_faults`], plus
    /// [`SimError::Interrupted`] when the budget fires.
    pub fn run_budgeted(
        &self,
        program: &Program,
        plan: Option<&FaultPlan>,
        budget: &RunBudget,
    ) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, plan, None)?;
        if !budget.is_unlimited() {
            exec.budget = Some(budget);
        }
        exec.run_event()?;
        Ok(exec.finish())
    }

    /// Runs `program` with the polling reference engine — the original
    /// O(rounds × n) scan over `HashMap`-keyed channels that this
    /// engine replaced, preserved verbatim in [`crate::polling`]. Its
    /// output is bit-identical to [`Simulator::run`] in trace,
    /// statistics, and diagnostics; the equivalence harness holds the
    /// two implementations against each other, and the simulator
    /// benchmarks measure the event-driven engine against this one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_polling(&self, program: &Program) -> Result<SimOutput, SimError> {
        crate::polling::run(&self.config, program, None, None, None)
    }

    /// Runs `program` under a fault plan with the polling reference
    /// engine. Bit-identical to [`Simulator::run_with_faults`] in
    /// trace, statistics, diagnostics, and fault report — fault
    /// injection is a first-class axis of the differential harness.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_with_faults`].
    pub fn run_polling_with_faults(
        &self,
        program: &Program,
        plan: &FaultPlan,
    ) -> Result<SimOutput, SimError> {
        crate::polling::run(&self.config, program, Some(plan), None, None)
    }

    /// The polling-engine counterpart of [`Simulator::run_with_balance`].
    /// Bit-identical in trace, statistics, fault report, and balance
    /// report — dynamic balancing is a first-class axis of the
    /// differential harness.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_with_balance`].
    pub fn run_polling_with_balance(
        &self,
        program: &Program,
        plan: &BalancePlan,
    ) -> Result<SimOutput, SimError> {
        crate::polling::run(&self.config, program, None, Some(plan), None)
    }

    /// The polling-engine counterpart of [`Simulator::run_configured`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_configured`].
    pub fn run_polling_configured(
        &self,
        program: &Program,
        faults: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
        budget: Option<&RunBudget>,
    ) -> Result<SimOutput, SimError> {
        let budget = budget.filter(|b| !b.is_unlimited());
        crate::polling::run(&self.config, program, faults, balance, budget)
    }

    /// The polling-engine counterpart of [`Simulator::run_budgeted`]:
    /// same budget semantics, same guarantee that a completed budgeted
    /// run is bit-identical to an unbudgeted one. Op-count budgets fire
    /// on exactly the same programs on both engines (both execute the
    /// same ops), which the equivalence suite locks.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_budgeted`].
    pub fn run_polling_budgeted(
        &self,
        program: &Program,
        plan: Option<&FaultPlan>,
        budget: &RunBudget,
    ) -> Result<SimOutput, SimError> {
        let budget = if budget.is_unlimited() {
            None
        } else {
            Some(budget)
        };
        crate::polling::run(&self.config, program, plan, None, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use limba_model::ProcessorId;

    fn machine(n: usize) -> MachineConfig {
        MachineConfig::new(n)
            .with_overhead(1e-6)
            .with_latency(10e-6)
            .with_bandwidth(1e8)
            .with_eager_threshold(8192)
    }

    /// A small exchange-heavy program both budget tests share.
    fn budget_test_program(ranks: usize) -> Program {
        let mut pb = ProgramBuilder::new(ranks);
        let r = pb.add_region("step");
        pb.spmd(|rank, mut ops| {
            ops.enter(r)
                .compute(0.1 + 0.05 * rank as f64)
                .send((rank + 1) % ranks, 1024)
                .recv((rank + ranks - 1) % ranks)
                .barrier()
                .leave(r);
        });
        pb.build().unwrap()
    }

    #[test]
    fn generous_op_budget_is_bit_identical_to_unbudgeted() {
        let program = budget_test_program(4);
        let sim = Simulator::new(machine(4));
        let plain = sim.run(&program).unwrap();
        let budget = RunBudget {
            max_ops: Some(1_000_000),
            ..RunBudget::default()
        };
        let budgeted = sim.run_budgeted(&program, None, &budget).unwrap();
        assert_eq!(plain.trace, budgeted.trace);
        assert_eq!(plain.stats, budgeted.stats);
        let polled = sim.run_polling_budgeted(&program, None, &budget).unwrap();
        assert_eq!(plain.trace, polled.trace);
        assert_eq!(plain.stats, polled.stats);
    }

    #[test]
    fn op_budget_interrupts_both_engines_at_the_same_threshold() {
        let program = budget_test_program(4);
        let sim = Simulator::new(machine(4));
        // The smallest op budget that lets the run finish — found by
        // scanning upward — must be the same on both engines, and every
        // smaller budget must interrupt both with a named error. That is
        // what makes an op budget a deterministic, engine-independent
        // interruption point.
        let threshold = |budgeted: &dyn Fn(&RunBudget) -> Result<SimOutput, SimError>| -> u64 {
            let ceiling = program.total_ops() as u64 * 4;
            for max_ops in 0..=ceiling {
                let budget = RunBudget {
                    max_ops: Some(max_ops),
                    ..RunBudget::default()
                };
                match budgeted(&budget) {
                    Ok(_) => return max_ops,
                    Err(SimError::Interrupted { detail }) => {
                        assert!(detail.contains("op budget"), "{detail}")
                    }
                    Err(other) => panic!("unexpected error at max_ops={max_ops}: {other}"),
                }
            }
            panic!("no budget up to {ceiling} completed");
        };
        let event_threshold = threshold(&|b| sim.run_budgeted(&program, None, b));
        let polling_threshold = threshold(&|b| sim.run_polling_budgeted(&program, None, b));
        assert_eq!(event_threshold, polling_threshold);
        assert!(event_threshold > 0);
        // At the threshold both engines still agree bit-for-bit.
        let budget = RunBudget {
            max_ops: Some(event_threshold),
            ..RunBudget::default()
        };
        let event = sim.run_budgeted(&program, None, &budget).unwrap();
        let polling = sim.run_polling_budgeted(&program, None, &budget).unwrap();
        assert_eq!(event.trace, polling.trace);
        assert_eq!(event.stats, polling.stats);
    }

    #[test]
    fn cancelled_token_and_expired_deadline_interrupt_the_run() {
        let program = budget_test_program(4);
        let sim = Simulator::new(machine(4));
        let token = limba_par::CancelToken::new();
        token.cancel();
        let budget = RunBudget {
            cancel: Some(token),
            ..RunBudget::default()
        };
        assert!(matches!(
            sim.run_budgeted(&program, None, &budget),
            Err(SimError::Interrupted { .. })
        ));
        let budget = RunBudget {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..RunBudget::default()
        };
        assert!(matches!(
            sim.run_polling_budgeted(&program, None, &budget),
            Err(SimError::Interrupted { .. })
        ));
        // An untripped token and a far-away deadline change nothing.
        let budget = RunBudget {
            deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(3600)),
            cancel: Some(limba_par::CancelToken::new()),
            ..RunBudget::default()
        };
        let plain = sim.run(&program).unwrap();
        let budgeted = sim.run_budgeted(&program, None, &budget).unwrap();
        assert_eq!(plain.trace, budgeted.trace);
    }

    #[test]
    fn budgeted_run_honors_fault_plans_identically() {
        let program = budget_test_program(4);
        let sim = Simulator::new(machine(4));
        let plan = FaultPlan::new(11).with_slowdown(1, 0.0, 0.2, 2.0);
        let plain = sim.run_with_faults(&program, &plan).unwrap();
        let budget = RunBudget {
            max_ops: Some(1_000_000),
            ..RunBudget::default()
        };
        let budgeted = sim.run_budgeted(&program, Some(&plan), &budget).unwrap();
        assert_eq!(plain.trace, budgeted.trace);
        assert_eq!(plain.faults, budgeted.faults);
        let polled = sim
            .run_polling_budgeted(&program, Some(&plan), &budget)
            .unwrap();
        assert_eq!(plain.trace, polled.trace);
    }

    #[test]
    fn compute_only_program_times_add_up() {
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).compute(1.0).compute(0.5).leave(r);
        pb.rank(1).enter(r).compute(2.0).leave(r);
        let out = Simulator::new(machine(2))
            .run(&pb.build().unwrap())
            .unwrap();
        assert!((out.stats.rank_end_times[0] - 1.5).abs() < 1e-12);
        assert!((out.stats.rank_end_times[1] - 2.0).abs() < 1e-12);
        assert!((out.stats.makespan - 2.0).abs() < 1e-12);
        let m = out.reduce().unwrap().measurements;
        assert!((m.time(r, ActivityKind::Computation, ProcessorId::new(0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slow_node_takes_proportionally_longer() {
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.spmd(|_, mut ops| {
            ops.enter(r).compute(1.0).leave(r);
        });
        let cfg = machine(2).with_cpu_speed(1, 0.5);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        assert!((out.stats.rank_end_times[0] - 1.0).abs() < 1e-12);
        assert!((out.stats.rank_end_times[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eager_send_recv_timing() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1000).leave(r);
        pb.rank(1).enter(r).recv(0).leave(r);
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        // Sender: o + 1000/B = 1e-6 + 1e-5 = 1.1e-5.
        assert!((out.stats.rank_end_times[0] - 1.1e-5).abs() < 1e-12);
        // Receiver posted at 0; arrival = 1.1e-5 + 1e-5 latency = 2.1e-5.
        assert!((out.stats.rank_end_times[1] - 2.1e-5).abs() < 1e-12);
        assert_eq!(out.stats.messages, 1);
        assert_eq!(out.stats.bytes, 1000);
    }

    #[test]
    fn late_receiver_pays_only_overhead() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1000).leave(r);
        pb.rank(1).enter(r).compute(1.0).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        // Message long arrived; receive costs just the overhead.
        assert!((out.stats.rank_end_times[1] - (1.0 + 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn rendezvous_blocks_sender_until_receiver_posts() {
        let cfg = machine(2); // eager threshold 8192
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1_000_000).leave(r);
        pb.rank(1).enter(r).compute(2.0).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        // Sync at 2.0; sender done at 2.0 + o + 0.01; receiver + latency.
        let sender_done = 2.0 + 1e-6 + 0.01;
        assert!((out.stats.rank_end_times[0] - sender_done).abs() < 1e-9);
        assert!((out.stats.rank_end_times[1] - (sender_done + 1e-5)).abs() < 1e-9);
        // Sender's point-to-point time includes the 2 s wait.
        let m = out.reduce().unwrap().measurements;
        let t = m.time(r, ActivityKind::PointToPoint, ProcessorId::new(0));
        assert!(t > 2.0, "sender p2p time {t} should include the wait");
    }

    #[test]
    fn message_order_is_fifo_per_channel() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 100).send(1, 200).leave(r);
        pb.rank(1).enter(r).recv(0).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        let reduced = out.reduce().unwrap();
        // Both messages received: counts show 2 messages, 300 bytes.
        use limba_model::CountKind;
        assert_eq!(
            reduced
                .counts
                .count(r, CountKind::MessagesReceived, ProcessorId::new(1)),
            2.0
        );
        assert_eq!(
            reduced
                .counts
                .count(r, CountKind::BytesReceived, ProcessorId::new(1)),
            300.0
        );
    }

    #[test]
    fn barrier_makes_everyone_wait_for_the_slowest() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("r");
        pb.spmd(|rank, mut ops| {
            ops.enter(r).compute(1.0 + rank as f64).barrier().leave(r);
        });
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        let cost = collective_cost(CollectiveKind::Barrier, 4, 0, &cfg);
        for t in &out.stats.rank_end_times {
            assert!((t - (4.0 + cost)).abs() < 1e-9);
        }
        // Rank 0 waited ~3 s in the barrier; rank 3 almost nothing.
        let m = out.reduce().unwrap().measurements;
        let w0 = m.time(r, ActivityKind::Synchronization, ProcessorId::new(0));
        let w3 = m.time(r, ActivityKind::Synchronization, ProcessorId::new(3));
        assert!(w0 > 2.9 && w0 < 3.1, "w0 = {w0}");
        assert!(w3 < 0.1, "w3 = {w3}");
        assert_eq!(out.stats.collectives, 1);
    }

    #[test]
    fn reduce_attributes_collective_time() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("r");
        pb.spmd(|_, mut ops| {
            ops.enter(r).reduce(4096).leave(r);
        });
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        let m = out.reduce().unwrap().measurements;
        let cost = collective_cost(CollectiveKind::Reduce, 4, 4096, &cfg);
        for p in 0..4 {
            let t = m.time(r, ActivityKind::Collective, ProcessorId::new(p));
            assert!((t - cost).abs() < 1e-12);
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).recv(1).leave(r);
        pb.rank(1).enter(r).recv(0).leave(r);
        let err = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
        assert!(err.to_string().contains("rank 0"));
    }

    #[test]
    fn deadlock_report_is_capped_on_large_machines() {
        // 12 stuck ranks: the report lists the first 8 and counts the rest.
        let n = 12;
        let cfg = machine(n);
        let mut pb = ProgramBuilder::new(n);
        let r = pb.add_region("r");
        pb.spmd(|rank, mut ops| {
            ops.enter(r).recv((rank + 1) % n).leave(r);
        });
        let err = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("rank 7 stuck"), "msg: {msg}");
        assert!(!msg.contains("rank 8 stuck"), "msg: {msg}");
        assert!(msg.contains("and 4 more stuck ranks"), "msg: {msg}");
    }

    #[test]
    fn rendezvous_deadlock_detected_for_two_big_sends() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1 << 20).recv(1).leave(r);
        pb.rank(1).enter(r).send(0, 1 << 20).recv(0).leave(r);
        let err = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn eager_cross_sends_do_not_deadlock() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 100).recv(1).leave(r);
        pb.rank(1).enter(r).send(0, 100).recv(0).leave(r);
        Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
    }

    #[test]
    fn program_larger_than_machine_rejected() {
        let pb = ProgramBuilder::new(8);
        let program = pb.build().unwrap();
        assert!(matches!(
            Simulator::new(machine(4)).run(&program),
            Err(SimError::RankOutOfRange { .. })
        ));
    }

    #[test]
    fn isend_overlaps_computation() {
        let cfg = machine(2);
        // Blocking version: send (big, rendezvous) then compute.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1 << 20).compute(1.0).leave(r);
        pb.rank(1).enter(r).compute(1.0).recv(0).leave(r);
        let blocking = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();

        // Nonblocking version overlaps the transfer with the compute.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0)
            .enter(r)
            .isend(1, 1 << 20, 7)
            .compute(1.0)
            .wait(7)
            .leave(r);
        pb.rank(1).enter(r).compute(1.0).recv(0).leave(r);
        let nonblocking = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();

        assert!(
            nonblocking.stats.makespan < blocking.stats.makespan,
            "nonblocking {} not faster than blocking {}",
            nonblocking.stats.makespan,
            blocking.stats.makespan
        );
    }

    #[test]
    fn irecv_wait_matches_early_and_late_messages() {
        let cfg = machine(2);
        // Message arrives before the wait: wait is (nearly) free.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 100).leave(r);
        pb.rank(1)
            .enter(r)
            .irecv(0, 1)
            .compute(1.0)
            .wait(1)
            .leave(r);
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        assert!((out.stats.rank_end_times[1] - (1.0 + 1e-6)).abs() < 1e-7);

        // Message arrives after the wait: the wait blocks until arrival.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).compute(2.0).send(1, 100).leave(r);
        pb.rank(1).enter(r).irecv(0, 1).wait(1).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        assert!(out.stats.rank_end_times[1] > 2.0);
        out.trace.validate().unwrap();
    }

    #[test]
    fn irecv_wait_matches_rendezvous_sender() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1 << 20).leave(r); // rendezvous size
        pb.rank(1)
            .enter(r)
            .irecv(0, 3)
            .compute(0.5)
            .wait(3)
            .leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        out.trace.validate().unwrap();
        // The rendezvous could start at the irecv post (~0), so the
        // sender finishes around o + transfer ≈ 0.01 s, well before the
        // receiver's wait at 0.5.
        assert!(out.stats.rank_end_times[0] < 0.1);
        assert_eq!(out.stats.messages, 1);
    }

    #[test]
    fn handle_misuse_is_rejected_at_build_time() {
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).isend(1, 10, 1).isend(1, 10, 1).wait(1).wait(1);
        assert!(matches!(pb.build(), Err(SimError::BadHandle { .. })));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).wait(9);
        assert!(matches!(pb.build(), Err(SimError::BadHandle { .. })));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).irecv(1, 2);
        assert!(matches!(pb.build(), Err(SimError::BadHandle { .. })));
    }

    #[test]
    fn gather_scatter_allgather_run_and_attribute_collective_time() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("r");
        pb.spmd(|_, mut ops| {
            ops.enter(r)
                .gather(1024)
                .scatter(1024)
                .allgather(512)
                .leave(r);
        });
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        let m = out.reduce().unwrap().measurements;
        let expected = collective_cost(CollectiveKind::Gather, 4, 1024, &cfg)
            + collective_cost(CollectiveKind::Scatter, 4, 1024, &cfg)
            + collective_cost(CollectiveKind::Allgather, 4, 512, &cfg);
        for p in 0..4 {
            let t = m.time(r, ActivityKind::Collective, ProcessorId::new(p));
            assert!((t - expected).abs() < 1e-12);
        }
        assert_eq!(out.stats.collectives, 3);
    }

    #[test]
    fn slow_link_delays_only_its_traffic() {
        // Rank 0 sends the same payload to ranks 1 and 2, but the 0→2
        // link is ten times slower.
        let cfg = machine(3).with_link(0, 2, 10e-5, 1e7);
        let mut pb = ProgramBuilder::new(3);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 4000).send(2, 4000).leave(r);
        pb.rank(1).enter(r).recv(0).leave(r);
        pb.rank(2).enter(r).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        let m = out.reduce().unwrap().measurements;
        let t1 = m.time(r, ActivityKind::PointToPoint, ProcessorId::new(1));
        let t2 = m.time(r, ActivityKind::PointToPoint, ProcessorId::new(2));
        assert!(t2 > 3.0 * t1, "slow-link receiver {t2} vs fast {t1}");
    }

    #[test]
    fn link_overrides_are_validated() {
        let cfg = machine(2).with_link(0, 1, -1.0, 1e6);
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).compute(0.1);
        assert!(matches!(
            Simulator::new(cfg).run(&pb.build().unwrap()),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn trace_is_well_formed_and_deterministic() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let a = pb.add_region("a");
        let b = pb.add_region("b");
        pb.spmd(|rank, mut ops| {
            ops.enter(a)
                .compute(0.1 * (rank + 1) as f64)
                .allreduce(512)
                .leave(a);
            ops.enter(b);
            if rank > 0 {
                ops.send(rank - 1, 2048);
            }
            if rank < 3 {
                ops.recv(rank + 1);
            }
            ops.barrier().leave(b);
        });
        let program = pb.build().unwrap();
        let out1 = Simulator::new(cfg.clone()).run(&program).unwrap();
        let out2 = Simulator::new(cfg).run(&program).unwrap();
        out1.trace.validate().unwrap();
        assert_eq!(out1.trace, out2.trace);
        assert_eq!(out1.stats, out2.stats);
    }

    #[test]
    fn event_and_polling_engines_are_bit_identical() {
        // A program exercising every blocking construct: eager and
        // rendezvous sends, nonblocking ring shifts, and collectives.
        let cfg = machine(5);
        let mut pb = ProgramBuilder::new(5);
        let r = pb.add_region("r");
        pb.spmd(|rank, mut ops| {
            ops.enter(r).compute(0.01 * (rank + 1) as f64);
            for parity in 0..2usize {
                if rank % 2 == parity {
                    if rank + 1 < 5 {
                        ops.send(rank + 1, 100_000).recv(rank + 1);
                    }
                } else if rank >= 1 {
                    ops.recv(rank - 1).send(rank - 1, 100_000);
                }
            }
            let right = (rank + 1) % 5;
            let left = (rank + 4) % 5;
            ops.isend(right, 64, 1)
                .irecv(left, 2)
                .compute(0.002)
                .wait(1)
                .wait(2)
                .allreduce(2048)
                .barrier()
                .leave(r);
        });
        let program = pb.build().unwrap();
        let sim = Simulator::new(cfg);
        let event = sim.run(&program).unwrap();
        let polling = sim.run_polling(&program).unwrap();
        assert_eq!(event.trace, polling.trace);
        assert_eq!(event.stats, polling.stats);
    }

    #[test]
    fn engines_agree_on_deadlock_diagnostics() {
        let cfg = machine(3);
        let mut pb = ProgramBuilder::new(3);
        let r = pb.add_region("r");
        pb.spmd(|rank, mut ops| {
            ops.enter(r).recv((rank + 1) % 3).leave(r);
        });
        let program = pb.build().unwrap();
        let sim = Simulator::new(cfg);
        let event = sim.run(&program).unwrap_err().to_string();
        let polling = sim.run_polling(&program).unwrap_err().to_string();
        assert_eq!(event, polling);
    }
}
