//! The discrete-event execution engine.

use std::collections::{HashMap, VecDeque};

use limba_model::ActivityKind;
use limba_trace::{Event, ReducedTrace, Trace, TraceBuilder};

use crate::collectives::collective_cost;
use crate::{CollectiveKind, MachineConfig, Op, Program, SimError};

/// Summary statistics of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Per-rank completion time in seconds.
    pub rank_end_times: Vec<f64>,
    /// Latest completion time over all ranks (the run's makespan).
    pub makespan: f64,
    /// Total point-to-point messages delivered.
    pub messages: u64,
    /// Total point-to-point payload bytes delivered.
    pub bytes: u64,
    /// Number of collective operations completed.
    pub collectives: u64,
}

/// Output of a simulation: the recorded trace plus summary statistics.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The event trace of the run.
    pub trace: Trace,
    /// Summary statistics.
    pub stats: SimStats,
}

impl SimOutput {
    /// Reduces the trace to measurement matrices (see
    /// [`limba_trace::reduce`]).
    ///
    /// # Errors
    ///
    /// Propagates trace validation/reduction errors; a trace produced by
    /// the simulator is always well-formed, so failures indicate a bug.
    pub fn reduce(&self) -> Result<ReducedTrace, SimError> {
        Ok(limba_trace::reduce(&self.trace)?)
    }
}

/// In-flight message on one `(src, dst)` channel.
#[derive(Debug, Clone, Copy)]
enum MsgInFlight {
    /// Sender already finished its side; payload arrives at `arrival`.
    Eager { arrival: f64, bytes: u64 },
    /// Sender is blocked waiting for the receiver (rendezvous protocol);
    /// it became ready at `sender_ready`.
    Rendezvous { sender_ready: f64, bytes: u64 },
}

/// Outstanding nonblocking request of one rank.
#[derive(Debug, Clone, Copy)]
enum Outstanding {
    /// Nonblocking send: the local buffer is free at this time.
    SendDone(f64),
    /// Nonblocking receive posted at this time, waiting for `src`.
    RecvPending { src: usize, posted: f64 },
}

#[derive(Debug, Clone, Default)]
struct RankState {
    pc: usize,
    time: f64,
    /// Set when a Recv was reached but could not complete (posted time).
    recv_posted: Option<f64>,
    /// Set when a Wait on a pending receive was reached but could not
    /// complete (the time the wait started).
    wait_started: Option<f64>,
    /// True when the current Send op is already queued as a rendezvous.
    send_registered: bool,
    /// Set when waiting inside a collective (arrival time).
    collective_arrived: Option<f64>,
    /// Number of collective calls completed so far.
    collective_counter: usize,
    /// Outstanding nonblocking requests by handle.
    handles: HashMap<u32, Outstanding>,
}

#[derive(Debug)]
struct CollectiveInstance {
    kind: CollectiveKind,
    max_bytes: u64,
    arrivals: Vec<Option<f64>>,
    arrived: usize,
}

/// The simulator: runs a [`Program`] on a [`MachineConfig`].
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
}

impl Simulator {
    /// Creates a simulator for the given machine.
    pub fn new(config: MachineConfig) -> Self {
        Simulator { config }
    }

    /// The machine being simulated.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs `program` to completion, producing the trace and statistics.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid, the program
    /// references more ranks than the machine has, or the ranks deadlock
    /// (e.g. a receive whose matching send never happens).
    pub fn run(&self, program: &Program) -> Result<SimOutput, SimError> {
        self.config.validate()?;
        let p = self.config.processors();
        if program.ranks() > p {
            return Err(SimError::RankOutOfRange {
                rank: program.ranks() - 1,
                ranks: p,
            });
        }
        let n = program.ranks();

        let mut builder = TraceBuilder::new(n);
        for name in program.region_names() {
            builder.add_region(name.clone());
        }

        let mut states = vec![RankState::default(); n];
        let mut channels: HashMap<(usize, usize), VecDeque<MsgInFlight>> = HashMap::new();
        let mut collectives: Vec<CollectiveInstance> = Vec::new();
        let mut stats = SimStats {
            rank_end_times: vec![0.0; n],
            makespan: 0.0,
            messages: 0,
            bytes: 0,
            collectives: 0,
        };

        loop {
            let mut progress = false;
            for rank in 0..n {
                while self.step(
                    rank,
                    program,
                    &mut states,
                    &mut channels,
                    &mut collectives,
                    &mut builder,
                    &mut stats,
                )? {
                    progress = true;
                }
            }
            if states
                .iter()
                .enumerate()
                .all(|(r, s)| s.pc >= program.ops(r).len())
            {
                break;
            }
            if !progress {
                let detail = states
                    .iter()
                    .enumerate()
                    .filter(|(r, s)| s.pc < program.ops(*r).len())
                    .map(|(r, s)| {
                        format!(
                            "rank {r} stuck at op {:?} (pc {})",
                            program.ops(r)[s.pc],
                            s.pc
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(SimError::Deadlock { detail });
            }
        }

        for (rank, s) in states.iter().enumerate() {
            stats.rank_end_times[rank] = s.time;
            stats.makespan = stats.makespan.max(s.time);
        }
        Ok(SimOutput {
            trace: builder.build(),
            stats,
        })
    }

    /// Executes at most one op of `rank`. Returns `true` when progress was
    /// made (the op completed), `false` when the rank is blocked or done.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        rank: usize,
        program: &Program,
        states: &mut [RankState],
        channels: &mut HashMap<(usize, usize), VecDeque<MsgInFlight>>,
        collectives: &mut Vec<CollectiveInstance>,
        builder: &mut TraceBuilder,
        stats: &mut SimStats,
    ) -> Result<bool, SimError> {
        let ops = program.ops(rank);
        if states[rank].pc >= ops.len() {
            return Ok(false);
        }
        let op = ops[states[rank].pc];
        let o = self.config.overhead();
        match op {
            Op::Compute { seconds } => {
                states[rank].time += seconds / self.config.cpu_speed(rank);
                states[rank].pc += 1;
                Ok(true)
            }
            Op::Enter { region } => {
                builder.push(Event::enter(states[rank].time, rank as u32, region));
                states[rank].pc += 1;
                Ok(true)
            }
            Op::Leave { region } => {
                builder.push(Event::leave(states[rank].time, rank as u32, region));
                states[rank].pc += 1;
                Ok(true)
            }
            Op::Send { dst, bytes } => {
                if bytes <= self.config.eager_threshold() {
                    let begin = states[rank].time;
                    let end = begin + o + self.config.link_transfer_time(rank, dst, bytes);
                    builder.push(Event::begin_activity(
                        begin,
                        rank as u32,
                        ActivityKind::PointToPoint,
                    ));
                    builder.push(Event::message_send(begin, rank as u32, dst as u32, bytes));
                    builder.push(Event::end_activity(
                        end,
                        rank as u32,
                        ActivityKind::PointToPoint,
                    ));
                    channels
                        .entry((rank, dst))
                        .or_default()
                        .push_back(MsgInFlight::Eager {
                            arrival: end + self.config.link_latency(rank, dst),
                            bytes,
                        });
                    states[rank].time = end;
                    states[rank].pc += 1;
                    stats.messages += 1;
                    stats.bytes += bytes;
                    Ok(true)
                } else {
                    if !states[rank].send_registered {
                        channels.entry((rank, dst)).or_default().push_back(
                            MsgInFlight::Rendezvous {
                                sender_ready: states[rank].time,
                                bytes,
                            },
                        );
                        states[rank].send_registered = true;
                    }
                    // Blocked until the receiver performs the match.
                    Ok(false)
                }
            }
            Op::Recv { src } => {
                let posted = *states[rank].recv_posted.get_or_insert(states[rank].time);
                let Some(queue) = channels.get_mut(&(src, rank)) else {
                    return Ok(false);
                };
                let Some(&head) = queue.front() else {
                    return Ok(false);
                };
                match head {
                    MsgInFlight::Eager { arrival, bytes } => {
                        queue.pop_front();
                        let end = (posted + o).max(arrival);
                        builder.push(Event::begin_activity(
                            posted,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        builder.push(Event::message_recv(end, rank as u32, src as u32, bytes));
                        builder.push(Event::end_activity(
                            end,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        states[rank].time = end;
                        states[rank].recv_posted = None;
                        states[rank].pc += 1;
                        Ok(true)
                    }
                    MsgInFlight::Rendezvous {
                        sender_ready,
                        bytes,
                    } => {
                        queue.pop_front();
                        let sync = posted.max(sender_ready);
                        let sender_done =
                            sync + o + self.config.link_transfer_time(src, rank, bytes);
                        let recv_done = sender_done + self.config.link_latency(src, rank);
                        // Complete the blocked sender's side.
                        builder.push(Event::begin_activity(
                            sender_ready,
                            src as u32,
                            ActivityKind::PointToPoint,
                        ));
                        builder.push(Event::message_send(
                            sender_ready,
                            src as u32,
                            rank as u32,
                            bytes,
                        ));
                        builder.push(Event::end_activity(
                            sender_done,
                            src as u32,
                            ActivityKind::PointToPoint,
                        ));
                        states[src].time = sender_done;
                        states[src].send_registered = false;
                        states[src].pc += 1;
                        // Complete the receive.
                        builder.push(Event::begin_activity(
                            posted,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        builder.push(Event::message_recv(
                            recv_done,
                            rank as u32,
                            src as u32,
                            bytes,
                        ));
                        builder.push(Event::end_activity(
                            recv_done,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        states[rank].time = recv_done;
                        states[rank].recv_posted = None;
                        states[rank].pc += 1;
                        stats.messages += 1;
                        stats.bytes += bytes;
                        Ok(true)
                    }
                }
            }
            Op::Isend { dst, bytes, handle } => {
                // Buffered nonblocking send: the NIC takes over; the
                // local buffer frees after the injection completes.
                let begin = states[rank].time;
                let issue = begin + o;
                let buffer_free = issue + self.config.link_transfer_time(rank, dst, bytes);
                builder.push(Event::begin_activity(
                    begin,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                builder.push(Event::message_send(begin, rank as u32, dst as u32, bytes));
                builder.push(Event::end_activity(
                    issue,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                channels
                    .entry((rank, dst))
                    .or_default()
                    .push_back(MsgInFlight::Eager {
                        arrival: buffer_free + self.config.link_latency(rank, dst),
                        bytes,
                    });
                states[rank]
                    .handles
                    .insert(handle, Outstanding::SendDone(buffer_free));
                states[rank].time = issue;
                states[rank].pc += 1;
                stats.messages += 1;
                stats.bytes += bytes;
                Ok(true)
            }
            Op::Irecv { src, handle } => {
                let begin = states[rank].time;
                let posted = begin + o;
                builder.push(Event::begin_activity(
                    begin,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                builder.push(Event::end_activity(
                    posted,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                states[rank]
                    .handles
                    .insert(handle, Outstanding::RecvPending { src, posted });
                states[rank].time = posted;
                states[rank].pc += 1;
                Ok(true)
            }
            Op::Wait { handle } => {
                let outstanding = *states[rank]
                    .handles
                    .get(&handle)
                    .expect("validated: handle outstanding");
                match outstanding {
                    Outstanding::SendDone(free) => {
                        let begin = states[rank].time;
                        let end = begin.max(free);
                        if end > begin {
                            builder.push(Event::begin_activity(
                                begin,
                                rank as u32,
                                ActivityKind::PointToPoint,
                            ));
                            builder.push(Event::end_activity(
                                end,
                                rank as u32,
                                ActivityKind::PointToPoint,
                            ));
                        }
                        states[rank].handles.remove(&handle);
                        states[rank].time = end;
                        states[rank].pc += 1;
                        Ok(true)
                    }
                    Outstanding::RecvPending { src, posted } => {
                        let begin = *states[rank].wait_started.get_or_insert(states[rank].time);
                        let Some(queue) = channels.get_mut(&(src, rank)) else {
                            return Ok(false);
                        };
                        let Some(&head) = queue.front() else {
                            return Ok(false);
                        };
                        match head {
                            MsgInFlight::Eager { arrival, bytes } => {
                                queue.pop_front();
                                let end = begin.max(arrival);
                                builder.push(Event::begin_activity(
                                    begin,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                builder.push(Event::message_recv(
                                    end,
                                    rank as u32,
                                    src as u32,
                                    bytes,
                                ));
                                builder.push(Event::end_activity(
                                    end,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                states[rank].handles.remove(&handle);
                                states[rank].wait_started = None;
                                states[rank].time = end;
                                states[rank].pc += 1;
                                Ok(true)
                            }
                            MsgInFlight::Rendezvous {
                                sender_ready,
                                bytes,
                            } => {
                                queue.pop_front();
                                // The receive was posted at irecv time, so
                                // the rendezvous can start as soon as both
                                // sides are ready.
                                let sync = posted.max(sender_ready);
                                let sender_done =
                                    sync + o + self.config.link_transfer_time(src, rank, bytes);
                                let recv_done = sender_done + self.config.link_latency(src, rank);
                                builder.push(Event::begin_activity(
                                    sender_ready,
                                    src as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                builder.push(Event::message_send(
                                    sender_ready,
                                    src as u32,
                                    rank as u32,
                                    bytes,
                                ));
                                builder.push(Event::end_activity(
                                    sender_done,
                                    src as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                states[src].time = sender_done;
                                states[src].send_registered = false;
                                states[src].pc += 1;
                                let end = begin.max(recv_done);
                                builder.push(Event::begin_activity(
                                    begin,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                builder.push(Event::message_recv(
                                    end,
                                    rank as u32,
                                    src as u32,
                                    bytes,
                                ));
                                builder.push(Event::end_activity(
                                    end,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                states[rank].handles.remove(&handle);
                                states[rank].wait_started = None;
                                states[rank].time = end;
                                states[rank].pc += 1;
                                stats.messages += 1;
                                stats.bytes += bytes;
                                Ok(true)
                            }
                        }
                    }
                }
            }
            Op::Collective { kind, bytes } => {
                let instance = states[rank].collective_counter;
                if collectives.len() <= instance {
                    collectives.push(CollectiveInstance {
                        kind,
                        max_bytes: 0,
                        arrivals: vec![None; program.ranks()],
                        arrived: 0,
                    });
                }
                let inst = &mut collectives[instance];
                if inst.kind != kind {
                    return Err(SimError::CollectiveMismatch {
                        instance,
                        detail: format!("rank {rank} calls {kind} but instance is {}", inst.kind),
                    });
                }
                if states[rank].collective_arrived.is_none() {
                    states[rank].collective_arrived = Some(states[rank].time);
                    inst.arrivals[rank] = Some(states[rank].time);
                    inst.arrived += 1;
                    inst.max_bytes = inst.max_bytes.max(bytes);
                }
                if inst.arrived < program.ranks() {
                    return Ok(false);
                }
                // Everyone has arrived: release all participants.
                let ready = inst
                    .arrivals
                    .iter()
                    .map(|a| a.expect("all arrived"))
                    .fold(f64::NEG_INFINITY, f64::max);
                let cost = collective_cost(kind, program.ranks(), inst.max_bytes, &self.config);
                let completion = ready + cost;
                let activity = if kind == CollectiveKind::Barrier {
                    ActivityKind::Synchronization
                } else {
                    ActivityKind::Collective
                };
                for (r, state) in states.iter_mut().enumerate() {
                    let arrival = collectives[instance].arrivals[r].expect("all arrived");
                    builder.push(Event::begin_activity(arrival, r as u32, activity));
                    builder.push(Event::end_activity(completion, r as u32, activity));
                    state.time = completion;
                    state.collective_arrived = None;
                    state.collective_counter += 1;
                    state.pc += 1;
                }
                stats.collectives += 1;
                Ok(true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use limba_model::ProcessorId;

    fn machine(n: usize) -> MachineConfig {
        MachineConfig::new(n)
            .with_overhead(1e-6)
            .with_latency(10e-6)
            .with_bandwidth(1e8)
            .with_eager_threshold(8192)
    }

    #[test]
    fn compute_only_program_times_add_up() {
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).compute(1.0).compute(0.5).leave(r);
        pb.rank(1).enter(r).compute(2.0).leave(r);
        let out = Simulator::new(machine(2))
            .run(&pb.build().unwrap())
            .unwrap();
        assert!((out.stats.rank_end_times[0] - 1.5).abs() < 1e-12);
        assert!((out.stats.rank_end_times[1] - 2.0).abs() < 1e-12);
        assert!((out.stats.makespan - 2.0).abs() < 1e-12);
        let m = out.reduce().unwrap().measurements;
        assert!((m.time(r, ActivityKind::Computation, ProcessorId::new(0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slow_node_takes_proportionally_longer() {
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.spmd(|_, mut ops| {
            ops.enter(r).compute(1.0).leave(r);
        });
        let cfg = machine(2).with_cpu_speed(1, 0.5);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        assert!((out.stats.rank_end_times[0] - 1.0).abs() < 1e-12);
        assert!((out.stats.rank_end_times[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eager_send_recv_timing() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1000).leave(r);
        pb.rank(1).enter(r).recv(0).leave(r);
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        // Sender: o + 1000/B = 1e-6 + 1e-5 = 1.1e-5.
        assert!((out.stats.rank_end_times[0] - 1.1e-5).abs() < 1e-12);
        // Receiver posted at 0; arrival = 1.1e-5 + 1e-5 latency = 2.1e-5.
        assert!((out.stats.rank_end_times[1] - 2.1e-5).abs() < 1e-12);
        assert_eq!(out.stats.messages, 1);
        assert_eq!(out.stats.bytes, 1000);
    }

    #[test]
    fn late_receiver_pays_only_overhead() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1000).leave(r);
        pb.rank(1).enter(r).compute(1.0).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        // Message long arrived; receive costs just the overhead.
        assert!((out.stats.rank_end_times[1] - (1.0 + 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn rendezvous_blocks_sender_until_receiver_posts() {
        let cfg = machine(2); // eager threshold 8192
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1_000_000).leave(r);
        pb.rank(1).enter(r).compute(2.0).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        // Sync at 2.0; sender done at 2.0 + o + 0.01; receiver + latency.
        let sender_done = 2.0 + 1e-6 + 0.01;
        assert!((out.stats.rank_end_times[0] - sender_done).abs() < 1e-9);
        assert!((out.stats.rank_end_times[1] - (sender_done + 1e-5)).abs() < 1e-9);
        // Sender's point-to-point time includes the 2 s wait.
        let m = out.reduce().unwrap().measurements;
        let t = m.time(r, ActivityKind::PointToPoint, ProcessorId::new(0));
        assert!(t > 2.0, "sender p2p time {t} should include the wait");
    }

    #[test]
    fn message_order_is_fifo_per_channel() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 100).send(1, 200).leave(r);
        pb.rank(1).enter(r).recv(0).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        let reduced = out.reduce().unwrap();
        // Both messages received: counts show 2 messages, 300 bytes.
        use limba_model::CountKind;
        assert_eq!(
            reduced
                .counts
                .count(r, CountKind::MessagesReceived, ProcessorId::new(1)),
            2.0
        );
        assert_eq!(
            reduced
                .counts
                .count(r, CountKind::BytesReceived, ProcessorId::new(1)),
            300.0
        );
    }

    #[test]
    fn barrier_makes_everyone_wait_for_the_slowest() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("r");
        pb.spmd(|rank, mut ops| {
            ops.enter(r).compute(1.0 + rank as f64).barrier().leave(r);
        });
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        let cost = collective_cost(CollectiveKind::Barrier, 4, 0, &cfg);
        for t in &out.stats.rank_end_times {
            assert!((t - (4.0 + cost)).abs() < 1e-9);
        }
        // Rank 0 waited ~3 s in the barrier; rank 3 almost nothing.
        let m = out.reduce().unwrap().measurements;
        let w0 = m.time(r, ActivityKind::Synchronization, ProcessorId::new(0));
        let w3 = m.time(r, ActivityKind::Synchronization, ProcessorId::new(3));
        assert!(w0 > 2.9 && w0 < 3.1, "w0 = {w0}");
        assert!(w3 < 0.1, "w3 = {w3}");
        assert_eq!(out.stats.collectives, 1);
    }

    #[test]
    fn reduce_attributes_collective_time() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("r");
        pb.spmd(|_, mut ops| {
            ops.enter(r).reduce(4096).leave(r);
        });
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        let m = out.reduce().unwrap().measurements;
        let cost = collective_cost(CollectiveKind::Reduce, 4, 4096, &cfg);
        for p in 0..4 {
            let t = m.time(r, ActivityKind::Collective, ProcessorId::new(p));
            assert!((t - cost).abs() < 1e-12);
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).recv(1).leave(r);
        pb.rank(1).enter(r).recv(0).leave(r);
        let err = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
        assert!(err.to_string().contains("rank 0"));
    }

    #[test]
    fn rendezvous_deadlock_detected_for_two_big_sends() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1 << 20).recv(1).leave(r);
        pb.rank(1).enter(r).send(0, 1 << 20).recv(0).leave(r);
        let err = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn eager_cross_sends_do_not_deadlock() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 100).recv(1).leave(r);
        pb.rank(1).enter(r).send(0, 100).recv(0).leave(r);
        Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
    }

    #[test]
    fn program_larger_than_machine_rejected() {
        let pb = ProgramBuilder::new(8);
        let program = pb.build().unwrap();
        assert!(matches!(
            Simulator::new(machine(4)).run(&program),
            Err(SimError::RankOutOfRange { .. })
        ));
    }

    #[test]
    fn isend_overlaps_computation() {
        let cfg = machine(2);
        // Blocking version: send (big, rendezvous) then compute.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1 << 20).compute(1.0).leave(r);
        pb.rank(1).enter(r).compute(1.0).recv(0).leave(r);
        let blocking = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();

        // Nonblocking version overlaps the transfer with the compute.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0)
            .enter(r)
            .isend(1, 1 << 20, 7)
            .compute(1.0)
            .wait(7)
            .leave(r);
        pb.rank(1).enter(r).compute(1.0).recv(0).leave(r);
        let nonblocking = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();

        assert!(
            nonblocking.stats.makespan < blocking.stats.makespan,
            "nonblocking {} not faster than blocking {}",
            nonblocking.stats.makespan,
            blocking.stats.makespan
        );
    }

    #[test]
    fn irecv_wait_matches_early_and_late_messages() {
        let cfg = machine(2);
        // Message arrives before the wait: wait is (nearly) free.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 100).leave(r);
        pb.rank(1)
            .enter(r)
            .irecv(0, 1)
            .compute(1.0)
            .wait(1)
            .leave(r);
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        assert!((out.stats.rank_end_times[1] - (1.0 + 1e-6)).abs() < 1e-7);

        // Message arrives after the wait: the wait blocks until arrival.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).compute(2.0).send(1, 100).leave(r);
        pb.rank(1).enter(r).irecv(0, 1).wait(1).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        assert!(out.stats.rank_end_times[1] > 2.0);
        out.trace.validate().unwrap();
    }

    #[test]
    fn irecv_wait_matches_rendezvous_sender() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1 << 20).leave(r); // rendezvous size
        pb.rank(1)
            .enter(r)
            .irecv(0, 3)
            .compute(0.5)
            .wait(3)
            .leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        out.trace.validate().unwrap();
        // The rendezvous could start at the irecv post (~0), so the
        // sender finishes around o + transfer ≈ 0.01 s, well before the
        // receiver's wait at 0.5.
        assert!(out.stats.rank_end_times[0] < 0.1);
        assert_eq!(out.stats.messages, 1);
    }

    #[test]
    fn handle_misuse_is_rejected_at_build_time() {
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).isend(1, 10, 1).isend(1, 10, 1).wait(1).wait(1);
        assert!(matches!(pb.build(), Err(SimError::BadHandle { .. })));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).wait(9);
        assert!(matches!(pb.build(), Err(SimError::BadHandle { .. })));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).irecv(1, 2);
        assert!(matches!(pb.build(), Err(SimError::BadHandle { .. })));
    }

    #[test]
    fn gather_scatter_allgather_run_and_attribute_collective_time() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("r");
        pb.spmd(|_, mut ops| {
            ops.enter(r)
                .gather(1024)
                .scatter(1024)
                .allgather(512)
                .leave(r);
        });
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        let m = out.reduce().unwrap().measurements;
        let expected = collective_cost(CollectiveKind::Gather, 4, 1024, &cfg)
            + collective_cost(CollectiveKind::Scatter, 4, 1024, &cfg)
            + collective_cost(CollectiveKind::Allgather, 4, 512, &cfg);
        for p in 0..4 {
            let t = m.time(r, ActivityKind::Collective, ProcessorId::new(p));
            assert!((t - expected).abs() < 1e-12);
        }
        assert_eq!(out.stats.collectives, 3);
    }

    #[test]
    fn slow_link_delays_only_its_traffic() {
        // Rank 0 sends the same payload to ranks 1 and 2, but the 0→2
        // link is ten times slower.
        let cfg = machine(3).with_link(0, 2, 10e-5, 1e7);
        let mut pb = ProgramBuilder::new(3);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 4000).send(2, 4000).leave(r);
        pb.rank(1).enter(r).recv(0).leave(r);
        pb.rank(2).enter(r).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        let m = out.reduce().unwrap().measurements;
        let t1 = m.time(r, ActivityKind::PointToPoint, ProcessorId::new(1));
        let t2 = m.time(r, ActivityKind::PointToPoint, ProcessorId::new(2));
        assert!(t2 > 3.0 * t1, "slow-link receiver {t2} vs fast {t1}");
    }

    #[test]
    fn link_overrides_are_validated() {
        let cfg = machine(2).with_link(0, 1, -1.0, 1e6);
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).compute(0.1);
        assert!(matches!(
            Simulator::new(cfg).run(&pb.build().unwrap()),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn trace_is_well_formed_and_deterministic() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let a = pb.add_region("a");
        let b = pb.add_region("b");
        pb.spmd(|rank, mut ops| {
            ops.enter(a)
                .compute(0.1 * (rank + 1) as f64)
                .allreduce(512)
                .leave(a);
            ops.enter(b);
            if rank > 0 {
                ops.send(rank - 1, 2048);
            }
            if rank < 3 {
                ops.recv(rank + 1);
            }
            ops.barrier().leave(b);
        });
        let program = pb.build().unwrap();
        let out1 = Simulator::new(cfg.clone()).run(&program).unwrap();
        let out2 = Simulator::new(cfg).run(&program).unwrap();
        out1.trace.validate().unwrap();
        assert_eq!(out1.trace, out2.trace);
        assert_eq!(out1.stats, out2.stats);
    }
}
