//! The simulator execution core.
//!
//! Per-op semantics live in one shared executor ([`Exec`]); two
//! schedulers drive it:
//!
//! * **event-driven** (the default, [`Simulator::run`]) — an explicit
//!   ready-queue of runnable ranks plus wakeup bookkeeping indexed by
//!   what a rank is blocked on (a `(src, dst)` channel, the open
//!   collective instance, or a rendezvous match), so completing an op
//!   re-enqueues only the specific ranks it can unblock;
//! * **polling** ([`Simulator::run_polling`]) — the original
//!   O(rounds × n) engine this one replaced, preserved verbatim in the
//!   [`crate::polling`] module (HashMap-keyed channels and all) as the
//!   reference implementation for the equivalence harness and the perf
//!   baseline the bench runner measures against.
//!
//! Both engines execute the exact same op sequence in the exact same
//! order, so their traces, statistics, and diagnostics are bit-identical
//! (see DESIGN.md, "Simulator scheduling", for the argument; the
//! equivalence harness under `tests/` locks it empirically).

use std::cell::Cell;
use std::collections::VecDeque;

use limba_model::ActivityKind;
use limba_trace::{Event, ReducedTrace, SalvagedTrace, Trace, TraceBuilder, TraceError, TraceSink};

use crate::arena::{ChannelIndex, HandleArena, SparseMap};
use crate::balance::{BalancePlan, BalanceReport, BalanceState, HostView};
use crate::collectives::collective_cost;
use crate::faults::{FaultPlan, FaultReport, FaultState};
use crate::{CollectiveKind, MachineConfig, Op, Program, SimError};

/// Maximum number of stuck ranks listed individually in a deadlock
/// report; the rest are summarized as a count so pathological deadlocks
/// on large machines don't allocate unboundedly.
const DEADLOCK_REPORT_CAP: usize = 8;

/// Formats the capped deadlock report from `(rank, pc)` pairs of stuck
/// ranks, in rank order. Shared by both schedulers so their diagnostics
/// are identical by construction.
pub(crate) fn format_deadlock_detail(
    program: &Program,
    stuck: impl Iterator<Item = (usize, usize)>,
) -> String {
    let stuck: Vec<(usize, usize)> = stuck.collect();
    let mut detail = stuck
        .iter()
        .take(DEADLOCK_REPORT_CAP)
        .map(|&(r, pc)| format!("rank {r} stuck at op {:?} (pc {pc})", program.ops(r)[pc]))
        .collect::<Vec<_>>()
        .join("; ");
    if stuck.len() > DEADLOCK_REPORT_CAP {
        use std::fmt::Write as _;
        let _ = write!(
            detail,
            "; ... and {} more stuck ranks",
            stuck.len() - DEADLOCK_REPORT_CAP
        );
    }
    detail
}

/// Cooperative interruption budget for a single simulation run,
/// checked inside both engines' scheduling loops.
///
/// All three limits are optional; the default budget is unlimited. A
/// tripped budget aborts the run with [`SimError::Interrupted`] and
/// discards all partial state — a budgeted run either completes
/// bit-identically to an unbudgeted one or produces no output at all,
/// which is what lets a supervisor re-run interrupted work later with
/// byte-identical results.
///
/// Op-count budgets are deterministic: both engines execute exactly the
/// same program ops, so `max_ops` either interrupts on every engine and
/// thread count or on none. Deadlines and cancellation are wall-clock
/// signals and inherently racy; they decide only *whether* a run
/// finishes, never what a finished run contains.
#[derive(Debug, Clone, Default)]
pub struct RunBudget {
    /// Abort after this many executed program ops.
    pub max_ops: Option<u64>,
    /// Abort once this wall-clock instant passes.
    pub deadline: Option<std::time::Instant>,
    /// Abort when this token is cancelled.
    pub cancel: Option<limba_par::CancelToken>,
}

/// How many executed ops pass between wall-clock/cancellation polls
/// (the op counter itself is checked on every op). The first op always
/// polls, so even tiny programs notice a pre-tripped token.
const BUDGET_POLL_INTERVAL: u64 = 16;

impl RunBudget {
    /// An unlimited budget: never interrupts.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Whether no limit is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.max_ops.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// Polls the budget after the `ops_done`-th executed op; returns the
    /// interruption error when a limit has fired.
    pub(crate) fn check(&self, ops_done: u64) -> Option<SimError> {
        if let Some(max) = self.max_ops {
            if ops_done > max {
                return Some(SimError::Interrupted {
                    detail: format!("op budget of {max} exhausted after {ops_done} ops"),
                });
            }
        }
        if ops_done % BUDGET_POLL_INTERVAL == 1 {
            if let Some(deadline) = self.deadline {
                if std::time::Instant::now() >= deadline {
                    return Some(SimError::Interrupted {
                        detail: format!("wall-clock deadline exceeded after {ops_done} ops"),
                    });
                }
            }
            if let Some(cancel) = &self.cancel {
                if cancel.is_cancelled() {
                    return Some(SimError::Interrupted {
                        detail: format!("cancelled after {ops_done} ops"),
                    });
                }
            }
        }
        None
    }
}

/// Summary statistics of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Per-rank completion time in seconds.
    pub rank_end_times: Vec<f64>,
    /// Latest completion time over all ranks (the run's makespan).
    pub makespan: f64,
    /// Total point-to-point messages delivered.
    pub messages: u64,
    /// Total point-to-point payload bytes delivered.
    pub bytes: u64,
    /// Number of collective operations completed.
    pub collectives: u64,
}

/// Output of a simulation: the recorded trace plus summary statistics.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// The event trace of the run.
    pub trace: Trace,
    /// Summary statistics.
    pub stats: SimStats,
    /// What the fault plan did to this run; empty for unfaulted runs.
    pub faults: FaultReport,
    /// What the balance plan did to this run; inactive (`policy: None`)
    /// for unbalanced runs.
    pub balance: BalanceReport,
}

impl SimOutput {
    /// Reduces the trace to measurement matrices (see
    /// [`limba_trace::reduce`]).
    ///
    /// Simulator-produced traces are well-formed by construction, so
    /// this takes the fast path that skips structural re-validation
    /// ([`limba_trace::reduce_well_formed`]). For traces loaded from
    /// external files, use the checked [`limba_trace::reduce`] — or
    /// [`SimOutput::reduce_checked`] when the output was deserialized
    /// rather than produced by [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Propagates reduction errors; a trace produced by the simulator
    /// always reduces, so failures indicate a bug.
    pub fn reduce(&self) -> Result<ReducedTrace, SimError> {
        Ok(limba_trace::reduce_well_formed(&self.trace)?)
    }

    /// Like [`SimOutput::reduce`], but re-validates the trace first and
    /// *salvages* truncated per-rank streams instead of erroring. Use
    /// when the trace did not come straight out of an unfaulted
    /// [`Simulator::run`] — it round-tripped through an untrusted file,
    /// or the run was fault-injected and some ranks crashed mid-region.
    ///
    /// The result carries per-rank coverage
    /// ([`limba_trace::RankCoverage`]) flagging every rank whose stream
    /// ended with regions still open, so downstream views can mark
    /// incomplete data instead of silently under-reporting it.
    ///
    /// # Errors
    ///
    /// Returns a structured [`limba_trace::TraceError`] naming the
    /// offending event index and rank when the trace is corrupt (not
    /// merely truncated), and propagates reduction errors.
    pub fn reduce_checked(&self) -> Result<SalvagedTrace, SimError> {
        Ok(limba_trace::reduce_checked(&self.trace)?)
    }
}

/// Output of a *streaming* simulation run: everything a [`SimOutput`]
/// carries except the trace itself, which was delivered incrementally
/// to the run's [`TraceSink`] instead of materialized. What remains is
/// O(ranks), so a streaming run's resident footprint is bounded by the
/// machine, not the event count.
#[derive(Debug, Clone)]
pub struct StreamOutput {
    /// Summary statistics.
    pub stats: SimStats,
    /// What the fault plan did to this run; empty for unfaulted runs.
    pub faults: FaultReport,
    /// What the balance plan did to this run; inactive (`policy: None`)
    /// for unbalanced runs.
    pub balance: BalanceReport,
}

/// In-flight message on one `(src, dst)` channel.
#[derive(Debug, Clone, Copy)]
enum MsgInFlight {
    /// Sender already finished its side; payload arrives at `arrival`.
    Eager { arrival: f64, bytes: u64 },
    /// Sender is blocked waiting for the receiver (rendezvous protocol);
    /// it became ready at `sender_ready`.
    Rendezvous { sender_ready: f64, bytes: u64 },
}

/// Outstanding nonblocking request of one rank.
#[derive(Debug, Clone, Copy)]
enum Outstanding {
    /// Nonblocking send: the local buffer is free at this time.
    SendDone(f64),
    /// Nonblocking receive posted at this time, waiting for `src`.
    RecvPending { src: usize, posted: f64 },
}

/// Per-rank execution state, one flat entry per rank in a single
/// allocation. `pc` and `time` are what the scheduler reads and writes
/// on every op; the wakeup index ([`BlockedOn`]) and the blocking-
/// boundary bookkeeping ride in the same entry because every consumer
/// of those fields — checking whether a message's receiver is blocked,
/// resuming it, registering a rendezvous — is about to touch
/// `pc`/`time` on the same cache line anyway. Outstanding nonblocking
/// requests are pooled separately in a free-listed [`HandleArena`].
/// Total footprint is O(ranks + outstanding requests).
#[derive(Debug, Clone, Copy)]
struct RankHot {
    pc: usize,
    time: f64,
    /// The rank's planned fail-stop time, copied out of the fault plan
    /// at construction (`INFINITY` when none is scheduled), so the
    /// per-op crash boundary is one clock compare against a field on
    /// the line the scheduler already holds.
    crash_at: f64,
    /// What this rank is waiting on; `NOTHING` while runnable or done.
    blocked: BlockedOn,
    /// Set when a Recv was reached but could not complete (posted time).
    recv_posted: Option<f64>,
    /// Set when a Wait on a pending receive was reached but could not
    /// complete (the time the wait started).
    wait_started: Option<f64>,
    /// True when the current Send op is already queued as a rendezvous.
    send_registered: bool,
}

impl Default for RankHot {
    fn default() -> Self {
        RankHot {
            pc: 0,
            time: 0.0,
            crash_at: f64::INFINITY,
            blocked: BlockedOn::NOTHING,
            recv_posted: None,
            wait_started: None,
            send_registered: false,
        }
    }
}

#[derive(Debug)]
struct RankArena {
    hot: Vec<RankHot>,
}

/// What a blocked rank is waiting on — the wakeup index of the
/// event-driven scheduler, packed into four bytes. A rank blocks on at
/// most one thing at a time, so a per-rank slot doubles as the
/// per-resource waiter list; and only `dst` can ever wait on channel
/// `(src, dst)`, so the sender index alone identifies the channel. The
/// sentinels live above [`crate::MAX_PROCESSORS`], which caps real rank
/// indices far below them. Four bytes keep the slot inside
/// [`RankHot`]'s tail padding, so tracking it costs no memory at all.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BlockedOn(u32);

impl Default for BlockedOn {
    fn default() -> Self {
        BlockedOn::NOTHING
    }
}

impl BlockedOn {
    /// Runnable or finished: not waiting on anything.
    const NOTHING: BlockedOn = BlockedOn(u32::MAX);
    /// A registered rendezvous send waiting for the receiver to match.
    const MATCH: BlockedOn = BlockedOn(u32::MAX - 1);
    /// Waiting inside the open collective instance.
    const COLLECTIVE: BlockedOn = BlockedOn(u32::MAX - 2);
    /// Recorded as fail-stopped: never woken, never scheduled again.
    const CRASHED: BlockedOn = BlockedOn(u32::MAX - 3);

    /// Waiting for a message from `src`.
    fn channel(src: usize) -> BlockedOn {
        BlockedOn(src as u32)
    }
}

/// Outcome of attempting one op of one rank.
enum StepOutcome {
    /// The op completed; the rank may run its next op.
    Ran,
    /// The rank cannot progress until the given resource fires.
    Blocked(BlockedOn),
    /// The rank's program is finished.
    Done,
    /// The fault plan crashed the rank at this op boundary; it executes
    /// nothing further and its trace is truncated here.
    Crashed,
}

/// The one reusable collective instance. Collective call `k` completes
/// atomically for every rank before any rank can reach call `k + 1`, so
/// at most one instance is ever open; this slot recycles its arrival
/// buffer across instances (a free list of size one) instead of growing
/// a per-instance vector for the life of the run.
#[derive(Debug)]
struct CollectiveSlot {
    active: bool,
    kind: CollectiveKind,
    max_bytes: u64,
    /// Arrival time of each rank in the open instance; `arrivals[r]`
    /// doubles as the per-rank "already arrived" flag, so re-attempts
    /// stay idempotent without separate per-rank state.
    arrivals: Vec<Option<f64>>,
    arrived: usize,
    /// Running max of the arrival times — the instance's release time
    /// is ready when the last rank arrives, with no fold over
    /// `arrivals`. Arrival times are non-negative finite floats, so the
    /// running max is order-independent and bit-equal to the fold.
    ready: f64,
    /// Instances completed so far. Collectives complete atomically for
    /// every rank, so one global counter stands in for the per-rank
    /// counters (every rank has completed exactly this many), and
    /// doubles as the instance index in mismatch errors.
    completed: usize,
}

/// The scheduler's two rank rounds — the one being drained and the one
/// being filled — as a pair of fixed-universe bitsets over `u64` words
/// in a *single* allocation. Insert and remove are O(1) and
/// idempotent; draining in ascending order costs one `trailing_zeros`
/// scan per word, so advancing past a run of absent ranks reads one
/// word per 64 ranks where the polling engine pays a full re-attempt
/// per blocked rank. Round turnover flips a word offset instead of
/// swapping two sets.
#[derive(Debug)]
struct Rounds {
    /// `2 * per_round` bit-words: the current round's words start at
    /// `cur`, the next round's at `per_round - cur`.
    words: Vec<u64>,
    /// Words per round.
    per_round: usize,
    /// Word offset of the current round — `0` or `per_round`, flipped
    /// at each turnover.
    cur: usize,
    len_current: usize,
    len_next: usize,
}

impl Rounds {
    /// Builds the round pair for `n` ranks around a (possibly reused)
    /// word buffer, zeroing exactly the words a fresh pair would hold.
    fn with_words(mut words: Vec<u64>, n: usize) -> Self {
        let per_round = n.div_ceil(64);
        words.clear();
        words.resize(2 * per_round, 0);
        Rounds {
            words,
            per_round,
            cur: 0,
            len_current: 0,
            len_next: 0,
        }
    }

    /// Releases the word buffer for the next run to reuse.
    fn into_words(self) -> Vec<u64> {
        self.words
    }

    #[inline]
    fn next_base(&self) -> usize {
        self.per_round - self.cur
    }

    #[inline]
    fn insert_at(words: &mut [u64], base: usize, i: usize) -> bool {
        let (w, bit) = (base + i / 64, 1u64 << (i % 64));
        let new = words[w] & bit == 0;
        words[w] |= bit;
        new
    }

    fn insert_current(&mut self, i: usize) {
        if Self::insert_at(&mut self.words, self.cur, i) {
            self.len_current += 1;
        }
    }

    fn insert_next(&mut self, i: usize) {
        let base = self.next_base();
        if Self::insert_at(&mut self.words, base, i) {
            self.len_next += 1;
        }
    }

    /// Inserts every index in `[lo, hi)` into one round with whole-word
    /// masks — the bulk release path for collective completions, where
    /// all other ranks unblock at once and bit-at-a-time insertion
    /// would rescan the set n times. `into_next` picks the round.
    fn insert_range(&mut self, into_next: bool, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        let base = if into_next {
            self.next_base()
        } else {
            self.cur
        };
        let len = if into_next {
            &mut self.len_next
        } else {
            &mut self.len_current
        };
        let (first, last) = (lo / 64, (hi - 1) / 64);
        for w in first..=last {
            let mask_lo = if w == first { !0u64 << (lo % 64) } else { !0 };
            let mask_hi = match hi - w * 64 {
                up if up >= 64 => !0,
                up => (1u64 << up) - 1,
            };
            let mask = mask_lo & mask_hi;
            let word = self.words[base + w];
            *len += (mask & !word).count_ones() as usize;
            self.words[base + w] = word | mask;
        }
    }

    fn current_is_empty(&self) -> bool {
        self.len_current == 0
    }

    fn next_is_empty(&self) -> bool {
        self.len_next == 0
    }

    /// Makes the (filled) next round current. Only called when the
    /// current round has drained, so the flip just moves the length.
    fn turnover(&mut self) {
        debug_assert_eq!(self.len_current, 0);
        self.cur = self.per_round - self.cur;
        self.len_current = self.len_next;
        self.len_next = 0;
    }

    /// The current round's members in ascending order, without removing
    /// them. The parallel scheduler snapshots each round's runnable set
    /// this way before fanning speculation out over worker threads.
    fn current_members(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len_current);
        let words = &self.words[self.cur..self.cur + self.per_round];
        for (w, &word) in words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                out.push(w * 64 + bit);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Removes and returns the current round's smallest member at or
    /// after `from`.
    fn pop_current_at_or_after(&mut self, from: usize) -> Option<usize> {
        if self.len_current == 0 {
            return None;
        }
        let words = &mut self.words[self.cur..self.cur + self.per_round];
        let mut w = from / 64;
        let mut word = match words.get(w) {
            Some(&word) => word & (!0u64 << (from % 64)),
            None => return None,
        };
        loop {
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                words[w] &= !(1u64 << bit);
                self.len_current -= 1;
                return Some(w * 64 + bit);
            }
            w += 1;
            word = match words.get(w) {
                Some(&word) => word,
                None => return None,
            };
        }
    }
}

/// A speculated run of purely-local ops, produced by a worker thread in
/// the parallel scheduler and replayed by the merge loop.
struct LocalPrefix {
    rank: usize,
    /// Snapshot the speculation started from. The merge loop applies
    /// the prefix only when the live state still matches — a validation
    /// that makes the fast path self-checking rather than trusted.
    pc0: usize,
    time0: f64,
    /// Program counter and clock after the prefix.
    pc: usize,
    time: f64,
    /// Trace events of the prefix, in program order.
    events: Vec<Event>,
}

/// Speculatively executes the longest prefix of purely-local ops of
/// `rank` starting from `(pc0, time0)`, against immutable state only.
///
/// *Local* means the op reads nothing another rank can influence and
/// writes nothing another rank can observe: `Enter`/`Leave` always
/// (they read the rank's own clock and emit its own events), `Compute`
/// when no balance plan is attached (balancing may migrate work across
/// ranks at compute boundaries, which is inherently cross-rank).
/// Message ops, collectives, and nonblocking completions all touch
/// shared channels or the collective slot, so speculation stops there
/// and leaves them to the sequential merge loop.
///
/// Fault plans stay exact: `compute_end` is a pure function of the
/// plan, and speculation stops *before* any op boundary where the crash
/// check would fire, so recording the crash (a mutation) happens in the
/// merge loop exactly where the sequential engine records it.
///
/// Returns `None` when the first op is already non-local.
fn speculate_local(
    program: &Program,
    config: &MachineConfig,
    faults: Option<&FaultState>,
    balance_active: bool,
    rank: usize,
    pc0: usize,
    time0: f64,
) -> Option<LocalPrefix> {
    let ops = program.ops(rank);
    let mut pc = pc0;
    let mut time = time0;
    let mut events = Vec::new();
    while pc < ops.len() {
        if let Some(fs) = faults {
            if fs.should_crash(rank, time) {
                break;
            }
        }
        match ops[pc] {
            Op::Enter { region } => {
                events.push(Event::enter(time, rank as u32, region));
            }
            Op::Leave { region } => {
                events.push(Event::leave(time, rank as u32, region));
            }
            Op::Compute { seconds } if !balance_active => {
                let duration = seconds / config.cpu_speed(rank);
                time = match faults {
                    None => time + duration,
                    Some(fs) => fs.compute_end(rank, time, duration),
                };
            }
            _ => break,
        }
        pc += 1;
    }
    if pc == pc0 {
        return None;
    }
    Some(LocalPrefix {
        rank,
        pc0,
        time0,
        pc,
        time,
        events,
    })
}

/// Where the executor's recorded events go: materialized into a
/// [`TraceBuilder`] (the classic path, verbatim), or streamed to a
/// [`TraceSink`] in frames of `frame_events` events as rounds retire —
/// the producer half of the streaming pipeline, holding at most one
/// frame of events at a time.
///
/// Sink errors don't unwind through the hot path: they latch into
/// `failed`, recording stops, and the scheduler loops surface the
/// latched error as [`SimError::Trace`] at the next round boundary.
/// This is how consumer cancellation (a dropped pipeline stage) stops
/// a running simulation.
enum Recorder<'a> {
    Materialize(TraceBuilder),
    Stream {
        /// Events of the frame being filled.
        buf: Vec<Event>,
        /// Flush threshold: events per emitted frame.
        frame_events: usize,
        sink: &'a mut dyn TraceSink,
        failed: Option<TraceError>,
    },
}

impl Recorder<'_> {
    #[inline]
    fn push(&mut self, e: Event) {
        match self {
            Recorder::Materialize(b) => b.push(e),
            Recorder::Stream {
                buf,
                frame_events,
                sink,
                failed,
            } => {
                if failed.is_some() {
                    return;
                }
                buf.push(e);
                if buf.len() >= *frame_events {
                    if let Err(err) = sink.events(buf) {
                        *failed = Some(err);
                    }
                    buf.clear();
                }
            }
        }
    }

    #[inline]
    fn extend_events(&mut self, events: &[Event]) {
        match self {
            Recorder::Materialize(b) => b.extend_events(events),
            Recorder::Stream {
                buf,
                frame_events,
                sink,
                failed,
            } => {
                if failed.is_some() {
                    return;
                }
                buf.extend_from_slice(events);
                if buf.len() >= *frame_events {
                    if let Err(err) = sink.events(buf) {
                        *failed = Some(err);
                    }
                    buf.clear();
                }
            }
        }
    }

    /// The latched sink error, if any — checked by the scheduler loops
    /// at round boundaries to abort a run whose consumer failed.
    fn take_failure(&mut self) -> Option<TraceError> {
        match self {
            Recorder::Materialize(_) => None,
            Recorder::Stream { failed, .. } => failed.take(),
        }
    }

    /// Flushes the partial frame and finishes the sink (streaming mode).
    fn finish_stream(&mut self) -> Result<(), TraceError> {
        match self {
            Recorder::Materialize(_) => Ok(()),
            Recorder::Stream {
                buf, sink, failed, ..
            } => {
                if let Some(err) = failed.take() {
                    return Err(err);
                }
                if !buf.is_empty() {
                    sink.events(buf)?;
                    buf.clear();
                }
                sink.finish()
            }
        }
    }
}

/// The executor: rank arenas, flattened hot-path structures, and the
/// per-op semantics the event-driven scheduler drives. Every structure
/// here is sized by what the run actually touches — ranks, live
/// channels, outstanding requests — never by `ranks²`, which is what
/// lets a 64k-rank nearest-neighbour program fit in a few megabytes.
struct Exec<'a> {
    config: &'a MachineConfig,
    program: &'a Program,
    n: usize,
    /// Per-rank execution state, struct-of-arrays (see [`RankArena`]).
    arena: RankArena,
    /// Outstanding nonblocking requests of all ranks, pooled.
    handles: HandleArena<Outstanding>,
    /// Routing table: dense channel key `src * n + dst` → slot in
    /// `channel_pool`. Adaptive: a direct table (bounded at 256 KiB)
    /// for small machines, an open-addressed sparse map above — only
    /// channels that carry a message occupy a slot there, replacing
    /// the dense `Vec<u32>` index whose 4·n² bytes made 100k-rank
    /// machines unrepresentable. Lookups are pure functions of the
    /// key, so routing decisions cannot diverge between engines.
    channels: ChannelIndex,
    channel_pool: Vec<VecDeque<MsgInFlight>>,
    coll: CollectiveSlot,
    /// Memoized collective costs keyed `(kind, max_bytes)`. The
    /// participant set is always all ranks and the config is fixed per
    /// run, so the full key fits in the pair; programs reuse a handful
    /// of distinct collective shapes across thousands of calls, and a
    /// linear scan of this short list beats recomputing the cost model.
    coll_costs: Vec<(CollectiveKind, u64, f64)>,
    builder: Recorder<'a>,
    stats: SimStats,
    /// The round pair: ready ranks of the running round (drained in
    /// ascending order) and ranks woken for the next one (woken by a
    /// rank at or after their own index), flipped at round turnover.
    rounds: Rounds,
    /// Lazily-filled per-link `(latency, bandwidth)` cache, keyed like
    /// `channels`; `Some` only when the machine has per-link overrides
    /// (the dense n² table it replaces was materialized up front).
    link_cache: Option<SparseMap<(f64, f64)>>,
    /// Active fault injection, `None` for unfaulted runs (and for empty
    /// plans, so the no-fault arithmetic stays bit-exact).
    faults: Option<FaultState>,
    /// Whether the fault plan schedules any crash at all; hoists the
    /// per-op and per-wakeup crash checks off the hot path of runs
    /// whose plans only slow or drop (the common chaos configuration).
    crash_possible: bool,
    /// Active dynamic balancing, `None` for unbalanced runs (the
    /// default compute arithmetic stays bit-exact).
    balance: Option<BalanceState>,
    /// Interruption budget, `None` for unbudgeted runs (no per-op
    /// bookkeeping on the default path).
    budget: Option<&'a RunBudget>,
    /// Program ops executed so far; drives the budget checks.
    ops_done: u64,
}

/// Arena buffers a finished run hands back for the next run on the
/// same thread to reuse. Reuse changes only where the buffers' memory
/// comes from, never what they hold: every field is restored to its
/// freshly-constructed state (empty, or default-filled to the new rank
/// count) before a run starts, so a scratch-backed run is bit-identical
/// to a cold one — the engine-triple differential harness exercises
/// exactly this, since it runs all three engines back to back on one
/// thread. What this buys is the setup half of short runs: per-rank
/// state, round words, routing tables, and handle lists arrive
/// pre-sized, so a truncated 16-rank fault run pays no allocator round
/// trips at all. Retained footprint is O(ranks + live channels +
/// outstanding ops) of the largest run seen on the thread.
struct Scratch {
    hot: Vec<RankHot>,
    round_words: Vec<u64>,
    channels: ChannelIndex,
    handles: HandleArena<Outstanding>,
    arrivals: Vec<Option<f64>>,
}

thread_local! {
    static SCRATCH: Cell<Option<Box<Scratch>>> = const { Cell::new(None) };
}

impl<'a> Exec<'a> {
    fn new(
        config: &'a MachineConfig,
        program: &'a Program,
        plan: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
        stream: Option<(&'a mut dyn TraceSink, usize)>,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let p = config.processors();
        if program.ranks() > p {
            return Err(SimError::RankOutOfRange {
                rank: program.ranks() - 1,
                ranks: p,
            });
        }
        let n = program.ranks();
        let faults = match plan {
            Some(plan) if !plan.is_empty() => {
                plan.validate(n)?;
                Some(FaultState::new(plan, n))
            }
            _ => None,
        };
        let balance = match balance {
            Some(plan) => {
                plan.validate()?;
                Some(BalanceState::new(plan, n, config))
            }
            None => None,
        };

        let crash_possible = faults.as_ref().is_some_and(|f| f.crash_planned());

        let (mut hot, round_words, channels, handles, arrivals) = match SCRATCH.with(|c| c.take()) {
            Some(s) => {
                let Scratch {
                    hot,
                    round_words,
                    mut channels,
                    mut handles,
                    mut arrivals,
                } = *s;
                channels.reset(n);
                handles.clear();
                arrivals.clear();
                (hot, round_words, channels, handles, arrivals)
            }
            None => (
                Vec::new(),
                Vec::new(),
                ChannelIndex::new(n),
                HandleArena::new(),
                Vec::new(),
            ),
        };
        hot.clear();
        hot.resize(n, RankHot::default());
        let mut arena = RankArena { hot };
        if crash_possible {
            let fs = faults.as_ref().expect("crash_possible implies faults");
            for (rank, hot) in arena.hot.iter_mut().enumerate() {
                hot.crash_at = fs.crash_time(rank);
            }
        }
        let rounds = Rounds::with_words(round_words, n);

        let builder = match stream {
            Some((sink, frame_events)) => {
                // The sink learns the run's shape up front; events
                // follow in frames. No full-run reservation — a frame
                // is the most this run ever buffers.
                sink.begin(n, program.region_names())?;
                let frame_events = frame_events.max(1);
                Recorder::Stream {
                    buf: Vec::with_capacity(frame_events),
                    frame_events,
                    sink,
                    failed: None,
                }
            }
            None => {
                let mut builder = TraceBuilder::new(n);
                // A planned crash truncates the run at a point the hint
                // cannot know, so the full-run reservation would be
                // mostly dead weight and even a small floor is a net
                // loss on heavily truncated runs; let the buffer grow
                // on demand exactly like the polling reference does
                // (capacity never reaches the output, only layout
                // does).
                if !crash_possible {
                    builder.reserve_events(program.event_capacity_hint());
                }
                for name in program.region_names() {
                    builder.add_region(name.clone());
                }
                Recorder::Materialize(builder)
            }
        };

        let link_cache = if config.has_link_overrides() {
            Some(SparseMap::new())
        } else {
            None
        };

        Ok(Exec {
            config,
            program,
            n,
            arena,
            handles,
            channels,
            channel_pool: Vec::new(),
            coll: CollectiveSlot {
                active: false,
                kind: CollectiveKind::Barrier,
                max_bytes: 0,
                // Sized lazily at the first instance: purely p2p
                // programs never pay the per-rank slot.
                arrivals,
                arrived: 0,
                ready: f64::NEG_INFINITY,
                completed: 0,
            },
            coll_costs: Vec::new(),
            builder,
            stats: SimStats {
                rank_end_times: vec![0.0; n],
                makespan: 0.0,
                messages: 0,
                bytes: 0,
                collectives: 0,
            },
            rounds,
            link_cache,
            faults,
            crash_possible,
            balance,
            budget: None,
            ops_done: 0,
        })
    }

    /// Wire latency and bandwidth of the `src → dst` link. Configs
    /// without per-link overrides read the two machine-wide constants;
    /// configs with overrides fill a sparse per-link cache on first use
    /// (the values are pure functions of the config, so caching cannot
    /// change them).
    fn link_costs(&mut self, src: usize, dst: usize) -> (f64, f64) {
        let Some(cache) = &mut self.link_cache else {
            return (self.config.latency(), self.config.bandwidth());
        };
        let key = (src * self.n + dst) as u64;
        if let Some(costs) = cache.get(key) {
            return costs;
        }
        let costs = (
            self.config.link_latency(src, dst),
            self.config.link_bandwidth(src, dst),
        );
        cache.insert(key, costs);
        costs
    }

    /// Transfer time, wire latency, and loss/retry delay of the message
    /// whose transfer starts on `src → dst` at `at`. Fault-adjusted
    /// when a plan is active (consuming one loss-sequence number), the
    /// plain link costs otherwise.
    fn message_costs(&mut self, src: usize, dst: usize, at: f64, bytes: u64) -> (f64, f64, f64) {
        let (latency, bandwidth) = self.link_costs(src, dst);
        let transfer = bytes as f64 / bandwidth;
        match &mut self.faults {
            None => (transfer, latency, 0.0),
            Some(fs) => fs.message_costs(src, dst, at, transfer, latency),
        }
    }

    /// The cost of a `kind` collective over `max_bytes`, memoized in
    /// [`Exec::coll_costs`]. The participant count and machine are
    /// fixed for the run, so `(kind, max_bytes)` is the complete key.
    fn collective_cost_cached(&mut self, kind: CollectiveKind, max_bytes: u64) -> f64 {
        for &(k, b, cost) in &self.coll_costs {
            if k == kind && b == max_bytes {
                return cost;
            }
        }
        let cost = collective_cost(kind, self.program.ranks(), max_bytes, self.config);
        self.coll_costs.push((kind, max_bytes, cost));
        cost
    }

    /// Marks `w` runnable and enqueues it. A rank woken by `running`
    /// lands in the current round when its index is still ahead of the
    /// scan (`w > running` — the polling scan would have reached it
    /// later this round) and in the next round otherwise.
    fn wake(&mut self, w: usize, running: usize) {
        debug_assert_ne!(
            self.arena.hot[w].blocked,
            BlockedOn::CRASHED,
            "crashed ranks match no wake source"
        );
        self.arena.hot[w].blocked = BlockedOn::NOTHING;
        if w > running {
            self.rounds.insert_current(w);
        } else {
            // Ranks run in ascending order, so every later waker of `w`
            // this round is also ≥ w: once parked for the next round, a
            // rank stays there — exactly when the polling scan would
            // reach it again.
            self.rounds.insert_next(w);
        }
    }

    /// Head of the deque for dense channel key `ch`, if any.
    fn channel_front(&self, ch: usize) -> Option<MsgInFlight> {
        self.channels
            .get(ch)
            .and_then(|slot| self.channel_pool[slot as usize].front().copied())
    }

    /// The deque for dense channel key `ch`, allocating its pool slot on
    /// first use.
    fn channel_mut(&mut self, ch: usize) -> &mut VecDeque<MsgInFlight> {
        let slot = match self.channels.get(ch) {
            Some(slot) => slot as usize,
            None => {
                let slot = self.channel_pool.len();
                self.channel_pool.push(VecDeque::new());
                self.channels.insert(ch, slot as u32);
                slot
            }
        };
        &mut self.channel_pool[slot]
    }

    /// Appends a message to channel `src → dst` and wakes the receiver
    /// if it is blocked on exactly that channel.
    fn push_msg(&mut self, src: usize, dst: usize, msg: MsgInFlight, running: usize) {
        let ch = src * self.n + dst;
        self.channel_mut(ch).push_back(msg);
        if self.arena.hot[dst].blocked == BlockedOn::channel(src) {
            self.wake(dst, running);
        }
    }

    fn handle_get(&self, rank: usize, handle: u32) -> Outstanding {
        self.handles
            .get(rank, handle)
            .expect("validated: handle outstanding")
    }

    fn handle_remove(&mut self, rank: usize, handle: u32) {
        let removed = self.handles.remove(rank, handle);
        debug_assert!(removed, "validated: handle outstanding");
    }

    /// Capped report of every rank that cannot finish: the first
    /// [`DEADLOCK_REPORT_CAP`] stuck ranks in full, the rest as a count.
    fn deadlock_detail(&self) -> String {
        format_deadlock_detail(
            self.program,
            (0..self.n)
                .filter(|&r| self.arena.hot[r].pc < self.program.ops(r).len())
                .map(|r| (r, self.arena.hot[r].pc)),
        )
    }

    /// Executes `rank`'s maximal prefix of purely-local ops — compute,
    /// region enter/leave — with the program counter and local clock in
    /// locals, writing the pair back once at the end. These ops touch
    /// no shared state (the same classification [`speculate_local`]
    /// uses for the parallel engine), so batching them cannot reorder
    /// anything another rank observes; the arithmetic per op is
    /// identical to [`Exec::try_op`]'s, keeping the output bit-exact.
    /// Declines to run under balancing (which owns the compute
    /// boundary) or a budget (which counts interruptions per op), and
    /// stops short of a planned crash so `try_op` records it.
    fn advance_local(&mut self, rank: usize) {
        if self.balance.is_some() || self.budget.is_some() {
            return;
        }
        let ops = self.program.ops(rank);
        let RankHot {
            mut pc,
            mut time,
            crash_at,
            ..
        } = self.arena.hot[rank];
        let start = pc;
        // Loop invariants, hoisted so the per-op kernel is one divide
        // and one add off a register clock: the rank's speed is fixed
        // for the run, and the fault handle never changes mid-streak.
        // `crash_at` is `INFINITY` when no crash is planned, so the
        // per-op boundary check is one always-false clock compare in
        // the common case.
        let speed = self.config.cpu_speed(rank);
        let faults = self.faults.as_ref();
        while let Some(&op) = ops.get(pc) {
            if time >= crash_at {
                break;
            }
            match op {
                Op::Compute { seconds } => {
                    let duration = seconds / speed;
                    time = match faults {
                        None => time + duration,
                        Some(fs) => fs.compute_end(rank, time, duration),
                    };
                }
                Op::Enter { region } => {
                    self.builder.push(Event::enter(time, rank as u32, region));
                }
                Op::Leave { region } => {
                    self.builder.push(Event::leave(time, rank as u32, region));
                }
                _ => break,
            }
            pc += 1;
        }
        if pc != start {
            // Field writes, not a whole-struct store: a resumed rank
            // may still carry blocking-boundary bookkeeping (a posted
            // receive, a registered rendezvous) that must survive the
            // streak.
            let hot = &mut self.arena.hot[rank];
            hot.pc = pc;
            hot.time = time;
        }
    }

    /// Attempts the current op of `rank`. Idempotent while blocked:
    /// registration side effects (posting a receive, queueing a
    /// rendezvous, arriving at a collective) happen on the first
    /// attempt only.
    fn try_op(&mut self, rank: usize) -> Result<StepOutcome, SimError> {
        let ops = self.program.ops(rank);
        if self.arena.hot[rank].pc >= ops.len() {
            return Ok(StepOutcome::Done);
        }
        // Crash check at the op boundary: a rank whose local clock has
        // reached its planned crash time executes nothing further. The
        // clock of a blocked rank is frozen, so the decision is stable
        // across re-attempts and identical in both engines. Plans that
        // schedule no crash skip the lookup entirely (`crash_possible`
        // is fixed at construction, so the guard cannot diverge).
        if self.crash_possible {
            let now = self.arena.hot[rank].time;
            if now >= self.arena.hot[rank].crash_at {
                if let Some(fs) = &mut self.faults {
                    fs.record_crash(rank, now);
                }
                // Park the wakeup slot on the terminal sentinel: the
                // scheduler drops the rank from any later round with
                // one compare, and no wake path ever clears it (a
                // crashed rank matches no channel and arrives at no
                // collective).
                self.arena.hot[rank].blocked = BlockedOn::CRASHED;
                return Ok(StepOutcome::Crashed);
            }
        }
        let op = ops[self.arena.hot[rank].pc];
        let o = self.config.overhead();
        let n = self.n;
        match op {
            Op::Compute { seconds } => {
                self.arena.hot[rank].time = match &mut self.balance {
                    // Balancing owns the compute boundary: it may migrate
                    // part of the op and integrates the fault-adjusted
                    // timing itself (identically in both engines).
                    Some(bs) => {
                        let host = HostView {
                            config: self.config,
                            faults: self.faults.as_ref(),
                        };
                        bs.compute(rank, self.arena.hot[rank].time, seconds, &host)
                    }
                    None => {
                        let duration = seconds / self.config.cpu_speed(rank);
                        match &self.faults {
                            None => self.arena.hot[rank].time + duration,
                            Some(fs) => fs.compute_end(rank, self.arena.hot[rank].time, duration),
                        }
                    }
                };
                self.arena.hot[rank].pc += 1;
                Ok(StepOutcome::Ran)
            }
            Op::Enter { region } => {
                self.builder
                    .push(Event::enter(self.arena.hot[rank].time, rank as u32, region));
                self.arena.hot[rank].pc += 1;
                Ok(StepOutcome::Ran)
            }
            Op::Leave { region } => {
                self.builder
                    .push(Event::leave(self.arena.hot[rank].time, rank as u32, region));
                self.arena.hot[rank].pc += 1;
                Ok(StepOutcome::Ran)
            }
            Op::Send { dst, bytes } => {
                if bytes <= self.config.eager_threshold() {
                    let begin = self.arena.hot[rank].time;
                    let (transfer, latency, loss_delay) =
                        self.message_costs(rank, dst, begin, bytes);
                    let end = begin + o + transfer;
                    self.builder.push(Event::begin_activity(
                        begin,
                        rank as u32,
                        ActivityKind::PointToPoint,
                    ));
                    self.builder
                        .push(Event::message_send(begin, rank as u32, dst as u32, bytes));
                    self.builder.push(Event::end_activity(
                        end,
                        rank as u32,
                        ActivityKind::PointToPoint,
                    ));
                    // Lost transmissions retry in the transport after the
                    // local injection, delaying only the arrival.
                    let arrival = end + latency + loss_delay;
                    self.push_msg(rank, dst, MsgInFlight::Eager { arrival, bytes }, rank);
                    self.arena.hot[rank].time = end;
                    self.arena.hot[rank].pc += 1;
                    self.stats.messages += 1;
                    self.stats.bytes += bytes;
                    Ok(StepOutcome::Ran)
                } else {
                    if !self.arena.hot[rank].send_registered {
                        let msg = MsgInFlight::Rendezvous {
                            sender_ready: self.arena.hot[rank].time,
                            bytes,
                        };
                        self.arena.hot[rank].send_registered = true;
                        self.push_msg(rank, dst, msg, rank);
                    }
                    // Blocked until the receiver performs the match.
                    Ok(StepOutcome::Blocked(BlockedOn::MATCH))
                }
            }
            Op::Recv { src } => {
                let now = self.arena.hot[rank].time;
                let posted = *self.arena.hot[rank].recv_posted.get_or_insert(now);
                let ch = src * n + rank;
                let Some(head) = self.channel_front(ch) else {
                    return Ok(StepOutcome::Blocked(BlockedOn::channel(src)));
                };
                match head {
                    MsgInFlight::Eager { arrival, bytes } => {
                        self.channel_mut(ch).pop_front();
                        let end = (posted + o).max(arrival);
                        self.builder.push(Event::begin_activity(
                            posted,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.builder
                            .push(Event::message_recv(end, rank as u32, src as u32, bytes));
                        self.builder.push(Event::end_activity(
                            end,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.arena.hot[rank].time = end;
                        self.arena.hot[rank].recv_posted = None;
                        self.arena.hot[rank].pc += 1;
                        Ok(StepOutcome::Ran)
                    }
                    MsgInFlight::Rendezvous {
                        sender_ready,
                        bytes,
                    } => {
                        self.channel_mut(ch).pop_front();
                        let sync = posted.max(sender_ready);
                        // A rendezvous sender is blocked until the
                        // transfer is acknowledged, so retry timeouts
                        // delay its completion too.
                        let (transfer, latency, loss_delay) =
                            self.message_costs(src, rank, sync, bytes);
                        let sender_done = sync + o + transfer + loss_delay;
                        let recv_done = sender_done + latency;
                        // Complete the blocked sender's side.
                        self.builder.push(Event::begin_activity(
                            sender_ready,
                            src as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.builder.push(Event::message_send(
                            sender_ready,
                            src as u32,
                            rank as u32,
                            bytes,
                        ));
                        self.builder.push(Event::end_activity(
                            sender_done,
                            src as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.arena.hot[src].time = sender_done;
                        self.arena.hot[src].send_registered = false;
                        self.arena.hot[src].pc += 1;
                        self.wake(src, rank);
                        // Complete the receive.
                        self.builder.push(Event::begin_activity(
                            posted,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.builder.push(Event::message_recv(
                            recv_done,
                            rank as u32,
                            src as u32,
                            bytes,
                        ));
                        self.builder.push(Event::end_activity(
                            recv_done,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        self.arena.hot[rank].time = recv_done;
                        self.arena.hot[rank].recv_posted = None;
                        self.arena.hot[rank].pc += 1;
                        self.stats.messages += 1;
                        self.stats.bytes += bytes;
                        Ok(StepOutcome::Ran)
                    }
                }
            }
            Op::Isend { dst, bytes, handle } => {
                // Buffered nonblocking send: the NIC takes over; the
                // local buffer frees after the injection completes.
                let begin = self.arena.hot[rank].time;
                let (transfer, latency, loss_delay) = self.message_costs(rank, dst, begin, bytes);
                let issue = begin + o;
                let buffer_free = issue + transfer;
                self.builder.push(Event::begin_activity(
                    begin,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                self.builder
                    .push(Event::message_send(begin, rank as u32, dst as u32, bytes));
                self.builder.push(Event::end_activity(
                    issue,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                let arrival = buffer_free + latency + loss_delay;
                self.push_msg(rank, dst, MsgInFlight::Eager { arrival, bytes }, rank);
                self.handles
                    .insert(rank, handle, Outstanding::SendDone(buffer_free));
                self.arena.hot[rank].time = issue;
                self.arena.hot[rank].pc += 1;
                self.stats.messages += 1;
                self.stats.bytes += bytes;
                Ok(StepOutcome::Ran)
            }
            Op::Irecv { src, handle } => {
                let begin = self.arena.hot[rank].time;
                let posted = begin + o;
                self.builder.push(Event::begin_activity(
                    begin,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                self.builder.push(Event::end_activity(
                    posted,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                self.handles
                    .insert(rank, handle, Outstanding::RecvPending { src, posted });
                self.arena.hot[rank].time = posted;
                self.arena.hot[rank].pc += 1;
                Ok(StepOutcome::Ran)
            }
            Op::Wait { handle } => {
                let outstanding = self.handle_get(rank, handle);
                match outstanding {
                    Outstanding::SendDone(free) => {
                        let begin = self.arena.hot[rank].time;
                        let end = begin.max(free);
                        if end > begin {
                            self.builder.push(Event::begin_activity(
                                begin,
                                rank as u32,
                                ActivityKind::PointToPoint,
                            ));
                            self.builder.push(Event::end_activity(
                                end,
                                rank as u32,
                                ActivityKind::PointToPoint,
                            ));
                        }
                        self.handle_remove(rank, handle);
                        self.arena.hot[rank].time = end;
                        self.arena.hot[rank].pc += 1;
                        Ok(StepOutcome::Ran)
                    }
                    Outstanding::RecvPending { src, posted } => {
                        let now = self.arena.hot[rank].time;
                        let begin = *self.arena.hot[rank].wait_started.get_or_insert(now);
                        let ch = src * n + rank;
                        let Some(head) = self.channel_front(ch) else {
                            return Ok(StepOutcome::Blocked(BlockedOn::channel(src)));
                        };
                        match head {
                            MsgInFlight::Eager { arrival, bytes } => {
                                self.channel_mut(ch).pop_front();
                                let end = begin.max(arrival);
                                self.builder.push(Event::begin_activity(
                                    begin,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.builder.push(Event::message_recv(
                                    end,
                                    rank as u32,
                                    src as u32,
                                    bytes,
                                ));
                                self.builder.push(Event::end_activity(
                                    end,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.handle_remove(rank, handle);
                                self.arena.hot[rank].wait_started = None;
                                self.arena.hot[rank].time = end;
                                self.arena.hot[rank].pc += 1;
                                Ok(StepOutcome::Ran)
                            }
                            MsgInFlight::Rendezvous {
                                sender_ready,
                                bytes,
                            } => {
                                self.channel_mut(ch).pop_front();
                                // The receive was posted at irecv time, so
                                // the rendezvous can start as soon as both
                                // sides are ready.
                                let sync = posted.max(sender_ready);
                                let (transfer, latency, loss_delay) =
                                    self.message_costs(src, rank, sync, bytes);
                                let sender_done = sync + o + transfer + loss_delay;
                                let recv_done = sender_done + latency;
                                self.builder.push(Event::begin_activity(
                                    sender_ready,
                                    src as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.builder.push(Event::message_send(
                                    sender_ready,
                                    src as u32,
                                    rank as u32,
                                    bytes,
                                ));
                                self.builder.push(Event::end_activity(
                                    sender_done,
                                    src as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.arena.hot[src].time = sender_done;
                                self.arena.hot[src].send_registered = false;
                                self.arena.hot[src].pc += 1;
                                self.wake(src, rank);
                                let end = begin.max(recv_done);
                                self.builder.push(Event::begin_activity(
                                    begin,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.builder.push(Event::message_recv(
                                    end,
                                    rank as u32,
                                    src as u32,
                                    bytes,
                                ));
                                self.builder.push(Event::end_activity(
                                    end,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                self.handle_remove(rank, handle);
                                self.arena.hot[rank].wait_started = None;
                                self.arena.hot[rank].time = end;
                                self.arena.hot[rank].pc += 1;
                                self.stats.messages += 1;
                                self.stats.bytes += bytes;
                                Ok(StepOutcome::Ran)
                            }
                        }
                    }
                }
            }
            Op::Collective { kind, bytes } => {
                if !self.coll.active {
                    self.coll.active = true;
                    self.coll.kind = kind;
                    self.coll.max_bytes = 0;
                    self.coll.ready = f64::NEG_INFINITY;
                    debug_assert_eq!(self.coll.arrived, 0);
                    if self.coll.arrivals.len() < n {
                        self.coll.arrivals.resize(n, None);
                    }
                }
                if self.coll.kind != kind {
                    return Err(SimError::CollectiveMismatch {
                        instance: self.coll.completed,
                        detail: format!(
                            "rank {rank} calls {kind} but instance is {}",
                            self.coll.kind
                        ),
                    });
                }
                if self.coll.arrivals[rank].is_none() {
                    let now = self.arena.hot[rank].time;
                    self.coll.arrivals[rank] = Some(now);
                    self.coll.ready = self.coll.ready.max(now);
                    self.coll.arrived += 1;
                    self.coll.max_bytes = self.coll.max_bytes.max(bytes);
                }
                if self.coll.arrived < self.program.ranks() {
                    return Ok(StepOutcome::Blocked(BlockedOn::COLLECTIVE));
                }
                // Everyone has arrived: release all participants.
                let ready = self.coll.ready;
                let cost = self.collective_cost_cached(kind, self.coll.max_bytes);
                let completion = ready + cost;
                let activity = if kind == CollectiveKind::Barrier {
                    ActivityKind::Synchronization
                } else {
                    ActivityKind::Collective
                };
                for r in 0..n {
                    let arrival = self.coll.arrivals[r].take().expect("all arrived");
                    self.builder
                        .push(Event::begin_activity(arrival, r as u32, activity));
                    self.builder
                        .push(Event::end_activity(completion, r as u32, activity));
                    let hot = &mut self.arena.hot[r];
                    hot.time = completion;
                    hot.pc += 1;
                    hot.blocked = BlockedOn::NOTHING;
                }
                self.stats.collectives += 1;
                // Recycle the slot for the next instance (the arrival
                // buffer was drained by the `take`s above).
                self.coll.active = false;
                self.coll.arrived = 0;
                self.coll.completed += 1;
                // Completion provably finds every other rank blocked on
                // exactly this collective (`arrived == n`, and a rank
                // blocked elsewhere could not have arrived), so release
                // them wholesale instead of n-1 `wake` calls — the
                // wakeup slots were already cleared inside the per-rank
                // loop above. The range split reproduces wake's round
                // placement bit for bit: indices still ahead of the
                // scan join the current round, the rest park for the
                // next one.
                self.rounds.insert_range(false, rank + 1, n);
                self.rounds.insert_range(true, 0, rank);
                Ok(StepOutcome::Ran)
            }
        }
    }

    /// Seeds the first round with every rank that has ops to run,
    /// returning the count. When every rank participates — the common
    /// case — the set fills with whole-word masks instead of n single
    /// bit inserts.
    fn seed_runnable(&mut self) -> usize {
        let mut remaining = 0usize;
        for rank in 0..self.n {
            if self.arena.hot[rank].pc < self.program.ops(rank).len() {
                remaining += 1;
            }
        }
        if remaining == self.n {
            self.rounds.insert_range(false, 0, self.n);
        } else {
            for rank in 0..self.n {
                if self.arena.hot[rank].pc < self.program.ops(rank).len() {
                    self.rounds.insert_current(rank);
                }
            }
        }
        remaining
    }

    /// The event-driven scheduler: rounds over an explicit ready-queue.
    /// A round pops ranks in ascending order and runs each until it
    /// blocks or finishes; completions enqueue exactly the ranks they
    /// unblocked (same round when still ahead of the scan, next round
    /// otherwise). Deadlock is the state where work remains but both
    /// queues are empty — nothing can ever wake again — unless a fault
    /// plan crashed a rank, in which case the quiescent state is an
    /// *interrupted* run: the survivors were waiting on the dead rank,
    /// and their truncated traces are returned for salvage instead.
    fn run_event(&mut self) -> Result<(), SimError> {
        let mut remaining = self.seed_runnable();
        while remaining > 0 {
            if let Some(err) = self.builder.take_failure() {
                return Err(SimError::Trace(err));
            }
            if self.rounds.current_is_empty() {
                if self.rounds.next_is_empty() {
                    if self.faults.as_ref().is_some_and(|f| f.any_crashed()) {
                        return Ok(());
                    }
                    return Err(SimError::Deadlock {
                        detail: self.deadlock_detail(),
                    });
                }
                self.rounds.turnover();
            }
            // Ascending scan; ranks woken mid-round with an index still
            // ahead of the cursor are picked up by the same scan.
            let mut cursor = 0usize;
            while let Some(rank) = self.rounds.pop_current_at_or_after(cursor) {
                cursor = rank;
                if self.arena.hot[rank].blocked == BlockedOn::CRASHED {
                    continue;
                }
                loop {
                    // Drain the purely-local prefix in registers, then
                    // run the op that actually interacts (or finishes).
                    self.advance_local(rank);
                    match self.try_op(rank)? {
                        StepOutcome::Ran => {
                            if let Some(budget) = self.budget {
                                self.ops_done += 1;
                                if let Some(interrupted) = budget.check(self.ops_done) {
                                    return Err(interrupted);
                                }
                            }
                        }
                        StepOutcome::Blocked(on) => {
                            self.arena.hot[rank].blocked = on;
                            break;
                        }
                        StepOutcome::Done => {
                            remaining -= 1;
                            break;
                        }
                        StepOutcome::Crashed => {
                            remaining -= 1;
                            break;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The rank-sharded parallel scheduler: the same round structure as
    /// [`Exec::run_event`], with a speculation pass fanned out over
    /// `jobs` worker threads at each round turnover.
    ///
    /// Each round, worker threads compute every runnable rank's *local
    /// prefix* — its longest run of ops that touch no shared state (see
    /// [`speculate_local`]) — from a snapshot of its `(pc, time)`. The
    /// merge loop then drains the round in the exact sequential order;
    /// when it pops a rank whose live state still matches the snapshot
    /// it splices the precomputed events in with one `memcpy`-shaped
    /// append and jumps the rank to the prefix end, then continues with
    /// the ordinary one-op-at-a-time loop for the non-local tail. No
    /// barrier separates merge from speculation results — prefixes are
    /// consumed by a single ascending pointer as pops arrive.
    ///
    /// Determinism argument: ranks sitting in `current` cannot have
    /// their `(pc, time)` mutated by earlier streaks of the same round
    /// (rendezvous and collective completions only advance *blocked*
    /// ranks), local ops emit only the rank's own events at times that
    /// are pure functions of the snapshot, and the splice point is
    /// validated against the live state before use. The output is
    /// therefore byte-identical to the sequential engine — which the
    /// engine-triple differential harness locks empirically.
    ///
    /// Budgeted runs fall back to the sequential scheduler: op-count
    /// budgets are defined in executed-op order, and the speculation
    /// pass would batch those increments.
    fn run_event_parallel(&mut self, jobs: usize) -> Result<(), SimError> {
        let jobs = limba_par::effective_jobs(jobs);
        if jobs <= 1 || self.budget.is_some() {
            return self.run_event();
        }
        let mut remaining = self.seed_runnable();
        while remaining > 0 {
            if let Some(err) = self.builder.take_failure() {
                return Err(SimError::Trace(err));
            }
            if self.rounds.current_is_empty() {
                if self.rounds.next_is_empty() {
                    if self.faults.as_ref().is_some_and(|f| f.any_crashed()) {
                        return Ok(());
                    }
                    return Err(SimError::Deadlock {
                        detail: self.deadlock_detail(),
                    });
                }
                self.rounds.turnover();
            }
            // Speculation pass over a snapshot of the round's runnable
            // set. Ranks woken mid-round are not in the snapshot; the
            // merge loop simply runs them without a prefix.
            let runnable = self.rounds.current_members();
            let mut prefixes: Vec<LocalPrefix> = Vec::new();
            if runnable.len() > 1 {
                let snapshots: Vec<(usize, usize, f64)> = runnable
                    .iter()
                    .map(|&r| (r, self.arena.hot[r].pc, self.arena.hot[r].time))
                    .collect();
                let program = self.program;
                let config = self.config;
                let faults = self.faults.as_ref();
                let balance_active = self.balance.is_some();
                let shards = limba_par::shard_ranges(snapshots.len(), jobs);
                let sharded = limba_par::par_map(jobs, &shards, |_i, range| {
                    snapshots[range.clone()]
                        .iter()
                        .filter_map(|&(r, pc, t)| {
                            speculate_local(program, config, faults, balance_active, r, pc, t)
                        })
                        .collect::<Vec<_>>()
                });
                prefixes = sharded.into_iter().flatten().collect();
            }
            // Merge loop: identical to the sequential round drain, plus
            // prefix splicing. `prefixes` is in ascending rank order and
            // pops ascend, so one forward pointer pairs them up.
            let mut pfx = 0usize;
            let mut cursor = 0usize;
            while let Some(rank) = self.rounds.pop_current_at_or_after(cursor) {
                cursor = rank;
                if self.arena.hot[rank].blocked == BlockedOn::CRASHED {
                    continue;
                }
                while pfx < prefixes.len() && prefixes[pfx].rank < rank {
                    pfx += 1;
                }
                if pfx < prefixes.len() && prefixes[pfx].rank == rank {
                    let p = &prefixes[pfx];
                    pfx += 1;
                    if p.pc0 == self.arena.hot[rank].pc && p.time0 == self.arena.hot[rank].time {
                        self.builder.extend_events(&p.events);
                        self.arena.hot[rank].pc = p.pc;
                        self.arena.hot[rank].time = p.time;
                    }
                }
                loop {
                    // Same fast local drain as the sequential engine:
                    // it covers the tail past a spliced prefix (or a
                    // rank speculation skipped) without per-op calls.
                    self.advance_local(rank);
                    match self.try_op(rank)? {
                        StepOutcome::Ran => {}
                        StepOutcome::Blocked(on) => {
                            self.arena.hot[rank].blocked = on;
                            break;
                        }
                        StepOutcome::Done => {
                            remaining -= 1;
                            break;
                        }
                        StepOutcome::Crashed => {
                            remaining -= 1;
                            break;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Everything [`Exec::finish`] and [`Exec::finish_stream`] share:
    /// final statistics, the fault and balance reports, and the scratch
    /// handback.
    fn finish_parts(&mut self) -> (FaultReport, BalanceReport) {
        for (rank, &RankHot { time: t, .. }) in self.arena.hot.iter().enumerate() {
            self.stats.rank_end_times[rank] = t;
            self.stats.makespan = self.stats.makespan.max(t);
        }
        let faults = match &self.faults {
            Some(fs) => {
                fs.report((0..self.n).filter(|&r| self.arena.hot[r].pc < self.program.ops(r).len()))
            }
            None => FaultReport::default(),
        };
        let balance = match &self.balance {
            Some(bs) => bs.report(),
            None => BalanceReport::default(),
        };
        // Hand the arena buffers back to the thread's scratch stash so
        // the next run on this thread skips their setup allocations.
        // Everything above that reads them (stats, fault report) has
        // already run; the output is fully assembled from other state.
        let scratch = Scratch {
            hot: std::mem::take(&mut self.arena.hot),
            round_words: std::mem::replace(&mut self.rounds, Rounds::with_words(Vec::new(), 0))
                .into_words(),
            channels: std::mem::replace(&mut self.channels, ChannelIndex::new(0)),
            handles: std::mem::replace(&mut self.handles, HandleArena::new()),
            arrivals: std::mem::take(&mut self.coll.arrivals),
        };
        SCRATCH.with(|c| c.set(Some(Box::new(scratch))));
        (faults, balance)
    }

    fn finish(mut self) -> SimOutput {
        let (faults, balance) = self.finish_parts();
        let Recorder::Materialize(builder) = self.builder else {
            unreachable!("materializing finish on a streaming run");
        };
        SimOutput {
            trace: builder.build(),
            stats: self.stats,
            faults,
            balance,
        }
    }

    /// The streaming counterpart of [`Exec::finish`]: flushes the last
    /// partial frame, finishes the sink, and returns the trace-free
    /// output.
    fn finish_stream(mut self) -> Result<StreamOutput, SimError> {
        let (faults, balance) = self.finish_parts();
        self.builder.finish_stream()?;
        Ok(StreamOutput {
            stats: self.stats,
            faults,
            balance,
        })
    }
}

/// The simulator: runs a [`Program`] on a [`MachineConfig`].
#[derive(Debug, Clone)]
pub struct Simulator {
    config: MachineConfig,
}

impl Simulator {
    /// Creates a simulator for the given machine.
    pub fn new(config: MachineConfig) -> Self {
        Simulator { config }
    }

    /// The machine being simulated.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs `program` to completion with the event-driven scheduler,
    /// producing the trace and statistics.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid, the program
    /// references more ranks than the machine has, or the ranks deadlock
    /// (e.g. a receive whose matching send never happens).
    pub fn run(&self, program: &Program) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, None, None, None)?;
        exec.run_event()?;
        Ok(exec.finish())
    }

    /// Runs `program` under a deterministic fault plan (see
    /// [`FaultPlan`]): slowdown windows, link degradation, message loss
    /// with retries, and rank crashes. Crashed and interrupted ranks
    /// end the run with truncated traces and are listed in
    /// [`SimOutput::faults`]; reduce such outputs with
    /// [`SimOutput::reduce_checked`], which salvages partial streams.
    ///
    /// An empty plan is bit-identical to [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`], plus
    /// [`SimError::InvalidFaultPlan`] for plans that fail
    /// [`FaultPlan::validate`]. A quiescent state with at least one
    /// crashed rank is an interrupted run, not a deadlock error.
    pub fn run_with_faults(
        &self,
        program: &Program,
        plan: &FaultPlan,
    ) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, Some(plan), None, None)?;
        exec.run_event()?;
        Ok(exec.finish())
    }

    /// Runs `program` under a dynamic load-balancing plan (see
    /// [`BalancePlan`]): at every compute-op boundary the attached
    /// policy may migrate work to less loaded ranks, with deterministic
    /// migration costs and a profitability guard. The
    /// [`SimOutput::balance`] report accounts every migration.
    ///
    /// A plan whose policy never triggers is bit-identical to
    /// [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`], plus
    /// [`SimError::InvalidBalancePlan`] for plans that fail
    /// [`BalancePlan::validate`].
    pub fn run_with_balance(
        &self,
        program: &Program,
        plan: &BalancePlan,
    ) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, None, Some(plan), None)?;
        exec.run_event()?;
        Ok(exec.finish())
    }

    /// Runs `program` with any combination of fault plan, balance plan,
    /// and interruption budget — the fully general entry point the CLI
    /// drives. `None` everywhere is bit-identical to [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// The union of the conditions of [`Simulator::run_with_faults`],
    /// [`Simulator::run_with_balance`], and [`Simulator::run_budgeted`].
    pub fn run_configured(
        &self,
        program: &Program,
        faults: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
        budget: Option<&RunBudget>,
    ) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, faults, balance, None)?;
        if let Some(budget) = budget {
            if !budget.is_unlimited() {
                exec.budget = Some(budget);
            }
        }
        exec.run_event()?;
        Ok(exec.finish())
    }

    /// Runs `program` under an interruption budget (and optionally a
    /// fault plan) with the event-driven scheduler. The budget is
    /// polled inside the scheduling loop: when an op-count or
    /// wall-clock limit fires, or the cancellation token trips, the run
    /// aborts with [`SimError::Interrupted`] and produces nothing.
    ///
    /// A run that completes under a budget is bit-identical to the same
    /// run without one — the budget decides *whether* the run finishes,
    /// never what a finished run contains. An unlimited budget takes
    /// the exact unbudgeted code path (no per-op bookkeeping).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_with_faults`], plus
    /// [`SimError::Interrupted`] when the budget fires.
    pub fn run_budgeted(
        &self,
        program: &Program,
        plan: Option<&FaultPlan>,
        budget: &RunBudget,
    ) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, plan, None, None)?;
        if !budget.is_unlimited() {
            exec.budget = Some(budget);
        }
        exec.run_event()?;
        Ok(exec.finish())
    }

    /// Runs `program` with the deterministic parallel event engine:
    /// the sequential event scheduler's round structure with per-round
    /// speculation of purely-local op runs fanned out over `jobs`
    /// worker threads (0 = all CPUs; see `limba-par`).
    ///
    /// The output is **byte-identical** to [`Simulator::run`] for every
    /// program, machine, and thread count — parallelism here is a
    /// latency optimization, never a semantics knob. The engine-triple
    /// differential harness (polling × event × event-par) locks this.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_event_parallel(
        &self,
        program: &Program,
        jobs: usize,
    ) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, None, None, None)?;
        exec.run_event_parallel(jobs)?;
        Ok(exec.finish())
    }

    /// The parallel-engine counterpart of [`Simulator::run_configured`]:
    /// any combination of fault plan, balance plan, and budget, executed
    /// with [`Simulator::run_event_parallel`]'s scheduler. Byte-identical
    /// to the sequential engine under every combination. Budgeted runs
    /// fall back to the sequential scheduler (op budgets are defined in
    /// executed-op order), preserving exact budget semantics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_configured`].
    pub fn run_parallel_configured(
        &self,
        program: &Program,
        faults: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
        budget: Option<&RunBudget>,
        jobs: usize,
    ) -> Result<SimOutput, SimError> {
        let mut exec = Exec::new(&self.config, program, faults, balance, None)?;
        if let Some(budget) = budget {
            if !budget.is_unlimited() {
                exec.budget = Some(budget);
            }
        }
        exec.run_event_parallel(jobs)?;
        Ok(exec.finish())
    }

    /// The streaming counterpart of [`Simulator::run_configured`]: the
    /// identical simulation, but recorded events flow to `sink` in
    /// frames of `frame_events` events as rounds retire, instead of
    /// materializing into a [`Trace`]. The sink sees exactly the event
    /// sequence the materialized trace would hold, in recording order —
    /// so any streaming fold over it ([`limba_trace::stream`]) produces
    /// bit-identical results to reducing the materialized trace, which
    /// the stream-equivalence differential harness locks.
    ///
    /// Resident memory on the simulator side is O(ranks + one frame):
    /// no full-run event reservation is made.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_configured`], plus
    /// [`SimError::Trace`] carrying any error the sink returns — a
    /// failing (e.g. cancelled) consumer aborts the run at the next
    /// round boundary.
    pub fn run_streaming_configured(
        &self,
        program: &Program,
        faults: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
        budget: Option<&RunBudget>,
        sink: &mut dyn TraceSink,
        frame_events: usize,
    ) -> Result<StreamOutput, SimError> {
        let mut exec = Exec::new(
            &self.config,
            program,
            faults,
            balance,
            Some((sink, frame_events)),
        )?;
        if let Some(budget) = budget {
            if !budget.is_unlimited() {
                exec.budget = Some(budget);
            }
        }
        exec.run_event()?;
        exec.finish_stream()
    }

    /// The streaming counterpart of
    /// [`Simulator::run_parallel_configured`]: the parallel event
    /// engine recording into `sink`. Byte-identical event stream to
    /// [`Simulator::run_streaming_configured`] for every thread count
    /// (budgeted runs fall back to the sequential scheduler, exactly as
    /// the materialized path does).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_streaming_configured`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_streaming_parallel_configured(
        &self,
        program: &Program,
        faults: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
        budget: Option<&RunBudget>,
        jobs: usize,
        sink: &mut dyn TraceSink,
        frame_events: usize,
    ) -> Result<StreamOutput, SimError> {
        let mut exec = Exec::new(
            &self.config,
            program,
            faults,
            balance,
            Some((sink, frame_events)),
        )?;
        if let Some(budget) = budget {
            if !budget.is_unlimited() {
                exec.budget = Some(budget);
            }
        }
        exec.run_event_parallel(jobs)?;
        exec.finish_stream()
    }

    /// Runs `program` with the polling reference engine — the original
    /// O(rounds × n) scan over `HashMap`-keyed channels that this
    /// engine replaced, preserved verbatim in [`crate::polling`]. Its
    /// output is bit-identical to [`Simulator::run`] in trace,
    /// statistics, and diagnostics; the equivalence harness holds the
    /// two implementations against each other, and the simulator
    /// benchmarks measure the event-driven engine against this one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_polling(&self, program: &Program) -> Result<SimOutput, SimError> {
        crate::polling::run(&self.config, program, None, None, None)
    }

    /// Runs `program` under a fault plan with the polling reference
    /// engine. Bit-identical to [`Simulator::run_with_faults`] in
    /// trace, statistics, diagnostics, and fault report — fault
    /// injection is a first-class axis of the differential harness.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_with_faults`].
    pub fn run_polling_with_faults(
        &self,
        program: &Program,
        plan: &FaultPlan,
    ) -> Result<SimOutput, SimError> {
        crate::polling::run(&self.config, program, Some(plan), None, None)
    }

    /// The polling-engine counterpart of [`Simulator::run_with_balance`].
    /// Bit-identical in trace, statistics, fault report, and balance
    /// report — dynamic balancing is a first-class axis of the
    /// differential harness.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_with_balance`].
    pub fn run_polling_with_balance(
        &self,
        program: &Program,
        plan: &BalancePlan,
    ) -> Result<SimOutput, SimError> {
        crate::polling::run(&self.config, program, None, Some(plan), None)
    }

    /// The polling-engine counterpart of [`Simulator::run_configured`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_configured`].
    pub fn run_polling_configured(
        &self,
        program: &Program,
        faults: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
        budget: Option<&RunBudget>,
    ) -> Result<SimOutput, SimError> {
        let budget = budget.filter(|b| !b.is_unlimited());
        crate::polling::run(&self.config, program, faults, balance, budget)
    }

    /// The polling-engine counterpart of [`Simulator::run_budgeted`]:
    /// same budget semantics, same guarantee that a completed budgeted
    /// run is bit-identical to an unbudgeted one. Op-count budgets fire
    /// on exactly the same programs on both engines (both execute the
    /// same ops), which the equivalence suite locks.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run_budgeted`].
    pub fn run_polling_budgeted(
        &self,
        program: &Program,
        plan: Option<&FaultPlan>,
        budget: &RunBudget,
    ) -> Result<SimOutput, SimError> {
        let budget = if budget.is_unlimited() {
            None
        } else {
            Some(budget)
        };
        crate::polling::run(&self.config, program, plan, None, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;
    use limba_model::ProcessorId;

    fn machine(n: usize) -> MachineConfig {
        MachineConfig::new(n)
            .with_overhead(1e-6)
            .with_latency(10e-6)
            .with_bandwidth(1e8)
            .with_eager_threshold(8192)
    }

    /// A small exchange-heavy program both budget tests share.
    fn budget_test_program(ranks: usize) -> Program {
        let mut pb = ProgramBuilder::new(ranks);
        let r = pb.add_region("step");
        pb.spmd(|rank, mut ops| {
            ops.enter(r)
                .compute(0.1 + 0.05 * rank as f64)
                .send((rank + 1) % ranks, 1024)
                .recv((rank + ranks - 1) % ranks)
                .barrier()
                .leave(r);
        });
        pb.build().unwrap()
    }

    #[test]
    fn generous_op_budget_is_bit_identical_to_unbudgeted() {
        let program = budget_test_program(4);
        let sim = Simulator::new(machine(4));
        let plain = sim.run(&program).unwrap();
        let budget = RunBudget {
            max_ops: Some(1_000_000),
            ..RunBudget::default()
        };
        let budgeted = sim.run_budgeted(&program, None, &budget).unwrap();
        assert_eq!(plain.trace, budgeted.trace);
        assert_eq!(plain.stats, budgeted.stats);
        let polled = sim.run_polling_budgeted(&program, None, &budget).unwrap();
        assert_eq!(plain.trace, polled.trace);
        assert_eq!(plain.stats, polled.stats);
    }

    #[test]
    fn op_budget_interrupts_both_engines_at_the_same_threshold() {
        let program = budget_test_program(4);
        let sim = Simulator::new(machine(4));
        // The smallest op budget that lets the run finish — found by
        // scanning upward — must be the same on both engines, and every
        // smaller budget must interrupt both with a named error. That is
        // what makes an op budget a deterministic, engine-independent
        // interruption point.
        let threshold = |budgeted: &dyn Fn(&RunBudget) -> Result<SimOutput, SimError>| -> u64 {
            let ceiling = program.total_ops() as u64 * 4;
            for max_ops in 0..=ceiling {
                let budget = RunBudget {
                    max_ops: Some(max_ops),
                    ..RunBudget::default()
                };
                match budgeted(&budget) {
                    Ok(_) => return max_ops,
                    Err(SimError::Interrupted { detail }) => {
                        assert!(detail.contains("op budget"), "{detail}")
                    }
                    Err(other) => panic!("unexpected error at max_ops={max_ops}: {other}"),
                }
            }
            panic!("no budget up to {ceiling} completed");
        };
        let event_threshold = threshold(&|b| sim.run_budgeted(&program, None, b));
        let polling_threshold = threshold(&|b| sim.run_polling_budgeted(&program, None, b));
        assert_eq!(event_threshold, polling_threshold);
        assert!(event_threshold > 0);
        // At the threshold both engines still agree bit-for-bit.
        let budget = RunBudget {
            max_ops: Some(event_threshold),
            ..RunBudget::default()
        };
        let event = sim.run_budgeted(&program, None, &budget).unwrap();
        let polling = sim.run_polling_budgeted(&program, None, &budget).unwrap();
        assert_eq!(event.trace, polling.trace);
        assert_eq!(event.stats, polling.stats);
    }

    #[test]
    fn cancelled_token_and_expired_deadline_interrupt_the_run() {
        let program = budget_test_program(4);
        let sim = Simulator::new(machine(4));
        let token = limba_par::CancelToken::new();
        token.cancel();
        let budget = RunBudget {
            cancel: Some(token),
            ..RunBudget::default()
        };
        assert!(matches!(
            sim.run_budgeted(&program, None, &budget),
            Err(SimError::Interrupted { .. })
        ));
        let budget = RunBudget {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..RunBudget::default()
        };
        assert!(matches!(
            sim.run_polling_budgeted(&program, None, &budget),
            Err(SimError::Interrupted { .. })
        ));
        // An untripped token and a far-away deadline change nothing.
        let budget = RunBudget {
            deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(3600)),
            cancel: Some(limba_par::CancelToken::new()),
            ..RunBudget::default()
        };
        let plain = sim.run(&program).unwrap();
        let budgeted = sim.run_budgeted(&program, None, &budget).unwrap();
        assert_eq!(plain.trace, budgeted.trace);
    }

    #[test]
    fn budgeted_run_honors_fault_plans_identically() {
        let program = budget_test_program(4);
        let sim = Simulator::new(machine(4));
        let plan = FaultPlan::new(11).with_slowdown(1, 0.0, 0.2, 2.0);
        let plain = sim.run_with_faults(&program, &plan).unwrap();
        let budget = RunBudget {
            max_ops: Some(1_000_000),
            ..RunBudget::default()
        };
        let budgeted = sim.run_budgeted(&program, Some(&plan), &budget).unwrap();
        assert_eq!(plain.trace, budgeted.trace);
        assert_eq!(plain.faults, budgeted.faults);
        let polled = sim
            .run_polling_budgeted(&program, Some(&plan), &budget)
            .unwrap();
        assert_eq!(plain.trace, polled.trace);
    }

    #[test]
    fn compute_only_program_times_add_up() {
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).compute(1.0).compute(0.5).leave(r);
        pb.rank(1).enter(r).compute(2.0).leave(r);
        let out = Simulator::new(machine(2))
            .run(&pb.build().unwrap())
            .unwrap();
        assert!((out.stats.rank_end_times[0] - 1.5).abs() < 1e-12);
        assert!((out.stats.rank_end_times[1] - 2.0).abs() < 1e-12);
        assert!((out.stats.makespan - 2.0).abs() < 1e-12);
        let m = out.reduce().unwrap().measurements;
        assert!((m.time(r, ActivityKind::Computation, ProcessorId::new(0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slow_node_takes_proportionally_longer() {
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.spmd(|_, mut ops| {
            ops.enter(r).compute(1.0).leave(r);
        });
        let cfg = machine(2).with_cpu_speed(1, 0.5);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        assert!((out.stats.rank_end_times[0] - 1.0).abs() < 1e-12);
        assert!((out.stats.rank_end_times[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eager_send_recv_timing() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1000).leave(r);
        pb.rank(1).enter(r).recv(0).leave(r);
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        // Sender: o + 1000/B = 1e-6 + 1e-5 = 1.1e-5.
        assert!((out.stats.rank_end_times[0] - 1.1e-5).abs() < 1e-12);
        // Receiver posted at 0; arrival = 1.1e-5 + 1e-5 latency = 2.1e-5.
        assert!((out.stats.rank_end_times[1] - 2.1e-5).abs() < 1e-12);
        assert_eq!(out.stats.messages, 1);
        assert_eq!(out.stats.bytes, 1000);
    }

    #[test]
    fn late_receiver_pays_only_overhead() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1000).leave(r);
        pb.rank(1).enter(r).compute(1.0).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        // Message long arrived; receive costs just the overhead.
        assert!((out.stats.rank_end_times[1] - (1.0 + 1e-6)).abs() < 1e-9);
    }

    #[test]
    fn rendezvous_blocks_sender_until_receiver_posts() {
        let cfg = machine(2); // eager threshold 8192
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1_000_000).leave(r);
        pb.rank(1).enter(r).compute(2.0).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        // Sync at 2.0; sender done at 2.0 + o + 0.01; receiver + latency.
        let sender_done = 2.0 + 1e-6 + 0.01;
        assert!((out.stats.rank_end_times[0] - sender_done).abs() < 1e-9);
        assert!((out.stats.rank_end_times[1] - (sender_done + 1e-5)).abs() < 1e-9);
        // Sender's point-to-point time includes the 2 s wait.
        let m = out.reduce().unwrap().measurements;
        let t = m.time(r, ActivityKind::PointToPoint, ProcessorId::new(0));
        assert!(t > 2.0, "sender p2p time {t} should include the wait");
    }

    #[test]
    fn message_order_is_fifo_per_channel() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 100).send(1, 200).leave(r);
        pb.rank(1).enter(r).recv(0).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        let reduced = out.reduce().unwrap();
        // Both messages received: counts show 2 messages, 300 bytes.
        use limba_model::CountKind;
        assert_eq!(
            reduced
                .counts
                .count(r, CountKind::MessagesReceived, ProcessorId::new(1)),
            2.0
        );
        assert_eq!(
            reduced
                .counts
                .count(r, CountKind::BytesReceived, ProcessorId::new(1)),
            300.0
        );
    }

    #[test]
    fn barrier_makes_everyone_wait_for_the_slowest() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("r");
        pb.spmd(|rank, mut ops| {
            ops.enter(r).compute(1.0 + rank as f64).barrier().leave(r);
        });
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        let cost = collective_cost(CollectiveKind::Barrier, 4, 0, &cfg);
        for t in &out.stats.rank_end_times {
            assert!((t - (4.0 + cost)).abs() < 1e-9);
        }
        // Rank 0 waited ~3 s in the barrier; rank 3 almost nothing.
        let m = out.reduce().unwrap().measurements;
        let w0 = m.time(r, ActivityKind::Synchronization, ProcessorId::new(0));
        let w3 = m.time(r, ActivityKind::Synchronization, ProcessorId::new(3));
        assert!(w0 > 2.9 && w0 < 3.1, "w0 = {w0}");
        assert!(w3 < 0.1, "w3 = {w3}");
        assert_eq!(out.stats.collectives, 1);
    }

    #[test]
    fn reduce_attributes_collective_time() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("r");
        pb.spmd(|_, mut ops| {
            ops.enter(r).reduce(4096).leave(r);
        });
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        let m = out.reduce().unwrap().measurements;
        let cost = collective_cost(CollectiveKind::Reduce, 4, 4096, &cfg);
        for p in 0..4 {
            let t = m.time(r, ActivityKind::Collective, ProcessorId::new(p));
            assert!((t - cost).abs() < 1e-12);
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).recv(1).leave(r);
        pb.rank(1).enter(r).recv(0).leave(r);
        let err = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
        assert!(err.to_string().contains("rank 0"));
    }

    #[test]
    fn deadlock_report_is_capped_on_large_machines() {
        // 12 stuck ranks: the report lists the first 8 and counts the rest.
        let n = 12;
        let cfg = machine(n);
        let mut pb = ProgramBuilder::new(n);
        let r = pb.add_region("r");
        pb.spmd(|rank, mut ops| {
            ops.enter(r).recv((rank + 1) % n).leave(r);
        });
        let err = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("rank 7 stuck"), "msg: {msg}");
        assert!(!msg.contains("rank 8 stuck"), "msg: {msg}");
        assert!(msg.contains("and 4 more stuck ranks"), "msg: {msg}");
    }

    #[test]
    fn rendezvous_deadlock_detected_for_two_big_sends() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1 << 20).recv(1).leave(r);
        pb.rank(1).enter(r).send(0, 1 << 20).recv(0).leave(r);
        let err = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn eager_cross_sends_do_not_deadlock() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 100).recv(1).leave(r);
        pb.rank(1).enter(r).send(0, 100).recv(0).leave(r);
        Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
    }

    #[test]
    fn program_larger_than_machine_rejected() {
        let pb = ProgramBuilder::new(8);
        let program = pb.build().unwrap();
        assert!(matches!(
            Simulator::new(machine(4)).run(&program),
            Err(SimError::RankOutOfRange { .. })
        ));
    }

    #[test]
    fn isend_overlaps_computation() {
        let cfg = machine(2);
        // Blocking version: send (big, rendezvous) then compute.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1 << 20).compute(1.0).leave(r);
        pb.rank(1).enter(r).compute(1.0).recv(0).leave(r);
        let blocking = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();

        // Nonblocking version overlaps the transfer with the compute.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0)
            .enter(r)
            .isend(1, 1 << 20, 7)
            .compute(1.0)
            .wait(7)
            .leave(r);
        pb.rank(1).enter(r).compute(1.0).recv(0).leave(r);
        let nonblocking = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();

        assert!(
            nonblocking.stats.makespan < blocking.stats.makespan,
            "nonblocking {} not faster than blocking {}",
            nonblocking.stats.makespan,
            blocking.stats.makespan
        );
    }

    #[test]
    fn irecv_wait_matches_early_and_late_messages() {
        let cfg = machine(2);
        // Message arrives before the wait: wait is (nearly) free.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 100).leave(r);
        pb.rank(1)
            .enter(r)
            .irecv(0, 1)
            .compute(1.0)
            .wait(1)
            .leave(r);
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        assert!((out.stats.rank_end_times[1] - (1.0 + 1e-6)).abs() < 1e-7);

        // Message arrives after the wait: the wait blocks until arrival.
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).compute(2.0).send(1, 100).leave(r);
        pb.rank(1).enter(r).irecv(0, 1).wait(1).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        assert!(out.stats.rank_end_times[1] > 2.0);
        out.trace.validate().unwrap();
    }

    #[test]
    fn irecv_wait_matches_rendezvous_sender() {
        let cfg = machine(2);
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 1 << 20).leave(r); // rendezvous size
        pb.rank(1)
            .enter(r)
            .irecv(0, 3)
            .compute(0.5)
            .wait(3)
            .leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        out.trace.validate().unwrap();
        // The rendezvous could start at the irecv post (~0), so the
        // sender finishes around o + transfer ≈ 0.01 s, well before the
        // receiver's wait at 0.5.
        assert!(out.stats.rank_end_times[0] < 0.1);
        assert_eq!(out.stats.messages, 1);
    }

    #[test]
    fn handle_misuse_is_rejected_at_build_time() {
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).isend(1, 10, 1).isend(1, 10, 1).wait(1).wait(1);
        assert!(matches!(pb.build(), Err(SimError::BadHandle { .. })));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).wait(9);
        assert!(matches!(pb.build(), Err(SimError::BadHandle { .. })));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).irecv(1, 2);
        assert!(matches!(pb.build(), Err(SimError::BadHandle { .. })));
    }

    #[test]
    fn gather_scatter_allgather_run_and_attribute_collective_time() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("r");
        pb.spmd(|_, mut ops| {
            ops.enter(r)
                .gather(1024)
                .scatter(1024)
                .allgather(512)
                .leave(r);
        });
        let out = Simulator::new(cfg.clone())
            .run(&pb.build().unwrap())
            .unwrap();
        let m = out.reduce().unwrap().measurements;
        let expected = collective_cost(CollectiveKind::Gather, 4, 1024, &cfg)
            + collective_cost(CollectiveKind::Scatter, 4, 1024, &cfg)
            + collective_cost(CollectiveKind::Allgather, 4, 512, &cfg);
        for p in 0..4 {
            let t = m.time(r, ActivityKind::Collective, ProcessorId::new(p));
            assert!((t - expected).abs() < 1e-12);
        }
        assert_eq!(out.stats.collectives, 3);
    }

    #[test]
    fn slow_link_delays_only_its_traffic() {
        // Rank 0 sends the same payload to ranks 1 and 2, but the 0→2
        // link is ten times slower.
        let cfg = machine(3).with_link(0, 2, 10e-5, 1e7);
        let mut pb = ProgramBuilder::new(3);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).send(1, 4000).send(2, 4000).leave(r);
        pb.rank(1).enter(r).recv(0).leave(r);
        pb.rank(2).enter(r).recv(0).leave(r);
        let out = Simulator::new(cfg).run(&pb.build().unwrap()).unwrap();
        let m = out.reduce().unwrap().measurements;
        let t1 = m.time(r, ActivityKind::PointToPoint, ProcessorId::new(1));
        let t2 = m.time(r, ActivityKind::PointToPoint, ProcessorId::new(2));
        assert!(t2 > 3.0 * t1, "slow-link receiver {t2} vs fast {t1}");
    }

    #[test]
    fn link_overrides_are_validated() {
        let cfg = machine(2).with_link(0, 1, -1.0, 1e6);
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).compute(0.1);
        assert!(matches!(
            Simulator::new(cfg).run(&pb.build().unwrap()),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn trace_is_well_formed_and_deterministic() {
        let cfg = machine(4);
        let mut pb = ProgramBuilder::new(4);
        let a = pb.add_region("a");
        let b = pb.add_region("b");
        pb.spmd(|rank, mut ops| {
            ops.enter(a)
                .compute(0.1 * (rank + 1) as f64)
                .allreduce(512)
                .leave(a);
            ops.enter(b);
            if rank > 0 {
                ops.send(rank - 1, 2048);
            }
            if rank < 3 {
                ops.recv(rank + 1);
            }
            ops.barrier().leave(b);
        });
        let program = pb.build().unwrap();
        let out1 = Simulator::new(cfg.clone()).run(&program).unwrap();
        let out2 = Simulator::new(cfg).run(&program).unwrap();
        out1.trace.validate().unwrap();
        assert_eq!(out1.trace, out2.trace);
        assert_eq!(out1.stats, out2.stats);
    }

    #[test]
    fn event_and_polling_engines_are_bit_identical() {
        // A program exercising every blocking construct: eager and
        // rendezvous sends, nonblocking ring shifts, and collectives.
        let cfg = machine(5);
        let mut pb = ProgramBuilder::new(5);
        let r = pb.add_region("r");
        pb.spmd(|rank, mut ops| {
            ops.enter(r).compute(0.01 * (rank + 1) as f64);
            for parity in 0..2usize {
                if rank % 2 == parity {
                    if rank + 1 < 5 {
                        ops.send(rank + 1, 100_000).recv(rank + 1);
                    }
                } else if rank >= 1 {
                    ops.recv(rank - 1).send(rank - 1, 100_000);
                }
            }
            let right = (rank + 1) % 5;
            let left = (rank + 4) % 5;
            ops.isend(right, 64, 1)
                .irecv(left, 2)
                .compute(0.002)
                .wait(1)
                .wait(2)
                .allreduce(2048)
                .barrier()
                .leave(r);
        });
        let program = pb.build().unwrap();
        let sim = Simulator::new(cfg);
        let event = sim.run(&program).unwrap();
        let polling = sim.run_polling(&program).unwrap();
        assert_eq!(event.trace, polling.trace);
        assert_eq!(event.stats, polling.stats);
    }

    #[test]
    fn engines_agree_on_deadlock_diagnostics() {
        let cfg = machine(3);
        let mut pb = ProgramBuilder::new(3);
        let r = pb.add_region("r");
        pb.spmd(|rank, mut ops| {
            ops.enter(r).recv((rank + 1) % 3).leave(r);
        });
        let program = pb.build().unwrap();
        let sim = Simulator::new(cfg);
        let event = sim.run(&program).unwrap_err().to_string();
        let polling = sim.run_polling(&program).unwrap_err().to_string();
        assert_eq!(event, polling);
    }
}
