//! Machine configuration.

use std::collections::HashMap;

use crate::{CollectiveAlgorithm, CollectiveKind, SimError};

/// Parameters of the simulated message-passing machine.
///
/// The point-to-point network follows a LogP-flavoured model: sending a
/// message of `n` bytes costs the sender `overhead + n / bandwidth` of CPU
/// time; the message reaches the receiver one `latency` later. Messages
/// larger than `eager_threshold` use a rendezvous protocol: the transfer
/// only starts once *both* sides have reached their call, and the sender
/// blocks until then.
///
/// # Example
///
/// ```
/// use limba_mpisim::MachineConfig;
/// let cfg = MachineConfig::new(16)
///     .with_latency(40e-6)
///     .with_bandwidth(40e6)
///     .with_cpu_speed(3, 0.8); // rank 3 is a slow node
/// assert_eq!(cfg.processors(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    processors: usize,
    cpu_speeds: Vec<f64>,
    overhead: f64,
    latency: f64,
    bandwidth: f64,
    eager_threshold: u64,
    /// Per-directed-link `(src, dst)` overrides of `(latency, bandwidth)`.
    link_overrides: HashMap<(usize, usize), (f64, f64)>,
    /// Per-collective algorithm overrides; absent kinds use
    /// [`CollectiveKind::algorithm`].
    collective_overrides: HashMap<CollectiveKind, CollectiveAlgorithm>,
}

impl MachineConfig {
    /// Creates a machine of `processors` identical ranks with defaults
    /// loosely modelled on a mid-90s MPP interconnect (overhead 5 µs,
    /// latency 40 µs, bandwidth 40 MB/s, eager threshold 8 KiB).
    pub fn new(processors: usize) -> Self {
        MachineConfig {
            processors,
            cpu_speeds: vec![1.0; processors],
            overhead: 5e-6,
            latency: 40e-6,
            bandwidth: 40e6,
            eager_threshold: 8 * 1024,
            link_overrides: HashMap::new(),
            collective_overrides: HashMap::new(),
        }
    }

    /// Number of processors (MPI ranks).
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Per-message CPU overhead `o` in seconds.
    pub fn overhead(&self) -> f64 {
        self.overhead
    }

    /// Wire latency `L` in seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Link bandwidth `B` in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Eager/rendezvous protocol switch point in bytes.
    pub fn eager_threshold(&self) -> u64 {
        self.eager_threshold
    }

    /// Relative CPU speed of `rank` (1.0 = nominal).
    ///
    /// # Panics
    ///
    /// Panics when `rank` is out of range.
    pub fn cpu_speed(&self, rank: usize) -> f64 {
        self.cpu_speeds[rank]
    }

    /// Sets the per-message CPU overhead in seconds.
    pub fn with_overhead(mut self, seconds: f64) -> Self {
        self.overhead = seconds;
        self
    }

    /// Sets the wire latency in seconds.
    pub fn with_latency(mut self, seconds: f64) -> Self {
        self.latency = seconds;
        self
    }

    /// Sets the link bandwidth in bytes per second.
    pub fn with_bandwidth(mut self, bytes_per_second: f64) -> Self {
        self.bandwidth = bytes_per_second;
        self
    }

    /// Sets the eager threshold in bytes.
    pub fn with_eager_threshold(mut self, bytes: u64) -> Self {
        self.eager_threshold = bytes;
        self
    }

    /// Sets the relative CPU speed of one rank.
    ///
    /// # Panics
    ///
    /// Panics when `rank` is out of range.
    pub fn with_cpu_speed(mut self, rank: usize, speed: f64) -> Self {
        self.cpu_speeds[rank] = speed;
        self
    }

    /// Sets all relative CPU speeds at once.
    ///
    /// # Panics
    ///
    /// Panics when `speeds.len()` differs from the processor count.
    pub fn with_cpu_speeds(mut self, speeds: Vec<f64>) -> Self {
        assert_eq!(
            speeds.len(),
            self.processors,
            "one speed per processor required"
        );
        self.cpu_speeds = speeds;
        self
    }

    /// Overrides the latency and bandwidth of the directed link
    /// `src → dst` (e.g. a degraded cable or a cross-switch hop).
    /// Collectives keep using the machine-wide parameters; only
    /// point-to-point traffic sees link overrides.
    ///
    /// # Panics
    ///
    /// Panics when either endpoint is out of range.
    pub fn with_link(mut self, src: usize, dst: usize, latency: f64, bandwidth: f64) -> Self {
        assert!(
            src < self.processors && dst < self.processors,
            "link endpoint out of range"
        );
        self.link_overrides.insert((src, dst), (latency, bandwidth));
        self
    }

    /// Whether any per-link overrides are present. The simulator's hot
    /// path skips the override lookup entirely on uniform machines and
    /// caches a dense link table otherwise.
    pub fn has_link_overrides(&self) -> bool {
        !self.link_overrides.is_empty()
    }

    /// The directed link pairs carrying an override, sorted — the
    /// machine's explicit network topology. Sorting makes the order
    /// deterministic (the overrides live in a `HashMap`), which the
    /// diffusion balancing policy depends on for its neighbor lists.
    pub fn link_override_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = self.link_overrides.keys().copied().collect();
        pairs.sort_unstable();
        pairs
    }

    /// Latency of the directed link `src → dst`.
    pub fn link_latency(&self, src: usize, dst: usize) -> f64 {
        self.link_overrides
            .get(&(src, dst))
            .map(|&(l, _)| l)
            .unwrap_or(self.latency)
    }

    /// Bandwidth of the directed link `src → dst`.
    pub fn link_bandwidth(&self, src: usize, dst: usize) -> f64 {
        self.link_overrides
            .get(&(src, dst))
            .map(|&(_, b)| b)
            .unwrap_or(self.bandwidth)
    }

    /// Overrides the algorithm one collective kind is costed with.
    /// Collectives without an override keep their default
    /// ([`CollectiveKind::algorithm`]); both engines cost collectives
    /// through the same [`collective_cost`](crate::collective_cost), so
    /// an override changes both identically.
    pub fn with_collective_algorithm(
        mut self,
        kind: CollectiveKind,
        algorithm: CollectiveAlgorithm,
    ) -> Self {
        self.collective_overrides.insert(kind, algorithm);
        self
    }

    /// The algorithm `kind` is costed with on this machine: the
    /// override when one was set, the kind's default otherwise.
    pub fn collective_algorithm(&self, kind: CollectiveKind) -> CollectiveAlgorithm {
        self.collective_overrides
            .get(&kind)
            .copied()
            .unwrap_or_else(|| kind.algorithm())
    }

    /// Transfer time for `bytes` over the default link, `bytes / B`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth
    }

    /// Transfer time for `bytes` over the directed link `src → dst`.
    pub fn link_transfer_time(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        bytes as f64 / self.link_bandwidth(src, dst)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the machine has no
    /// processors, any timing parameter is non-positive or non-finite, or
    /// any CPU speed is non-positive.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.processors == 0 {
            return Err(SimError::InvalidConfig {
                detail: "machine needs at least one processor".into(),
            });
        }
        for (name, v) in [
            ("overhead", self.overhead),
            ("latency", self.latency),
            ("bandwidth", self.bandwidth),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(SimError::InvalidConfig {
                    detail: format!("{name} must be finite and positive, got {v}"),
                });
            }
        }
        for (rank, &s) in self.cpu_speeds.iter().enumerate() {
            if !s.is_finite() || s <= 0.0 {
                return Err(SimError::InvalidConfig {
                    detail: format!("cpu speed of rank {rank} must be positive, got {s}"),
                });
            }
        }
        for (&(src, dst), &(l, bw)) in &self.link_overrides {
            if !l.is_finite() || l <= 0.0 || !bw.is_finite() || bw <= 0.0 {
                return Err(SimError::InvalidConfig {
                    detail: format!(
                        "link {src}->{dst} must have positive latency and bandwidth, got ({l}, {bw})"
                    ),
                });
            }
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    /// A 16-processor machine, matching the paper's case study.
    fn default() -> Self {
        MachineConfig::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_size() {
        let cfg = MachineConfig::default();
        assert_eq!(cfg.processors(), 16);
        cfg.validate().unwrap();
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = MachineConfig::new(4)
            .with_overhead(1e-6)
            .with_latency(2e-6)
            .with_bandwidth(1e9)
            .with_eager_threshold(1024)
            .with_cpu_speed(2, 0.5);
        assert_eq!(cfg.overhead(), 1e-6);
        assert_eq!(cfg.latency(), 2e-6);
        assert_eq!(cfg.bandwidth(), 1e9);
        assert_eq!(cfg.eager_threshold(), 1024);
        assert_eq!(cfg.cpu_speed(2), 0.5);
        assert_eq!(cfg.cpu_speed(0), 1.0);
        assert_eq!(cfg.transfer_time(1_000_000_000), 1.0);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(MachineConfig::new(0).validate().is_err());
        assert!(MachineConfig::new(2).with_latency(0.0).validate().is_err());
        assert!(MachineConfig::new(2)
            .with_bandwidth(-1.0)
            .validate()
            .is_err());
        assert!(MachineConfig::new(2)
            .with_overhead(f64::NAN)
            .validate()
            .is_err());
        assert!(MachineConfig::new(2)
            .with_cpu_speed(0, 0.0)
            .validate()
            .is_err());
    }

    #[test]
    fn with_cpu_speeds_replaces_all() {
        let cfg = MachineConfig::new(2).with_cpu_speeds(vec![1.0, 2.0]);
        assert_eq!(cfg.cpu_speed(1), 2.0);
    }

    #[test]
    #[should_panic(expected = "one speed per processor")]
    fn with_cpu_speeds_wrong_len_panics() {
        let _ = MachineConfig::new(2).with_cpu_speeds(vec![1.0]);
    }

    #[test]
    fn link_overrides_apply_per_direction() {
        let cfg = MachineConfig::new(4)
            .with_latency(1e-5)
            .with_bandwidth(1e8)
            .with_link(0, 1, 5e-5, 2e7);
        assert_eq!(cfg.link_latency(0, 1), 5e-5);
        assert_eq!(cfg.link_bandwidth(0, 1), 2e7);
        // The reverse direction keeps the defaults.
        assert_eq!(cfg.link_latency(1, 0), 1e-5);
        assert_eq!(cfg.link_bandwidth(1, 0), 1e8);
        assert_eq!(cfg.link_transfer_time(0, 1, 2_000_000), 0.1);
        assert_eq!(cfg.link_transfer_time(1, 0, 1_000_000), 0.01);
        cfg.validate().unwrap();
        assert!(MachineConfig::new(2)
            .with_link(0, 1, 0.0, 1e6)
            .validate()
            .is_err());
    }

    #[test]
    #[should_panic(expected = "endpoint out of range")]
    fn link_endpoint_out_of_range_panics() {
        let _ = MachineConfig::new(2).with_link(0, 5, 1e-5, 1e6);
    }

    #[test]
    fn collective_algorithm_overrides_apply_per_kind() {
        let cfg = MachineConfig::new(8)
            .with_collective_algorithm(CollectiveKind::Allreduce, CollectiveAlgorithm::Ring);
        assert_eq!(
            cfg.collective_algorithm(CollectiveKind::Allreduce),
            CollectiveAlgorithm::Ring
        );
        // Kinds without an override keep their defaults.
        assert_eq!(
            cfg.collective_algorithm(CollectiveKind::Reduce),
            CollectiveAlgorithm::BinomialTree
        );
        cfg.validate().unwrap();
    }
}
