//! Per-rank op programs and their builders.

use limba_model::RegionId;

use crate::{CollectiveKind, SimError};

/// One operation of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Burn CPU for `seconds` of work at nominal speed (a slow node takes
    /// proportionally longer).
    Compute {
        /// Work in seconds at speed 1.0.
        seconds: f64,
    },
    /// Blocking send of `bytes` to `dst` (eager below the machine's
    /// threshold, rendezvous above).
    Send {
        /// Destination rank.
        dst: usize,
        /// Payload size.
        bytes: u64,
    },
    /// Blocking receive of the next message from `src`.
    Recv {
        /// Source rank.
        src: usize,
    },
    /// Nonblocking send: the message is buffered and transferred in the
    /// background; [`Op::Wait`] on `handle` completes once the local
    /// buffer is free. (Buffered semantics: no rendezvous blocking.)
    Isend {
        /// Destination rank.
        dst: usize,
        /// Payload size.
        bytes: u64,
        /// Request handle, unique among this rank's outstanding requests.
        handle: u32,
    },
    /// Nonblocking receive: posts the request; [`Op::Wait`] on `handle`
    /// blocks until the matching message arrives.
    Irecv {
        /// Source rank.
        src: usize,
        /// Request handle, unique among this rank's outstanding requests.
        handle: u32,
    },
    /// Completes an outstanding nonblocking request.
    Wait {
        /// Handle of the request to complete.
        handle: u32,
    },
    /// A collective over all ranks; every rank's `k`-th collective call
    /// must have the same kind.
    Collective {
        /// Which collective.
        kind: CollectiveKind,
        /// Payload size (per pair for alltoall; ignored by barriers).
        bytes: u64,
    },
    /// Enter an instrumented code region.
    Enter {
        /// The region.
        region: RegionId,
    },
    /// Leave an instrumented code region.
    Leave {
        /// The region.
        region: RegionId,
    },
}

/// A complete program: region names plus one op list per rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) region_names: Vec<String>,
    pub(crate) ranks: Vec<Vec<Op>>,
}

impl Program {
    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Region names in id order.
    pub fn region_names(&self) -> &[String] {
        &self.region_names
    }

    /// Op list of `rank`.
    ///
    /// # Panics
    ///
    /// Panics when `rank` is out of range.
    pub fn ops(&self, rank: usize) -> &[Op] {
        &self.ranks[rank]
    }

    /// Total number of ops over all ranks.
    pub fn total_ops(&self) -> usize {
        self.ranks.iter().map(|r| r.len()).sum()
    }

    /// Nominal compute seconds per rank (speed 1.0), summed over the
    /// whole program — the load vector the advisor's majorization
    /// bounds are built from.
    pub fn compute_seconds(&self) -> Vec<f64> {
        self.ranks
            .iter()
            .map(|ops| {
                ops.iter()
                    .map(|op| match op {
                        Op::Compute { seconds } => *seconds,
                        _ => 0.0,
                    })
                    .sum()
            })
            .collect()
    }

    /// Nominal compute seconds per rank attributed to `region`
    /// (innermost enclosing region wins, matching how the trace reducer
    /// attributes busy time). Compute outside any region, or inside a
    /// nested sub-region, is not counted.
    pub fn region_compute_seconds(&self, region: RegionId) -> Vec<f64> {
        self.ranks
            .iter()
            .map(|ops| {
                let mut stack: Vec<RegionId> = Vec::new();
                let mut total = 0.0;
                for op in ops {
                    match op {
                        Op::Enter { region } => stack.push(*region),
                        Op::Leave { .. } => {
                            stack.pop();
                        }
                        Op::Compute { seconds } if stack.last() == Some(&region) => {
                            total += seconds;
                        }
                        _ => {}
                    }
                }
                total
            })
            .collect()
    }

    /// The program's collective call sequence as `(kind, bytes)` pairs,
    /// one per instance, with `bytes` the maximum payload any rank
    /// contributes — the value the engines cost the instance with.
    /// Empty for programs without collectives.
    pub fn collective_calls(&self) -> Vec<(CollectiveKind, u64)> {
        let Some(first) = self.ranks.first() else {
            return Vec::new();
        };
        let mut calls: Vec<(CollectiveKind, u64)> = first
            .iter()
            .filter_map(|op| match op {
                Op::Collective { kind, bytes } => Some((*kind, *bytes)),
                _ => None,
            })
            .collect();
        for ops in &self.ranks[1..] {
            for (i, bytes) in ops
                .iter()
                .filter_map(|op| match op {
                    Op::Collective { bytes, .. } => Some(*bytes),
                    _ => None,
                })
                .enumerate()
            {
                calls[i].1 = calls[i].1.max(bytes);
            }
        }
        calls
    }

    /// Returns a copy of the program with every compute op attributed
    /// to `region` (innermost attribution, as in
    /// [`region_compute_seconds`](Program::region_compute_seconds))
    /// scaled by its rank's entry in `factors` — the advisor's
    /// work-splitting transform. Communication, collectives, and
    /// compute in other regions are untouched, so the program's
    /// synchronization structure is preserved by construction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidWork`] when a factor is negative or
    /// non-finite.
    ///
    /// # Panics
    ///
    /// Panics when `factors.len()` differs from the rank count.
    pub fn with_region_compute_scaled(
        &self,
        region: RegionId,
        factors: &[f64],
    ) -> Result<Program, SimError> {
        assert_eq!(
            factors.len(),
            self.ranks.len(),
            "one factor per rank required"
        );
        for &f in factors {
            if !f.is_finite() || f < 0.0 {
                return Err(SimError::InvalidWork { value: f });
            }
        }
        let mut out = self.clone();
        for (ops, &factor) in out.ranks.iter_mut().zip(factors) {
            let mut stack: Vec<RegionId> = Vec::new();
            for op in ops.iter_mut() {
                match op {
                    Op::Enter { region } => stack.push(*region),
                    Op::Leave { .. } => {
                        stack.pop();
                    }
                    Op::Compute { seconds } if stack.last() == Some(&region) => {
                        *seconds *= factor;
                    }
                    _ => {}
                }
            }
        }
        Ok(out)
    }

    /// Upper bound on the number of trace events one run of this
    /// program records, computed from op counts alone. The simulator
    /// pre-reserves the trace's event buffer with this, so recording
    /// never reallocates mid-run. The bound is tight up to waits that
    /// complete without blocking (they record nothing).
    pub fn event_capacity_hint(&self) -> usize {
        self.ranks
            .iter()
            .flat_map(|ops| ops.iter())
            .map(|op| match op {
                Op::Compute { .. } => 0,
                Op::Enter { .. } | Op::Leave { .. } => 1,
                // Irecv posts begin/end; a collective records a
                // begin/end pair on each rank's own op.
                Op::Irecv { .. } | Op::Collective { .. } => 2,
                // Every message contributes at most begin + transfer +
                // end on each side, budgeted on the op of that side
                // (a rendezvous receive records the sender's three
                // events too, but the matching Send recorded none).
                Op::Send { .. } | Op::Recv { .. } | Op::Isend { .. } | Op::Wait { .. } => 3,
            })
            .sum()
    }
}

/// Builder for [`Program`]s.
///
/// # Example
///
/// ```
/// use limba_mpisim::ProgramBuilder;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pb = ProgramBuilder::new(2);
/// let r = pb.add_region("exchange");
/// pb.rank(0).enter(r).compute(0.5).send(1, 1024).recv(1).leave(r);
/// pb.rank(1).enter(r).compute(0.6).recv(0).send(0, 1024).leave(r);
/// let program = pb.build()?;
/// assert_eq!(program.ranks(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    region_names: Vec<String>,
    ranks: Vec<Vec<Op>>,
}

impl ProgramBuilder {
    /// Creates a builder for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        ProgramBuilder {
            region_names: Vec::new(),
            ranks: vec![Vec::new(); ranks],
        }
    }

    /// Registers a code region, returning its id.
    pub fn add_region(&mut self, name: impl Into<String>) -> RegionId {
        let id = RegionId::new(self.region_names.len());
        self.region_names.push(name.into());
        id
    }

    /// Returns the op-appending handle of `rank`.
    ///
    /// # Panics
    ///
    /// Panics when `rank` is out of range.
    pub fn rank(&mut self, rank: usize) -> RankOps<'_> {
        assert!(rank < self.ranks.len(), "rank out of range");
        RankOps {
            ops: &mut self.ranks[rank],
        }
    }

    /// Applies `body` to every rank in turn — the SPMD style most
    /// message-passing programs are written in.
    pub fn spmd<F: FnMut(usize, RankOps<'_>)>(&mut self, mut body: F) {
        for rank in 0..self.ranks.len() {
            body(
                rank,
                RankOps {
                    ops: &mut self.ranks[rank],
                },
            );
        }
    }

    /// Validates and finalizes the program.
    ///
    /// # Errors
    ///
    /// Returns an error when an op references an out-of-range rank, a rank
    /// messages itself, compute work is invalid, or the ranks' collective
    /// call sequences disagree in length or kind.
    pub fn build(self) -> Result<Program, SimError> {
        let n = self.ranks.len();
        for (rank, ops) in self.ranks.iter().enumerate() {
            let mut outstanding: Vec<u32> = Vec::new();
            for op in ops {
                match *op {
                    Op::Compute { seconds } => {
                        if !seconds.is_finite() || seconds < 0.0 {
                            return Err(SimError::InvalidWork { value: seconds });
                        }
                    }
                    Op::Send { dst, .. } | Op::Isend { dst, .. } => {
                        if dst >= n {
                            return Err(SimError::RankOutOfRange {
                                rank: dst,
                                ranks: n,
                            });
                        }
                        if dst == rank {
                            return Err(SimError::SelfMessage { rank });
                        }
                    }
                    Op::Recv { src } | Op::Irecv { src, .. } => {
                        if src >= n {
                            return Err(SimError::RankOutOfRange {
                                rank: src,
                                ranks: n,
                            });
                        }
                        if src == rank {
                            return Err(SimError::SelfMessage { rank });
                        }
                    }
                    Op::Collective { .. }
                    | Op::Enter { .. }
                    | Op::Leave { .. }
                    | Op::Wait { .. } => {}
                }
                match *op {
                    Op::Isend { handle, .. } | Op::Irecv { handle, .. } => {
                        if outstanding.contains(&handle) {
                            return Err(SimError::BadHandle {
                                rank,
                                handle,
                                detail: "handle already outstanding".into(),
                            });
                        }
                        outstanding.push(handle);
                    }
                    Op::Wait { handle } => match outstanding.iter().position(|&h| h == handle) {
                        Some(i) => {
                            outstanding.remove(i);
                        }
                        None => {
                            return Err(SimError::BadHandle {
                                rank,
                                handle,
                                detail: "wait on a handle with no outstanding request".into(),
                            })
                        }
                    },
                    _ => {}
                }
            }
            if let Some(&handle) = outstanding.first() {
                return Err(SimError::BadHandle {
                    rank,
                    handle,
                    detail: "request never waited on".into(),
                });
            }
        }
        // Collective sequences must agree across ranks.
        let sequences: Vec<Vec<CollectiveKind>> = self
            .ranks
            .iter()
            .map(|ops| {
                ops.iter()
                    .filter_map(|op| match op {
                        Op::Collective { kind, .. } => Some(*kind),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        if let Some(first) = sequences.first() {
            for (rank, seq) in sequences.iter().enumerate().skip(1) {
                if seq.len() != first.len() {
                    return Err(SimError::CollectiveMismatch {
                        instance: first.len().min(seq.len()),
                        detail: format!(
                            "rank 0 makes {} collective calls but rank {rank} makes {}",
                            first.len(),
                            seq.len()
                        ),
                    });
                }
                for (i, (a, b)) in first.iter().zip(seq).enumerate() {
                    if a != b {
                        return Err(SimError::CollectiveMismatch {
                            instance: i,
                            detail: format!("rank 0 calls {a} but rank {rank} calls {b}"),
                        });
                    }
                }
            }
        }
        Ok(Program {
            region_names: self.region_names,
            ranks: self.ranks,
        })
    }
}

/// Fluent op-appending handle for one rank (see [`ProgramBuilder::rank`]).
#[derive(Debug)]
pub struct RankOps<'a> {
    ops: &'a mut Vec<Op>,
}

impl RankOps<'_> {
    /// Appends a compute op of `seconds` nominal work.
    pub fn compute(&mut self, seconds: f64) -> &mut Self {
        self.ops.push(Op::Compute { seconds });
        self
    }

    /// Appends a blocking send.
    pub fn send(&mut self, dst: usize, bytes: u64) -> &mut Self {
        self.ops.push(Op::Send { dst, bytes });
        self
    }

    /// Appends a blocking receive.
    pub fn recv(&mut self, src: usize) -> &mut Self {
        self.ops.push(Op::Recv { src });
        self
    }

    /// Appends a nonblocking send under `handle`.
    pub fn isend(&mut self, dst: usize, bytes: u64, handle: u32) -> &mut Self {
        self.ops.push(Op::Isend { dst, bytes, handle });
        self
    }

    /// Appends a nonblocking receive under `handle`.
    pub fn irecv(&mut self, src: usize, handle: u32) -> &mut Self {
        self.ops.push(Op::Irecv { src, handle });
        self
    }

    /// Appends a wait completing the request under `handle`.
    pub fn wait(&mut self, handle: u32) -> &mut Self {
        self.ops.push(Op::Wait { handle });
        self
    }

    /// Appends an `MPI_GATHER`-style collective.
    pub fn gather(&mut self, bytes: u64) -> &mut Self {
        self.ops.push(Op::Collective {
            kind: CollectiveKind::Gather,
            bytes,
        });
        self
    }

    /// Appends an `MPI_SCATTER`-style collective.
    pub fn scatter(&mut self, bytes: u64) -> &mut Self {
        self.ops.push(Op::Collective {
            kind: CollectiveKind::Scatter,
            bytes,
        });
        self
    }

    /// Appends an `MPI_ALLGATHER`-style collective.
    pub fn allgather(&mut self, bytes: u64) -> &mut Self {
        self.ops.push(Op::Collective {
            kind: CollectiveKind::Allgather,
            bytes,
        });
        self
    }

    /// Appends an `MPI_REDUCE`-style collective.
    pub fn reduce(&mut self, bytes: u64) -> &mut Self {
        self.ops.push(Op::Collective {
            kind: CollectiveKind::Reduce,
            bytes,
        });
        self
    }

    /// Appends an `MPI_ALLREDUCE`-style collective.
    pub fn allreduce(&mut self, bytes: u64) -> &mut Self {
        self.ops.push(Op::Collective {
            kind: CollectiveKind::Allreduce,
            bytes,
        });
        self
    }

    /// Appends an `MPI_BCAST`-style collective.
    pub fn broadcast(&mut self, bytes: u64) -> &mut Self {
        self.ops.push(Op::Collective {
            kind: CollectiveKind::Broadcast,
            bytes,
        });
        self
    }

    /// Appends an `MPI_ALLTOALL`-style collective with `bytes` per pair.
    pub fn alltoall(&mut self, bytes: u64) -> &mut Self {
        self.ops.push(Op::Collective {
            kind: CollectiveKind::Alltoall,
            bytes,
        });
        self
    }

    /// Appends a barrier.
    pub fn barrier(&mut self) -> &mut Self {
        self.ops.push(Op::Collective {
            kind: CollectiveKind::Barrier,
            bytes: 0,
        });
        self
    }

    /// Appends a region-enter marker.
    pub fn enter(&mut self, region: RegionId) -> &mut Self {
        self.ops.push(Op::Enter { region });
        self
    }

    /// Appends a region-leave marker.
    pub fn leave(&mut self, region: RegionId) -> &mut Self {
        self.ops.push(Op::Leave { region });
        self
    }

    /// Appends a raw op.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_ops() {
        let mut pb = ProgramBuilder::new(2);
        let r = pb.add_region("r");
        pb.rank(0).enter(r).compute(1.0).send(1, 10).leave(r);
        pb.rank(1).enter(r).recv(0).leave(r);
        let p = pb.build().unwrap();
        assert_eq!(p.ranks(), 2);
        assert_eq!(p.total_ops(), 7);
        assert_eq!(p.ops(0)[1], Op::Compute { seconds: 1.0 });
        assert_eq!(p.region_names(), ["r"]);
    }

    #[test]
    fn spmd_builds_all_ranks() {
        let mut pb = ProgramBuilder::new(4);
        pb.spmd(|rank, mut ops| {
            ops.compute(rank as f64);
        });
        let p = pb.build().unwrap();
        for rank in 0..4 {
            assert_eq!(p.ops(rank).len(), 1);
        }
    }

    #[test]
    fn validation_rejects_bad_programs() {
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).send(5, 10);
        assert!(matches!(pb.build(), Err(SimError::RankOutOfRange { .. })));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).send(0, 10);
        assert!(matches!(pb.build(), Err(SimError::SelfMessage { rank: 0 })));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(1).recv(1);
        assert!(matches!(pb.build(), Err(SimError::SelfMessage { rank: 1 })));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).compute(f64::NAN);
        assert!(matches!(pb.build(), Err(SimError::InvalidWork { .. })));
    }

    #[test]
    fn collective_sequences_must_agree() {
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).barrier();
        assert!(matches!(
            pb.build(),
            Err(SimError::CollectiveMismatch { .. })
        ));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).barrier();
        pb.rank(1).reduce(8);
        assert!(matches!(
            pb.build(),
            Err(SimError::CollectiveMismatch { .. })
        ));

        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).barrier().reduce(8);
        pb.rank(1).barrier().reduce(16); // byte mismatch allowed, max used
        assert!(pb.build().is_ok());
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn rank_handle_out_of_range_panics() {
        let mut pb = ProgramBuilder::new(1);
        let _ = pb.rank(3);
    }

    fn two_region_program() -> Program {
        let mut pb = ProgramBuilder::new(2);
        let outer = pb.add_region("outer");
        let inner = pb.add_region("inner");
        pb.rank(0)
            .enter(outer)
            .compute(1.0)
            .enter(inner)
            .compute(0.25)
            .leave(inner)
            .compute(2.0)
            .leave(outer)
            .compute(10.0); // outside any region
        pb.rank(1).enter(outer).compute(4.0).leave(outer).barrier();
        pb.rank(0).barrier();
        pb.build().unwrap()
    }

    #[test]
    fn compute_accessors_attribute_to_innermost_region() {
        let p = two_region_program();
        assert_eq!(p.compute_seconds(), vec![13.25, 4.0]);
        assert_eq!(p.region_compute_seconds(RegionId::new(0)), vec![3.0, 4.0]);
        assert_eq!(p.region_compute_seconds(RegionId::new(1)), vec![0.25, 0.0]);
    }

    #[test]
    fn collective_calls_take_the_max_payload() {
        let mut pb = ProgramBuilder::new(2);
        pb.rank(0).reduce(8).barrier();
        pb.rank(1).reduce(64).barrier();
        let p = pb.build().unwrap();
        assert_eq!(
            p.collective_calls(),
            vec![(CollectiveKind::Reduce, 64), (CollectiveKind::Barrier, 0)]
        );
    }

    #[test]
    fn region_compute_scaling_is_region_local() {
        let p = two_region_program();
        let scaled = p
            .with_region_compute_scaled(RegionId::new(0), &[0.5, 1.5])
            .unwrap();
        assert_eq!(
            scaled.region_compute_seconds(RegionId::new(0)),
            vec![1.5, 6.0]
        );
        // Nested and out-of-region compute are untouched.
        assert_eq!(
            scaled.region_compute_seconds(RegionId::new(1)),
            vec![0.25, 0.0]
        );
        assert_eq!(scaled.compute_seconds(), vec![0.25 + 1.5 + 10.0, 6.0]);
        assert!(matches!(
            p.with_region_compute_scaled(RegionId::new(0), &[1.0, f64::NAN]),
            Err(SimError::InvalidWork { .. })
        ));
    }
}
