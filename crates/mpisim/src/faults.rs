//! Deterministic fault injection for the simulated machine.
//!
//! A [`FaultPlan`] is a seeded, declarative description of the
//! perturbations one run suffers: per-rank slowdown windows, transient
//! per-link degradation, message loss with retry/timeout/exponential-
//! backoff semantics at the simulated MPI transport, and rank crashes
//! that truncate the crashed rank's trace. Plans are pure data — every
//! stochastic decision (does message `k` on channel `(src, dst)` lose
//! its `a`-th transmission attempt?) is a hash of the plan seed and the
//! message's logical coordinates, never of wall-clock state — so the
//! same plan perturbs the same program identically on every run, on
//! both execution engines, and at every worker-thread count.
//!
//! Injection points (see DESIGN.md, "Fault model", for the full
//! determinism argument):
//!
//! * **Slowdown windows** stretch `Op::Compute` durations by piecewise
//!   integration: inside `[start, end)` the rank computes at `1/factor`
//!   of its configured speed.
//! * **Link degradation** multiplies a directed link's latency and
//!   divides its bandwidth while the transfer *starts* inside
//!   `[start, end)`.
//! * **Message loss** charges each lost transmission attempt a timeout
//!   of `timeout · backoff^attempt` before the retransmission; after
//!   `max_retries` lost attempts the final attempt always succeeds, so
//!   loss perturbs timing without introducing artificial deadlocks.
//! * **Crashes** halt a rank at the first op boundary at or after its
//!   local clock reaches the crash time; events already recorded stay,
//!   so the rank's trace is truncated (possibly mid-region) and the
//!   analysis layers must salvage it (`limba_trace::reduce_checked`).
//!
//! Plans can be built programmatically ([`FaultPlan::new`] and the
//! `with_*` methods) or parsed from a small TOML subset
//! ([`FaultPlan::parse_toml`]) — the format `limba simulate --faults`
//! accepts.

use crate::SimError;

/// A compute slowdown applied to one rank inside a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownWindow {
    /// Rank being slowed.
    pub rank: usize,
    /// Window start (seconds, inclusive).
    pub start: f64,
    /// Window end (seconds, exclusive).
    pub end: f64,
    /// Compute-duration multiplier inside the window (> 1 slows).
    pub factor: f64,
}

/// Transient degradation of one directed link inside a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Sending rank of the degraded link.
    pub src: usize,
    /// Receiving rank of the degraded link.
    pub dst: usize,
    /// Window start (seconds, inclusive).
    pub start: f64,
    /// Window end (seconds, exclusive).
    pub end: f64,
    /// Multiplier on the link's latency (≥ 1 degrades).
    pub latency_factor: f64,
    /// Divisor on the link's bandwidth (≥ 1 degrades).
    pub bandwidth_factor: f64,
}

/// Probabilistic message loss on matching channels, with the transport's
/// retry semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageLoss {
    /// Only messages from this rank are affected (`None` = any sender).
    pub src: Option<usize>,
    /// Only messages to this rank are affected (`None` = any receiver).
    pub dst: Option<usize>,
    /// Per-attempt loss probability in `[0, 1)`.
    pub rate: f64,
    /// Maximum retransmissions; the attempt after the last retry always
    /// succeeds, so programs never deadlock on lost messages.
    pub max_retries: u32,
    /// Base retransmission timeout in seconds.
    pub timeout: f64,
    /// Exponential backoff multiplier per retry (≥ 1).
    pub backoff: f64,
}

/// A fail-stop crash of one rank at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crash {
    /// The rank that crashes.
    pub rank: usize,
    /// Local time at or after which the rank executes no further ops.
    pub time: f64,
}

/// A seeded, deterministic description of the faults one run suffers.
///
/// The default plan is empty and injects nothing; running with an empty
/// plan is bit-identical to running without one.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the per-message loss decisions.
    pub seed: u64,
    /// Compute slowdown windows.
    pub slowdowns: Vec<SlowdownWindow>,
    /// Transient link degradations.
    pub links: Vec<LinkFault>,
    /// Message-loss specs; the first spec matching a channel applies.
    pub losses: Vec<MessageLoss>,
    /// Rank crashes (at most one per rank).
    pub crashes: Vec<Crash>,
}

impl FaultPlan {
    /// Creates an empty plan with the given loss-decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a compute slowdown window.
    pub fn with_slowdown(mut self, rank: usize, start: f64, end: f64, factor: f64) -> Self {
        self.slowdowns.push(SlowdownWindow {
            rank,
            start,
            end,
            factor,
        });
        self
    }

    /// Adds a transient degradation of the directed link `src → dst`.
    pub fn with_link_fault(
        mut self,
        src: usize,
        dst: usize,
        start: f64,
        end: f64,
        latency_factor: f64,
        bandwidth_factor: f64,
    ) -> Self {
        self.links.push(LinkFault {
            src,
            dst,
            start,
            end,
            latency_factor,
            bandwidth_factor,
        });
        self
    }

    /// Adds a message-loss spec affecting every channel.
    pub fn with_message_loss(
        mut self,
        rate: f64,
        max_retries: u32,
        timeout: f64,
        backoff: f64,
    ) -> Self {
        self.losses.push(MessageLoss {
            src: None,
            dst: None,
            rate,
            max_retries,
            timeout,
            backoff,
        });
        self
    }

    /// Adds a message-loss spec restricted to one channel side (or both).
    pub fn with_link_loss(
        mut self,
        src: Option<usize>,
        dst: Option<usize>,
        rate: f64,
        max_retries: u32,
        timeout: f64,
        backoff: f64,
    ) -> Self {
        self.losses.push(MessageLoss {
            src,
            dst,
            rate,
            max_retries,
            timeout,
            backoff,
        });
        self
    }

    /// Adds a fail-stop crash of `rank` at local time `time`.
    pub fn with_crash(mut self, rank: usize, time: f64) -> Self {
        self.crashes.push(Crash { rank, time });
        self
    }

    /// Returns `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.slowdowns.is_empty()
            && self.links.is_empty()
            && self.losses.is_empty()
            && self.crashes.is_empty()
    }

    /// Returns a copy of the plan with a different loss-decision seed —
    /// the knob replication sweeps turn to vary the loss pattern while
    /// keeping the deterministic slowdowns and crashes fixed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the plan against a machine of `ranks` ranks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFaultPlan`] when a fault references a
    /// rank outside the machine, a window is empty or non-finite, a
    /// factor is not positive, a loss rate falls outside `[0, 1)`, two
    /// slowdown windows of the same rank overlap, or a rank crashes
    /// twice.
    pub fn validate(&self, ranks: usize) -> Result<(), SimError> {
        let bad = |detail: String| Err(SimError::InvalidFaultPlan { detail });
        let check_rank = |what: &str, rank: usize| {
            if rank >= ranks {
                Err(SimError::InvalidFaultPlan {
                    detail: format!("{what} references rank {rank}, machine has {ranks}"),
                })
            } else {
                Ok(())
            }
        };
        let finite_window = |what: &str, start: f64, end: f64| {
            if !(start.is_finite() && end.is_finite() && start >= 0.0 && end > start) {
                Err(SimError::InvalidFaultPlan {
                    detail: format!("{what} window [{start}, {end}) is not a valid time window"),
                })
            } else {
                Ok(())
            }
        };
        for s in &self.slowdowns {
            check_rank("slowdown", s.rank)?;
            finite_window("slowdown", s.start, s.end)?;
            if !(s.factor.is_finite() && s.factor > 0.0) {
                return bad(format!("slowdown factor {} must be positive", s.factor));
            }
        }
        // Overlapping windows on one rank would make the piecewise
        // integration order-dependent; reject them outright.
        for (i, a) in self.slowdowns.iter().enumerate() {
            for b in &self.slowdowns[i + 1..] {
                if a.rank == b.rank && a.start < b.end && b.start < a.end {
                    return bad(format!(
                        "slowdown windows [{}, {}) and [{}, {}) overlap on rank {}",
                        a.start, a.end, b.start, b.end, a.rank
                    ));
                }
            }
        }
        for l in &self.links {
            check_rank("link fault", l.src)?;
            check_rank("link fault", l.dst)?;
            finite_window("link fault", l.start, l.end)?;
            if !(l.latency_factor.is_finite() && l.latency_factor > 0.0) {
                return bad(format!(
                    "link latency factor {} must be positive",
                    l.latency_factor
                ));
            }
            if !(l.bandwidth_factor.is_finite() && l.bandwidth_factor > 0.0) {
                return bad(format!(
                    "link bandwidth factor {} must be positive",
                    l.bandwidth_factor
                ));
            }
        }
        for l in &self.losses {
            if let Some(src) = l.src {
                check_rank("message loss", src)?;
            }
            if let Some(dst) = l.dst {
                check_rank("message loss", dst)?;
            }
            if !(l.rate.is_finite() && (0.0..1.0).contains(&l.rate)) {
                return bad(format!("loss rate {} must lie in [0, 1)", l.rate));
            }
            if !(l.timeout.is_finite() && l.timeout > 0.0) {
                return bad(format!("loss timeout {} must be positive", l.timeout));
            }
            if !(l.backoff.is_finite() && l.backoff >= 1.0) {
                return bad(format!("loss backoff {} must be at least 1", l.backoff));
            }
        }
        for c in &self.crashes {
            check_rank("crash", c.rank)?;
            if !(c.time.is_finite() && c.time >= 0.0) {
                return bad(format!(
                    "crash time {} must be finite and non-negative",
                    c.time
                ));
            }
        }
        for (i, a) in self.crashes.iter().enumerate() {
            if self.crashes[i + 1..].iter().any(|b| b.rank == a.rank) {
                return bad(format!("rank {} crashes more than once", a.rank));
            }
        }
        Ok(())
    }

    /// Parses a plan from the TOML subset `limba simulate --faults`
    /// accepts: an optional top-level `seed`, then any number of
    /// `[[slowdown]]`, `[[link]]`, `[[loss]]`, and `[[crash]]` tables
    /// with `key = value` numeric entries. `#` starts a comment.
    ///
    /// ```
    /// let plan = limba_mpisim::FaultPlan::parse_toml(r#"
    ///     seed = 7
    ///     [[slowdown]]
    ///     rank = 3
    ///     start = 0.5
    ///     end = 2.0
    ///     factor = 4.0
    ///     [[crash]]
    ///     rank = 1
    ///     time = 1.5
    /// "#).unwrap();
    /// assert_eq!(plan.slowdowns.len(), 1);
    /// assert_eq!(plan.crashes.len(), 1);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFaultPlan`] naming the offending line
    /// on syntax errors, unknown tables or keys, and missing fields.
    pub fn parse_toml(text: &str) -> Result<FaultPlan, SimError> {
        parse_toml(text)
    }

    /// Serializes the plan to the same TOML subset
    /// [`parse_toml`](FaultPlan::parse_toml) accepts. The encoding
    /// round-trips exactly: `parse_toml(&plan.to_toml())` reconstructs
    /// an equal plan (floats are printed with Rust's shortest
    /// round-trip formatting).
    pub fn to_toml(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "seed = {}", self.seed);
        for s in &self.slowdowns {
            let _ = writeln!(
                out,
                "\n[[slowdown]]\nrank = {}\nstart = {}\nend = {}\nfactor = {}",
                s.rank, s.start, s.end, s.factor
            );
        }
        for l in &self.links {
            let _ = writeln!(
                out,
                "\n[[link]]\nsrc = {}\ndst = {}\nstart = {}\nend = {}\n\
                 latency_factor = {}\nbandwidth_factor = {}",
                l.src, l.dst, l.start, l.end, l.latency_factor, l.bandwidth_factor
            );
        }
        for l in &self.losses {
            let _ = writeln!(out, "\n[[loss]]");
            if let Some(src) = l.src {
                let _ = writeln!(out, "src = {src}");
            }
            if let Some(dst) = l.dst {
                let _ = writeln!(out, "dst = {dst}");
            }
            let _ = writeln!(
                out,
                "rate = {}\nmax_retries = {}\ntimeout = {}\nbackoff = {}",
                l.rate, l.max_retries, l.timeout, l.backoff
            );
        }
        for c in &self.crashes {
            let _ = writeln!(out, "\n[[crash]]\nrank = {}\ntime = {}", c.rank, c.time);
        }
        out
    }
}

/// Which table a parsed `key = value` line belongs to.
#[derive(Clone, Copy, PartialEq)]
enum Section {
    Top,
    Slowdown,
    Link,
    Loss,
    Crash,
}

/// One table's accumulated fields, flushed when the next table opens.
#[derive(Default)]
struct Fields {
    entries: Vec<(String, f64)>,
}

impl Fields {
    fn get(&self, key: &str) -> Option<f64> {
        self.entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    fn require(&self, table: &str, key: &str, line: usize) -> Result<f64, SimError> {
        self.get(key).ok_or_else(|| SimError::InvalidFaultPlan {
            detail: format!("[[{table}]] ending before line {line} is missing `{key}`"),
        })
    }

    fn rank_field(&self, table: &str, key: &str, line: usize) -> Result<usize, SimError> {
        let v = self.require(table, key, line)?;
        if v.fract() != 0.0 || v < 0.0 {
            return Err(SimError::InvalidFaultPlan {
                detail: format!("[[{table}]] `{key}` must be a non-negative integer, got {v}"),
            });
        }
        Ok(v as usize)
    }
}

fn parse_toml(text: &str) -> Result<FaultPlan, SimError> {
    let err = |line: usize, detail: String| SimError::InvalidFaultPlan {
        detail: format!("line {line}: {detail}"),
    };
    let mut plan = FaultPlan::default();
    let mut section = Section::Top;
    let mut fields = Fields::default();

    // Flushes the open table into the plan when the next one starts.
    fn flush(
        plan: &mut FaultPlan,
        section: Section,
        fields: &Fields,
        line: usize,
    ) -> Result<(), SimError> {
        match section {
            Section::Top => {}
            Section::Slowdown => plan.slowdowns.push(SlowdownWindow {
                rank: fields.rank_field("slowdown", "rank", line)?,
                start: fields.require("slowdown", "start", line)?,
                end: fields.require("slowdown", "end", line)?,
                factor: fields.require("slowdown", "factor", line)?,
            }),
            Section::Link => plan.links.push(LinkFault {
                src: fields.rank_field("link", "src", line)?,
                dst: fields.rank_field("link", "dst", line)?,
                start: fields.require("link", "start", line)?,
                end: fields.require("link", "end", line)?,
                latency_factor: fields.get("latency_factor").unwrap_or(1.0),
                bandwidth_factor: fields.get("bandwidth_factor").unwrap_or(1.0),
            }),
            Section::Loss => plan.losses.push(MessageLoss {
                src: fields
                    .get("src")
                    .map(|_| fields.rank_field("loss", "src", line))
                    .transpose()?,
                dst: fields
                    .get("dst")
                    .map(|_| fields.rank_field("loss", "dst", line))
                    .transpose()?,
                rate: fields.require("loss", "rate", line)?,
                max_retries: fields.rank_field("loss", "max_retries", line)? as u32,
                timeout: fields.require("loss", "timeout", line)?,
                backoff: fields.get("backoff").unwrap_or(2.0),
            }),
            Section::Crash => plan.crashes.push(Crash {
                rank: fields.rank_field("crash", "rank", line)?,
                time: fields.require("crash", "time", line)?,
            }),
        }
        Ok(())
    }

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.split_once('#') {
            Some((code, _)) => code.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(table) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            flush(&mut plan, section, &fields, lineno)?;
            fields = Fields::default();
            section = match table.trim() {
                "slowdown" => Section::Slowdown,
                "link" => Section::Link,
                "loss" => Section::Loss,
                "crash" => Section::Crash,
                other => return Err(err(lineno, format!("unknown table [[{other}]]"))),
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got {line:?}")));
        };
        let (key, value) = (key.trim(), value.trim());
        let parsed: f64 = value
            .parse()
            .map_err(|_| err(lineno, format!("`{key}` value {value:?} is not a number")))?;
        match (section, key) {
            (Section::Top, "seed") => {
                if parsed.fract() != 0.0 || parsed < 0.0 {
                    return Err(err(
                        lineno,
                        "seed must be a non-negative integer".to_string(),
                    ));
                }
                plan.seed = parsed as u64;
            }
            (Section::Top, other) => {
                return Err(err(lineno, format!("unknown top-level key `{other}`")))
            }
            _ => fields.entries.push((key.to_string(), parsed)),
        }
    }
    flush(&mut plan, section, &fields, text.lines().count() + 1)?;
    Ok(plan)
}

/// Report of what a fault plan actually did to one run. Attached to
/// every [`SimOutput`](crate::SimOutput); empty (the default) for runs
/// without faults. Both engines produce identical reports for the same
/// plan — the equivalence harness compares them alongside traces and
/// statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultReport {
    /// Ranks that crashed, `(rank, local time of the crash)`, ascending
    /// by rank. The crash time is the rank's clock when it halted, which
    /// is at or after the planned time (ops are atomic).
    pub crashes: Vec<(usize, f64)>,
    /// Ranks that could not finish because a crashed rank never produced
    /// a message or collective arrival they were waiting on. Ascending.
    pub interrupted: Vec<usize>,
    /// Total lost transmission attempts across all messages.
    pub dropped_attempts: u64,
    /// Messages that needed at least one retransmission.
    pub retried_messages: u64,
}

impl FaultReport {
    /// Returns `true` when no fault visibly affected the run's
    /// completion (timing perturbations may still have occurred).
    pub fn is_clean(&self) -> bool {
        self.crashes.is_empty()
            && self.interrupted.is_empty()
            && self.dropped_attempts == 0
            && self.retried_messages == 0
    }

    /// Ranks whose traces are truncated: crashed plus interrupted.
    pub fn incomplete_ranks(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.crashes.iter().map(|&(r, _)| r).collect();
        out.extend(self.interrupted.iter().copied());
        out.sort_unstable();
        out
    }
}

/// SplitMix64 finalizer: the bit mixer behind every loss decision (and,
/// via [`crate::balance`], every balancing tie-break).
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform `[0, 1)` value for attempt `attempt` of message `seq` on
/// channel `(src, dst)` under `seed`. A pure function of its arguments:
/// the source of all loss determinism.
fn loss_unit(seed: u64, src: usize, dst: usize, seq: u64, attempt: u32) -> f64 {
    let mut h = mix(seed ^ 0x9e37_79b9_7f4a_7c15);
    h = mix(h ^ (src as u64).wrapping_mul(0xff51_afd7_ed55_8ccd));
    h = mix(h ^ (dst as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53));
    h = mix(h ^ seq);
    h = mix(h ^ u64::from(attempt));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-run mutable fault state shared (in structure, not instance) by
/// both engines. All methods are pure functions of the plan and the
/// per-channel message sequence counters; the counters advance in
/// channel-FIFO order, which both engines execute identically, so the
/// two engines observe identical fault decisions.
#[derive(Debug)]
pub(crate) struct FaultState {
    seed: u64,
    /// Per-rank slowdown windows `(start, end, factor)` sorted by start.
    slow: Vec<Vec<(f64, f64, f64)>>,
    /// Link faults, scanned linearly (plans are small).
    links: Vec<LinkFault>,
    /// Loss specs in plan order; first match wins.
    losses: Vec<MessageLoss>,
    /// Planned crash time per rank (`INFINITY` = never).
    crash_at: Vec<f64>,
    /// Actual crash time per rank, recorded at the halting op boundary.
    crashed: Vec<Option<f64>>,
    /// Next message sequence number per live channel, keyed
    /// `src * n + dst`. Sparse: a channel occupies a slot only once it
    /// carries a message, so this is O(live channels) where the dense
    /// table it replaced was a calloc'd 8·n² bytes.
    seq: crate::arena::SparseMap<u64>,
    n: usize,
    /// Running totals for the [`FaultReport`].
    pub dropped_attempts: u64,
    pub retried_messages: u64,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan, n: usize) -> Self {
        let mut slow: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); n];
        for s in &plan.slowdowns {
            slow[s.rank].push((s.start, s.end, s.factor));
        }
        for windows in &mut slow {
            windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        let mut crash_at = vec![f64::INFINITY; n];
        for c in &plan.crashes {
            crash_at[c.rank] = c.time;
        }
        FaultState {
            seed: plan.seed,
            slow,
            links: plan.links.clone(),
            losses: plan.losses.clone(),
            crash_at,
            crashed: vec![None; n],
            seq: crate::arena::SparseMap::new(),
            n,
            dropped_attempts: 0,
            retried_messages: 0,
        }
    }

    /// Should `rank` halt before executing an op at local time `now`?
    pub(crate) fn should_crash(&self, rank: usize, now: f64) -> bool {
        now >= self.crash_at[rank]
    }

    /// The planned crash time of `rank`, `INFINITY` when none — the
    /// engines' streak loops hoist this so the per-op crash check is a
    /// single clock compare.
    pub(crate) fn crash_time(&self, rank: usize) -> f64 {
        self.crash_at[rank]
    }

    /// Records the halting time of a crashed rank (idempotent).
    pub(crate) fn record_crash(&mut self, rank: usize, now: f64) {
        self.crashed[rank].get_or_insert(now);
    }

    /// `true` when `rank` has already halted.
    pub(crate) fn has_crashed(&self, rank: usize) -> bool {
        self.crashed[rank].is_some()
    }

    /// `true` when any rank has halted — the condition under which
    /// quiescence means "interrupted run" instead of deadlock.
    pub(crate) fn any_crashed(&self) -> bool {
        self.crashed.iter().any(|c| c.is_some())
    }

    /// `true` when the plan schedules at least one crash. Constant for
    /// the life of the run; the engines hoist their per-op and per-pop
    /// crash checks behind it so crash-free fault plans (slowdowns,
    /// link faults, losses) pay nothing for them on the hot path.
    pub(crate) fn crash_planned(&self) -> bool {
        self.crash_at.iter().any(|t| t.is_finite())
    }

    /// End time of a compute burst of `duration` seconds starting at
    /// `begin` on `rank`, integrating piecewise through the rank's
    /// slowdown windows. Exact passthrough (`begin + duration`) when the
    /// rank has no windows.
    pub(crate) fn compute_end(&self, rank: usize, begin: f64, duration: f64) -> f64 {
        let windows = &self.slow[rank];
        if windows.is_empty() {
            return begin + duration;
        }
        let mut t = begin;
        let mut remaining = duration;
        for &(ws, we, f) in windows {
            if remaining <= 0.0 {
                break;
            }
            if we <= t {
                continue;
            }
            if ws > t {
                let free = ws - t;
                if remaining <= free {
                    return t + remaining;
                }
                remaining -= free;
                t = ws;
            }
            // Inside [t, we): progress at 1/f of nominal speed.
            let capacity = (we - t) / f;
            if remaining <= capacity {
                return t + remaining * f;
            }
            remaining -= capacity;
            t = we;
        }
        t + remaining
    }

    /// Adjusts a message's transfer time and latency for link faults
    /// active when the transfer starts at `at`, and adds the loss/retry
    /// delay for this channel's next message. Consumes one sequence
    /// number per call — call exactly once per delivered message, at
    /// its resolution point (eager push, or rendezvous match).
    pub(crate) fn message_costs(
        &mut self,
        src: usize,
        dst: usize,
        at: f64,
        transfer: f64,
        latency: f64,
    ) -> (f64, f64, f64) {
        let (mut transfer, mut latency) = (transfer, latency);
        for l in &self.links {
            if l.src == src && l.dst == dst && at >= l.start && at < l.end {
                latency *= l.latency_factor;
                transfer *= l.bandwidth_factor;
            }
        }
        let counter = self.seq.get_or_default((src * self.n + dst) as u64);
        let seq = *counter;
        *counter += 1;
        let mut delay = 0.0;
        if let Some(loss) = self
            .losses
            .iter()
            .find(|l| l.src.is_none_or(|s| s == src) && l.dst.is_none_or(|d| d == dst))
        {
            let mut attempt = 0u32;
            while attempt < loss.max_retries
                && loss_unit(self.seed, src, dst, seq, attempt) < loss.rate
            {
                delay += loss.timeout * loss.backoff.powi(attempt as i32);
                attempt += 1;
            }
            self.dropped_attempts += u64::from(attempt);
            if attempt > 0 {
                self.retried_messages += 1;
            }
        }
        (transfer, latency, delay)
    }

    /// Builds the report once the run reaches quiescence. `unfinished`
    /// yields every rank whose program did not complete (crashed ranks
    /// included); interrupted = unfinished minus crashed.
    pub(crate) fn report(&self, unfinished: impl Iterator<Item = usize>) -> FaultReport {
        let crashes: Vec<(usize, f64)> = self
            .crashed
            .iter()
            .enumerate()
            .filter_map(|(r, c)| c.map(|t| (r, t)))
            .collect();
        let interrupted: Vec<usize> = unfinished.filter(|&r| self.crashed[r].is_none()).collect();
        FaultReport {
            crashes,
            interrupted,
            dropped_attempts: self.dropped_attempts,
            retried_messages: self.retried_messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        plan.validate(4).unwrap();
    }

    #[test]
    fn builder_round_trip_and_validation() {
        let plan = FaultPlan::new(9)
            .with_slowdown(2, 0.5, 1.5, 3.0)
            .with_link_fault(0, 1, 0.0, 2.0, 4.0, 8.0)
            .with_message_loss(0.1, 3, 1e-3, 2.0)
            .with_crash(3, 1.0);
        plan.validate(4).unwrap();
        assert!(!plan.is_empty());
        // Out-of-range ranks are rejected.
        assert!(matches!(
            plan.validate(3),
            Err(SimError::InvalidFaultPlan { .. })
        ));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let bad = [
            FaultPlan::new(0).with_slowdown(0, 1.0, 1.0, 2.0), // empty window
            FaultPlan::new(0).with_slowdown(0, 0.0, 1.0, 0.0), // zero factor
            FaultPlan::new(0)
                .with_slowdown(0, 0.0, 2.0, 2.0)
                .with_slowdown(0, 1.0, 3.0, 2.0), // overlap
            FaultPlan::new(0).with_message_loss(1.0, 1, 1e-3, 2.0), // rate = 1
            FaultPlan::new(0).with_message_loss(0.5, 1, 0.0, 2.0), // zero timeout
            FaultPlan::new(0).with_message_loss(0.5, 1, 1e-3, 0.5), // backoff < 1
            FaultPlan::new(0).with_crash(0, f64::NAN),
            FaultPlan::new(0).with_crash(0, 1.0).with_crash(0, 2.0), // double crash
            FaultPlan::new(0).with_link_fault(0, 1, 0.0, 1.0, -1.0, 1.0),
        ];
        for plan in bad {
            assert!(
                matches!(plan.validate(4), Err(SimError::InvalidFaultPlan { .. })),
                "plan {plan:?} should be invalid"
            );
        }
    }

    #[test]
    fn compute_end_integrates_piecewise() {
        let plan = FaultPlan::new(0).with_slowdown(0, 1.0, 2.0, 4.0);
        let fs = FaultState::new(&plan, 1);
        // Entirely before the window: unchanged.
        assert_eq!(fs.compute_end(0, 0.0, 0.5), 0.5);
        // 0.5 s free + 0.5 s of work inside the window at 1/4 speed:
        // window holds 0.25 s of work per second, so 0.5 s of work needs
        // 2 s of window — more than the 1 s window has. Work done inside:
        // 0.25 s; remaining 0.25 s after the window → end 2.25.
        let end = fs.compute_end(0, 0.5, 1.0);
        assert!((end - 2.25).abs() < 1e-12, "end = {end}");
        // Starting inside the window.
        let end = fs.compute_end(0, 1.5, 0.1);
        assert!((end - 1.9).abs() < 1e-12, "end = {end}");
        // After the window: unchanged.
        assert_eq!(fs.compute_end(0, 3.0, 1.0), 4.0);
    }

    #[test]
    fn compute_end_without_windows_is_exact_passthrough() {
        let fs = FaultState::new(&FaultPlan::new(0), 2);
        for (t0, d) in [(0.0, 1.0), (0.1, 1e-6), (123.456, 0.0)] {
            assert_eq!(fs.compute_end(1, t0, d), t0 + d);
        }
    }

    #[test]
    fn loss_decisions_are_deterministic_and_capped() {
        let plan = FaultPlan::new(11).with_message_loss(0.9, 4, 1e-3, 2.0);
        let mut a = FaultState::new(&plan, 2);
        let mut b = FaultState::new(&plan, 2);
        for _ in 0..64 {
            assert_eq!(
                a.message_costs(0, 1, 0.0, 1e-4, 1e-5),
                b.message_costs(0, 1, 0.0, 1e-4, 1e-5)
            );
        }
        // At rate 0.9 with 64 messages, retries must have occurred and
        // every message's attempts are capped at max_retries.
        assert!(a.retried_messages > 0);
        assert!(a.dropped_attempts <= 4 * 64);
        // Backoff sums are reproducible from the counters alone.
        assert_eq!(a.dropped_attempts, b.dropped_attempts);
    }

    #[test]
    fn link_faults_apply_only_inside_their_window() {
        let plan = FaultPlan::new(0).with_link_fault(0, 1, 1.0, 2.0, 3.0, 5.0);
        let mut fs = FaultState::new(&plan, 2);
        let (t, l, d) = fs.message_costs(0, 1, 1.5, 1e-4, 1e-5);
        assert!((t - 5e-4).abs() < 1e-15);
        assert!((l - 3e-5).abs() < 1e-15);
        assert_eq!(d, 0.0);
        // Outside the window and on other links: untouched.
        assert_eq!(fs.message_costs(0, 1, 2.5, 1e-4, 1e-5), (1e-4, 1e-5, 0.0));
        assert_eq!(fs.message_costs(1, 0, 1.5, 1e-4, 1e-5), (1e-4, 1e-5, 0.0));
    }

    #[test]
    fn toml_round_trip_parses_all_tables() {
        let text = r#"
            # chaos scenario
            seed = 42

            [[slowdown]]
            rank = 2
            start = 0.25
            end = 1.75   # transient
            factor = 3.5

            [[link]]
            src = 0
            dst = 3
            start = 0.0
            end = 9.0
            latency_factor = 10.0
            bandwidth_factor = 4.0

            [[loss]]
            rate = 0.05
            max_retries = 4
            timeout = 0.001
            backoff = 2.0

            [[loss]]
            src = 1
            dst = 2
            rate = 0.5
            max_retries = 2
            timeout = 0.01

            [[crash]]
            rank = 3
            time = 2.5
        "#;
        let plan = FaultPlan::parse_toml(text).unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(
            plan.slowdowns,
            vec![SlowdownWindow {
                rank: 2,
                start: 0.25,
                end: 1.75,
                factor: 3.5
            }]
        );
        assert_eq!(plan.links.len(), 1);
        assert_eq!(plan.losses.len(), 2);
        assert_eq!(plan.losses[1].src, Some(1));
        assert_eq!(plan.losses[1].backoff, 2.0); // default
        assert_eq!(plan.crashes, vec![Crash { rank: 3, time: 2.5 }]);
        plan.validate(4).unwrap();
    }

    #[test]
    fn toml_serializer_round_trips_exactly() {
        // parse → serialize → parse: the reconstructed plan is equal,
        // including awkward floats and the optional loss endpoints.
        let text = r#"
            seed = 42
            [[slowdown]]
            rank = 2
            start = 0.1   # 0.1 is not exactly representable
            end = 1.7500000000000002
            factor = 3.5
            [[link]]
            src = 0
            dst = 3
            start = 0.0
            end = 9.0
            latency_factor = 10.0
            bandwidth_factor = 4.0
            [[loss]]
            rate = 0.05
            max_retries = 4
            timeout = 0.001
            [[loss]]
            src = 1
            dst = 2
            rate = 0.3333333333333333
            max_retries = 2
            timeout = 0.01
            backoff = 1.5
            [[crash]]
            rank = 3
            time = 2.5
        "#;
        let plan = FaultPlan::parse_toml(text).unwrap();
        let reparsed = FaultPlan::parse_toml(&plan.to_toml()).unwrap();
        assert_eq!(plan, reparsed, "to_toml drifted:\n{}", plan.to_toml());
        // And again from the builder side, plus the empty plan.
        let built = FaultPlan::new(7)
            .with_slowdown(0, 0.25, 0.75, 2.0)
            .with_link_loss(Some(0), None, 0.125, 3, 1e-3, 2.0)
            .with_crash(1, 1.5);
        assert_eq!(FaultPlan::parse_toml(&built.to_toml()).unwrap(), built);
        assert_eq!(
            FaultPlan::parse_toml(&FaultPlan::default().to_toml()).unwrap(),
            FaultPlan::default()
        );
    }

    #[test]
    fn toml_errors_name_the_line() {
        let err = FaultPlan::parse_toml("[[tornado]]")
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 1"), "{err}");
        let err = FaultPlan::parse_toml("seed = banana")
            .unwrap_err()
            .to_string();
        assert!(err.contains("not a number"), "{err}");
        let err = FaultPlan::parse_toml("[[crash]]\nrank = 0")
            .unwrap_err()
            .to_string();
        assert!(err.contains("missing `time`"), "{err}");
        let err = FaultPlan::parse_toml("just words").unwrap_err().to_string();
        assert!(err.contains("key = value"), "{err}");
    }

    #[test]
    fn fault_report_helpers() {
        let report = FaultReport {
            crashes: vec![(1, 0.5)],
            interrupted: vec![0, 3],
            dropped_attempts: 2,
            retried_messages: 1,
        };
        assert!(!report.is_clean());
        assert_eq!(report.incomplete_ranks(), vec![0, 1, 3]);
        assert!(FaultReport::default().is_clean());
    }
}
