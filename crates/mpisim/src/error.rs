//! Error type for the simulator.

use std::error::Error;
use std::fmt;

use limba_trace::TraceError;

/// Error raised while building programs or simulating them.
#[derive(Debug)]
pub enum SimError {
    /// The machine configuration was invalid.
    InvalidConfig {
        /// What was wrong.
        detail: String,
    },
    /// A program op referenced a rank outside the machine.
    RankOutOfRange {
        /// Offending rank.
        rank: usize,
        /// Machine size.
        ranks: usize,
    },
    /// A send targeted the sending rank itself.
    SelfMessage {
        /// The rank that tried to message itself.
        rank: usize,
    },
    /// A compute op carried a negative or non-finite duration.
    InvalidWork {
        /// The rejected value.
        value: f64,
    },
    /// A nonblocking request handle was misused (duplicate outstanding
    /// handle, wait without a request, or a request never waited on).
    BadHandle {
        /// The rank with the bad handle usage.
        rank: usize,
        /// The offending handle.
        handle: u32,
        /// What was wrong.
        detail: String,
    },
    /// The `k`-th collective calls of two ranks disagree.
    CollectiveMismatch {
        /// Index of the collective call.
        instance: usize,
        /// Description of the disagreement.
        detail: String,
    },
    /// A fault plan was malformed or referenced ranks outside the
    /// machine (see [`FaultPlan::validate`](crate::FaultPlan::validate)
    /// and [`FaultPlan::parse_toml`](crate::FaultPlan::parse_toml)).
    InvalidFaultPlan {
        /// What was wrong.
        detail: String,
    },
    /// A balance plan carried an out-of-range parameter or malformed
    /// TOML (see [`BalancePlan::validate`](crate::BalancePlan::validate)
    /// and [`BalancePlan::parse_toml`](crate::BalancePlan::parse_toml)).
    InvalidBalancePlan {
        /// What was wrong.
        detail: String,
    },
    /// No rank could make progress but the program is not finished.
    Deadlock {
        /// Human-readable state of every stuck rank.
        detail: String,
    },
    /// A replication's program builder failed (see
    /// [`Simulator::run_replications`](crate::Simulator::run_replications)).
    BuildFailed {
        /// What went wrong.
        detail: String,
    },
    /// The produced trace failed validation or reduction.
    Trace(TraceError),
    /// A run budget cut the simulation short (op-count or wall-clock
    /// deadline exceeded, or its cancellation token tripped — see
    /// [`RunBudget`](crate::RunBudget)). The run produced no output;
    /// re-running the same program without the budget reproduces the
    /// uninterrupted result exactly.
    Interrupted {
        /// Which limit fired and where.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { detail } => write!(f, "invalid machine config: {detail}"),
            SimError::RankOutOfRange { rank, ranks } => {
                write!(f, "rank {rank} out of range for machine of {ranks} ranks")
            }
            SimError::SelfMessage { rank } => write!(f, "rank {rank} cannot message itself"),
            SimError::InvalidWork { value } => {
                write!(
                    f,
                    "compute work must be finite and non-negative, got {value}"
                )
            }
            SimError::BadHandle {
                rank,
                handle,
                detail,
            } => {
                write!(f, "rank {rank} misused request handle {handle}: {detail}")
            }
            SimError::CollectiveMismatch { instance, detail } => {
                write!(
                    f,
                    "collective call #{instance} mismatched across ranks: {detail}"
                )
            }
            SimError::InvalidFaultPlan { detail } => {
                write!(f, "invalid fault plan: {detail}")
            }
            SimError::InvalidBalancePlan { detail } => {
                write!(f, "invalid balance plan: {detail}")
            }
            SimError::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            SimError::BuildFailed { detail } => {
                write!(f, "replication program build failed: {detail}")
            }
            SimError::Trace(e) => write!(f, "trace handling failed: {e}"),
            SimError::Interrupted { detail } => write!(f, "run interrupted: {detail}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Deadlock {
            detail: "rank 0 waiting on recv from 1".into(),
        };
        assert!(e.to_string().contains("deadlock"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
