//! Flat arena structures backing the simulator's hot state.
//!
//! Everything here exists to make engine memory scale
//! O(ranks + live channels + outstanding ops) instead of O(ranks²):
//!
//! * [`SparseMap`] — an open-addressed hash table from `u64` keys to
//!   small `Copy` values, probed with a SplitMix64-mixed key. It
//!   replaces the dense `src * n + dst` channel index (4·n² bytes
//!   before the first op executed) and the dense per-channel fault
//!   sequence table (8·n² bytes). Only channels that actually carry a
//!   message ever occupy a slot, so a 64k-rank nearest-neighbour
//!   program allocates a few hundred kilobytes where the dense tables
//!   needed tens of gigabytes.
//! * [`HandleArena`] — outstanding nonblocking requests of all ranks
//!   pooled in one free-listed entry arena threaded by per-rank
//!   intrusive lists, so per-rank `Vec`s (one allocation per rank that
//!   ever posts a request) collapse into a single growable block.
//!
//! Both structures are deterministic: lookups are pure functions of the
//! keys, nothing ever iterates a table in probe order, and the values
//! stored are bit-identical to what the dense structures held — which
//! is what keeps the event engine's output byte-equal to the polling
//! reference after the swap.

/// Sentinel for an unoccupied [`SparseMap`] slot. Keys are channel
/// indices or similar small products, so `u64::MAX` can never collide
/// with a real key (debug-asserted on insert).
const EMPTY_KEY: u64 = u64::MAX;

/// Sentinel link terminating a [`HandleArena`] list.
const NIL: u32 = u32::MAX;

/// The SplitMix64 finalizer: the same mixing function the fault layer
/// uses for loss decisions, reused here to spread structured keys
/// (`src * n + dst` products) uniformly over the table.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An open-addressed hash map from `u64` keys to `Copy` values with
/// linear probing, power-of-two capacity, and no deletion (the engine
/// never retires a live channel mid-run; the whole table drops with the
/// run). Starts empty — a run that never communicates allocates
/// nothing.
#[derive(Debug, Clone)]
pub(crate) struct SparseMap<V> {
    /// Slot keys; `EMPTY_KEY` marks a free slot. Length is always a
    /// power of two (or zero before first insert).
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
}

impl<V: Copy + Default> SparseMap<V> {
    pub(crate) fn new() -> Self {
        SparseMap {
            keys: Vec::new(),
            vals: Vec::new(),
            len: 0,
        }
    }

    /// Number of occupied slots (distinct keys ever inserted).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Index of `key`'s slot, or of the empty slot where it would go.
    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        debug_assert!(!self.keys.is_empty());
        let mask = self.keys.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        loop {
            let k = self.keys[i];
            if k == key || k == EMPTY_KEY {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    pub(crate) fn get(&self, key: u64) -> Option<V> {
        if self.keys.is_empty() {
            return None;
        }
        let i = self.slot_of(key);
        if self.keys[i] == key {
            Some(self.vals[i])
        } else {
            None
        }
    }

    /// Empties the map while keeping its table for reuse: all slots
    /// return to `EMPTY_KEY`, so lookups and inserts behave exactly as
    /// on a fresh map (stale values are unreachable once their keys
    /// are gone, and nothing ever iterates slots in probe order).
    pub(crate) fn clear(&mut self) {
        self.keys.fill(EMPTY_KEY);
        self.len = 0;
    }

    /// Inserts or overwrites `key`.
    pub(crate) fn insert(&mut self, key: u64, value: V) {
        debug_assert_ne!(key, EMPTY_KEY, "sentinel key");
        self.grow_if_needed();
        let i = self.slot_of(key);
        if self.keys[i] == EMPTY_KEY {
            self.keys[i] = key;
            self.len += 1;
        }
        self.vals[i] = value;
    }

    /// Mutable reference to `key`'s value, inserting the default first
    /// when the key is new.
    pub(crate) fn get_or_default(&mut self, key: u64) -> &mut V {
        debug_assert_ne!(key, EMPTY_KEY, "sentinel key");
        self.grow_if_needed();
        let i = self.slot_of(key);
        if self.keys[i] == EMPTY_KEY {
            self.keys[i] = key;
            self.vals[i] = V::default();
            self.len += 1;
        }
        &mut self.vals[i]
    }

    /// Keeps the load factor at or below 3/4, rehashing into a doubled
    /// table when an insert would cross it.
    fn grow_if_needed(&mut self) {
        if self.keys.is_empty() {
            self.keys = vec![EMPTY_KEY; 16];
            self.vals = vec![V::default(); 16];
            return;
        }
        if (self.len + 1) * 4 <= self.keys.len() * 3 {
            return;
        }
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        let cap = old_keys.len() * 2;
        self.keys = vec![EMPTY_KEY; cap];
        self.vals = vec![V::default(); cap];
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY_KEY {
                let i = self.slot_of(k);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }
}

/// Rank count at or below which [`ChannelIndex`] routes through a
/// direct-indexed dense table instead of a [`SparseMap`]. The dense
/// table is `4·n²` bytes — at this bound, 256 KiB, a cache-resident
/// constant — and turns the per-message lookup into a single indexed
/// load, which is what the throughput benchmarks at 16–256 ranks are
/// paced by. Above the bound the table would grow quadratically, so
/// routing switches to the sparse map and memory stays
/// O(live channels).
const DENSE_ROUTING_MAX_RANKS: usize = 256;

/// Routing table from dense channel key `src * n + dst` to a slot in
/// the engine's channel pool. Adaptive representation: machines up to
/// [`DENSE_ROUTING_MAX_RANKS`] ranks use a direct table (bounded at
/// 256 KiB, single-load lookups; stored as `slot + 1` with 0 = never
/// used, so the table is a calloc'd zero-fill whose pages are never
/// touched for channels the communication pattern skips), larger
/// machines an open-addressed [`SparseMap`] (O(live channels)
/// memory). The dense table is itself allocated only at the first
/// insert — a program that never sends a message pays nothing, and
/// `get` on the empty table falls out of the bounds check. Both
/// representations are pure functions of the key, so routing cannot
/// diverge between engines — or between rank counts straddling the
/// threshold.
#[derive(Debug)]
pub(crate) enum ChannelIndex {
    /// `slots[ch]` is the pool slot plus one; 0 marks a channel that
    /// has never carried a message. Empty until the first insert;
    /// `ranks` remembers the table side length for that allocation.
    Dense {
        slots: Vec<u32>,
        ranks: usize,
    },
    Sparse(SparseMap<u32>),
}

impl ChannelIndex {
    pub(crate) fn new(ranks: usize) -> Self {
        if ranks <= DENSE_ROUTING_MAX_RANKS {
            ChannelIndex::Dense {
                slots: Vec::new(),
                ranks,
            }
        } else {
            ChannelIndex::Sparse(SparseMap::new())
        }
    }

    /// Restores the freshly-constructed state for a machine of `ranks`
    /// ranks, keeping whatever backing table the previous run grew when
    /// the representation tier matches (the dense table refills lazily
    /// from its cleared, capacity-retaining vector; the sparse map
    /// clears in place).
    pub(crate) fn reset(&mut self, ranks: usize) {
        match self {
            ChannelIndex::Dense { slots, ranks: r } if ranks <= DENSE_ROUTING_MAX_RANKS => {
                slots.clear();
                *r = ranks;
            }
            ChannelIndex::Sparse(map) if ranks > DENSE_ROUTING_MAX_RANKS => map.clear(),
            other => *other = ChannelIndex::new(ranks),
        }
    }

    /// The pool slot of channel `ch`, if one was ever assigned.
    #[inline]
    pub(crate) fn get(&self, ch: usize) -> Option<u32> {
        match self {
            ChannelIndex::Dense { slots, .. } => slots.get(ch)?.checked_sub(1),
            ChannelIndex::Sparse(map) => map.get(ch as u64),
        }
    }

    /// Assigns pool slot `slot` to channel `ch`.
    pub(crate) fn insert(&mut self, ch: usize, slot: u32) {
        debug_assert_ne!(slot, u32::MAX, "sentinel slot");
        match self {
            ChannelIndex::Dense { slots, ranks } => {
                if slots.is_empty() {
                    slots.resize(*ranks * *ranks, 0);
                }
                slots[ch] = slot + 1;
            }
            ChannelIndex::Sparse(map) => map.insert(ch as u64, slot),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct HandleEntry<V> {
    handle: u32,
    value: V,
    /// Next entry of the same rank, or [`NIL`].
    next: u32,
}

/// All ranks' outstanding nonblocking requests in one free-listed
/// arena. Each rank owns an intrusive singly-linked list threaded
/// through [`HandleEntry::next`]; removed entries return to a free list
/// for reuse, so the arena's high-water mark is the peak number of
/// simultaneously outstanding requests across the whole run — not the
/// rank count, and not the total request count.
#[derive(Debug)]
pub(crate) struct HandleArena<V> {
    entries: Vec<HandleEntry<V>>,
    /// Head of each rank's list ([`NIL`] = none outstanding). Grown
    /// lazily to the highest rank that ever registers a request, so
    /// programs without nonblocking ops allocate nothing here.
    heads: Vec<u32>,
    /// Head of the free list ([`NIL`] = arena full).
    free: u32,
}

impl<V: Copy> HandleArena<V> {
    pub(crate) fn new() -> Self {
        HandleArena {
            entries: Vec::new(),
            heads: Vec::new(),
            free: NIL,
        }
    }

    /// Empties the arena while keeping both backing vectors for reuse
    /// — the freshly-constructed state with capacity retained.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.heads.clear();
        self.free = NIL;
    }

    /// Head of `rank`'s list; ranks beyond the lazily grown table have
    /// no outstanding requests by construction.
    fn head(&self, rank: usize) -> u32 {
        self.heads.get(rank).copied().unwrap_or(NIL)
    }

    /// Registers `handle` for `rank`. Handle uniqueness per rank is the
    /// program builder's invariant ([`crate::SimError::BadHandle`]), so
    /// no duplicate check is repeated here.
    pub(crate) fn insert(&mut self, rank: usize, handle: u32, value: V) {
        if self.heads.len() <= rank {
            self.heads.resize(rank + 1, NIL);
        }
        let entry = HandleEntry {
            handle,
            value,
            next: self.heads[rank],
        };
        let index = if self.free != NIL {
            let i = self.free as usize;
            self.free = self.entries[i].next;
            self.entries[i] = entry;
            i
        } else {
            self.entries.push(entry);
            self.entries.len() - 1
        };
        self.heads[rank] = index as u32;
    }

    /// The outstanding request `handle` of `rank`, if registered.
    pub(crate) fn get(&self, rank: usize, handle: u32) -> Option<V> {
        let mut i = self.head(rank);
        while i != NIL {
            let e = &self.entries[i as usize];
            if e.handle == handle {
                return Some(e.value);
            }
            i = e.next;
        }
        None
    }

    /// Unregisters `handle` of `rank`, returning its entry to the free
    /// list. Returns whether the handle was present.
    pub(crate) fn remove(&mut self, rank: usize, handle: u32) -> bool {
        let mut prev = NIL;
        let mut i = self.head(rank);
        while i != NIL {
            let e = self.entries[i as usize];
            if e.handle == handle {
                if prev == NIL {
                    self.heads[rank] = e.next;
                } else {
                    self.entries[prev as usize].next = e.next;
                }
                self.entries[i as usize].next = self.free;
                self.free = i;
                return true;
            }
            prev = i;
            i = e.next;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_map_round_trips_values() {
        let mut m: SparseMap<u32> = SparseMap::new();
        assert_eq!(m.get(7), None);
        assert_eq!(m.len(), 0);
        for i in 0..1000u64 {
            m.insert(i * 65_537, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i * 65_537), Some(i as u32), "key {i}");
        }
        assert_eq!(m.get(3), None);
    }

    #[test]
    fn sparse_map_overwrites_and_defaults() {
        let mut m: SparseMap<u64> = SparseMap::new();
        m.insert(42, 1);
        m.insert(42, 2);
        assert_eq!(m.get(42), Some(2));
        assert_eq!(m.len(), 1);
        *m.get_or_default(99) += 5;
        *m.get_or_default(99) += 5;
        assert_eq!(m.get(99), Some(10));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn sparse_map_survives_growth_with_clustered_keys() {
        // Sequential keys (worst case for a weak hash) across several
        // rehashes.
        let mut m: SparseMap<u64> = SparseMap::new();
        for k in 0..10_000u64 {
            m.insert(k, k * 3);
        }
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some(k * 3));
        }
    }

    #[test]
    fn channel_index_agrees_across_representations() {
        // The same insert/get sequence through both representations —
        // the threshold must never change what a lookup returns.
        let n = 16usize;
        let mut dense = ChannelIndex::new(n);
        let mut sparse = ChannelIndex::Sparse(SparseMap::new());
        assert!(matches!(dense, ChannelIndex::Dense { .. }));
        assert!(matches!(
            ChannelIndex::new(DENSE_ROUTING_MAX_RANKS + 1),
            ChannelIndex::Sparse(_)
        ));
        let channels = [0usize, 5, 17, n * n - 1, 42];
        for (slot, &ch) in channels.iter().enumerate() {
            assert_eq!(dense.get(ch), None);
            assert_eq!(sparse.get(ch), None);
            dense.insert(ch, slot as u32);
            sparse.insert(ch, slot as u32);
        }
        for (slot, &ch) in channels.iter().enumerate() {
            assert_eq!(dense.get(ch), Some(slot as u32));
            assert_eq!(sparse.get(ch), Some(slot as u32));
        }
        assert_eq!(dense.get(1), None);
        assert_eq!(sparse.get(1), None);
    }

    #[test]
    fn handle_arena_reuses_freed_entries() {
        let mut a: HandleArena<u64> = HandleArena::new();
        a.insert(0, 1, 10);
        a.insert(0, 2, 20);
        a.insert(3, 1, 30);
        assert_eq!(a.get(0, 1), Some(10));
        assert_eq!(a.get(0, 2), Some(20));
        assert_eq!(a.get(3, 1), Some(30));
        assert_eq!(a.get(1, 1), None);
        assert!(a.remove(0, 1));
        assert!(!a.remove(0, 1));
        assert_eq!(a.get(0, 1), None);
        assert_eq!(a.get(0, 2), Some(20));
        let before = a.entries.len();
        a.insert(2, 9, 90); // takes the freed slot
        assert_eq!(a.entries.len(), before);
        assert_eq!(a.get(2, 9), Some(90));
    }

    #[test]
    fn handle_arena_peak_is_outstanding_not_total() {
        let mut a: HandleArena<u8> = HandleArena::new();
        for round in 0..100u32 {
            a.insert(0, round, 0);
            assert!(a.remove(0, round));
        }
        assert_eq!(a.entries.len(), 1, "one slot recycled 100 times");
    }
}
