//! The original polling execution engine, preserved as the reference
//! implementation the event-driven core (see [`crate::engine`]) is
//! measured and equivalence-checked against.
//!
//! This is the engine as it stood before the event-driven rewrite —
//! `HashMap`-keyed channels, a growing collective-instance vector, an
//! unreserved trace buffer, and an O(rounds × n) scan that re-attempts
//! every rank each round — kept byte-for-byte where possible so the
//! bench runner's event-vs-polling comparison measures the rewrite, not
//! a strawman. The functional changes are the deadlock report, which
//! routes through the same capped formatter as the event engine so the
//! two produce identical diagnostics, and fault injection (see
//! [`crate::faults`]), which hooks the same op boundaries and cost
//! computations as the event engine so both honor a [`FaultPlan`]
//! bit-identically — faults are a first-class differential-testing
//! axis, not an event-engine-only feature.

use std::collections::{HashMap, VecDeque};

use limba_model::ActivityKind;
use limba_trace::{Event, TraceBuilder};

use crate::balance::{BalancePlan, BalanceReport, BalanceState, HostView};
use crate::collectives::collective_cost;
use crate::engine::{format_deadlock_detail, RunBudget, SimOutput, SimStats};
use crate::faults::{FaultPlan, FaultReport, FaultState};
use crate::{CollectiveKind, MachineConfig, Op, Program, SimError};

/// In-flight message on one `(src, dst)` channel.
#[derive(Debug, Clone, Copy)]
enum MsgInFlight {
    /// Sender already finished its side; payload arrives at `arrival`.
    Eager { arrival: f64, bytes: u64 },
    /// Sender is blocked waiting for the receiver (rendezvous protocol);
    /// it became ready at `sender_ready`.
    Rendezvous { sender_ready: f64, bytes: u64 },
}

/// Outstanding nonblocking request of one rank.
#[derive(Debug, Clone, Copy)]
enum Outstanding {
    /// Nonblocking send: the local buffer is free at this time.
    SendDone(f64),
    /// Nonblocking receive posted at this time, waiting for `src`.
    RecvPending { src: usize, posted: f64 },
}

#[derive(Debug, Clone, Default)]
struct RankState {
    pc: usize,
    time: f64,
    /// Set when a Recv was reached but could not complete (posted time).
    recv_posted: Option<f64>,
    /// Set when a Wait on a pending receive was reached but could not
    /// complete (the time the wait started).
    wait_started: Option<f64>,
    /// True when the current Send op is already queued as a rendezvous.
    send_registered: bool,
    /// Set when waiting inside a collective (arrival time).
    collective_arrived: Option<f64>,
    /// Number of collective calls completed so far.
    collective_counter: usize,
    /// Outstanding nonblocking requests by handle.
    handles: HashMap<u32, Outstanding>,
}

#[derive(Debug)]
struct CollectiveInstance {
    kind: CollectiveKind,
    max_bytes: u64,
    arrivals: Vec<Option<f64>>,
    arrived: usize,
}

/// Runs `program` on `config` with the original polling engine,
/// optionally under a fault plan, a balance plan, and/or an
/// interruption budget.
pub(crate) fn run(
    config: &MachineConfig,
    program: &Program,
    plan: Option<&FaultPlan>,
    balance: Option<&BalancePlan>,
    budget: Option<&RunBudget>,
) -> Result<SimOutput, SimError> {
    Polling {
        config,
        faults: None,
        balance: None,
        budget,
        ops_done: 0,
    }
    .run(program, plan, balance)
}

struct Polling<'a> {
    config: &'a MachineConfig,
    faults: Option<FaultState>,
    /// Active dynamic balancing — the same shared-state hook the event
    /// engine uses, mutated at the same compute-op boundaries in the
    /// same global order, so decisions and timings are bit-identical.
    balance: Option<BalanceState>,
    /// Interruption budget, `None` for unbudgeted runs — polled on the
    /// same executed-op cadence as the event engine, so op-count
    /// budgets fire on exactly the same programs on both engines.
    budget: Option<&'a RunBudget>,
    ops_done: u64,
}

impl Polling<'_> {
    /// The original scheduling loop, verbatim apart from the fault
    /// hooks (crash checks, quiescence-with-crash handling, and the
    /// fault report on the output).
    pub fn run(
        &mut self,
        program: &Program,
        plan: Option<&FaultPlan>,
        balance: Option<&BalancePlan>,
    ) -> Result<SimOutput, SimError> {
        self.config.validate()?;
        let p = self.config.processors();
        if program.ranks() > p {
            return Err(SimError::RankOutOfRange {
                rank: program.ranks() - 1,
                ranks: p,
            });
        }
        let n = program.ranks();
        self.faults = match plan {
            Some(plan) if !plan.is_empty() => {
                plan.validate(n)?;
                Some(FaultState::new(plan, n))
            }
            _ => None,
        };
        self.balance = match balance {
            Some(plan) => {
                plan.validate()?;
                Some(BalanceState::new(plan, n, self.config))
            }
            None => None,
        };

        let mut builder = TraceBuilder::new(n);
        for name in program.region_names() {
            builder.add_region(name.clone());
        }

        let mut states = vec![RankState::default(); n];
        let mut channels: HashMap<(usize, usize), VecDeque<MsgInFlight>> = HashMap::new();
        let mut collectives: Vec<CollectiveInstance> = Vec::new();
        let mut stats = SimStats {
            rank_end_times: vec![0.0; n],
            makespan: 0.0,
            messages: 0,
            bytes: 0,
            collectives: 0,
        };

        loop {
            let mut progress = false;
            for rank in 0..n {
                while self.step(
                    rank,
                    program,
                    &mut states,
                    &mut channels,
                    &mut collectives,
                    &mut builder,
                    &mut stats,
                )? {
                    progress = true;
                    if let Some(budget) = self.budget {
                        self.ops_done += 1;
                        if let Some(interrupted) = budget.check(self.ops_done) {
                            return Err(interrupted);
                        }
                    }
                }
            }
            if states
                .iter()
                .enumerate()
                .all(|(r, s)| s.pc >= program.ops(r).len())
            {
                break;
            }
            if !progress {
                // Quiescence with a crashed rank is an interrupted run
                // (survivors were waiting on the dead rank), not a
                // deadlock — mirror the event engine exactly.
                if self.faults.as_ref().is_some_and(|f| f.any_crashed()) {
                    break;
                }
                let detail = format_deadlock_detail(
                    program,
                    states
                        .iter()
                        .enumerate()
                        .filter(|(r, s)| s.pc < program.ops(*r).len())
                        .map(|(r, s)| (r, s.pc)),
                );
                return Err(SimError::Deadlock { detail });
            }
        }

        for (rank, s) in states.iter().enumerate() {
            stats.rank_end_times[rank] = s.time;
            stats.makespan = stats.makespan.max(s.time);
        }
        let faults = match &self.faults {
            Some(fs) => fs.report((0..n).filter(|&r| states[r].pc < program.ops(r).len())),
            None => FaultReport::default(),
        };
        let balance_report = match &self.balance {
            Some(bs) => bs.report(),
            None => BalanceReport::default(),
        };
        Ok(SimOutput {
            trace: builder.build(),
            stats,
            faults,
            balance: balance_report,
        })
    }

    /// Message transfer/latency/loss-delay for `src → dst` bytes with
    /// the transfer starting at `at` — the same hook the event engine
    /// uses, so fault decisions consume sequence numbers in the same
    /// channel-FIFO order on both engines.
    fn message_costs(&mut self, src: usize, dst: usize, at: f64, bytes: u64) -> (f64, f64, f64) {
        let transfer = self.config.link_transfer_time(src, dst, bytes);
        let latency = self.config.link_latency(src, dst);
        match &mut self.faults {
            None => (transfer, latency, 0.0),
            Some(fs) => fs.message_costs(src, dst, at, transfer, latency),
        }
    }

    /// Executes at most one op of `rank`. Returns `true` when progress was
    /// made (the op completed), `false` when the rank is blocked, done, or
    /// crashed.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        rank: usize,
        program: &Program,
        states: &mut [RankState],
        channels: &mut HashMap<(usize, usize), VecDeque<MsgInFlight>>,
        collectives: &mut Vec<CollectiveInstance>,
        builder: &mut TraceBuilder,
        stats: &mut SimStats,
    ) -> Result<bool, SimError> {
        let ops = program.ops(rank);
        if states[rank].pc >= ops.len() {
            return Ok(false);
        }
        // Crash check at the op boundary — same placement as the event
        // engine's `try_op`. A blocked rank's clock is frozen, so the
        // decision is stable across the polling re-attempts.
        if let Some(fs) = &mut self.faults {
            if fs.has_crashed(rank) {
                return Ok(false);
            }
            let now = states[rank].time;
            if fs.should_crash(rank, now) {
                fs.record_crash(rank, now);
                return Ok(false);
            }
        }
        let op = ops[states[rank].pc];
        let o = self.config.overhead();
        match op {
            Op::Compute { seconds } => {
                states[rank].time = match &mut self.balance {
                    // Same balancing hook as the event engine's try_op:
                    // the shared state integrates migration and fault
                    // timing identically on both engines.
                    Some(bs) => {
                        let host = HostView {
                            config: self.config,
                            faults: self.faults.as_ref(),
                        };
                        bs.compute(rank, states[rank].time, seconds, &host)
                    }
                    None => {
                        let duration = seconds / self.config.cpu_speed(rank);
                        match &self.faults {
                            None => states[rank].time + duration,
                            Some(fs) => fs.compute_end(rank, states[rank].time, duration),
                        }
                    }
                };
                states[rank].pc += 1;
                Ok(true)
            }
            Op::Enter { region } => {
                builder.push(Event::enter(states[rank].time, rank as u32, region));
                states[rank].pc += 1;
                Ok(true)
            }
            Op::Leave { region } => {
                builder.push(Event::leave(states[rank].time, rank as u32, region));
                states[rank].pc += 1;
                Ok(true)
            }
            Op::Send { dst, bytes } => {
                if bytes <= self.config.eager_threshold() {
                    let begin = states[rank].time;
                    let (transfer, latency, loss_delay) =
                        self.message_costs(rank, dst, begin, bytes);
                    let end = begin + o + transfer;
                    builder.push(Event::begin_activity(
                        begin,
                        rank as u32,
                        ActivityKind::PointToPoint,
                    ));
                    builder.push(Event::message_send(begin, rank as u32, dst as u32, bytes));
                    builder.push(Event::end_activity(
                        end,
                        rank as u32,
                        ActivityKind::PointToPoint,
                    ));
                    channels
                        .entry((rank, dst))
                        .or_default()
                        .push_back(MsgInFlight::Eager {
                            arrival: end + latency + loss_delay,
                            bytes,
                        });
                    states[rank].time = end;
                    states[rank].pc += 1;
                    stats.messages += 1;
                    stats.bytes += bytes;
                    Ok(true)
                } else {
                    if !states[rank].send_registered {
                        channels.entry((rank, dst)).or_default().push_back(
                            MsgInFlight::Rendezvous {
                                sender_ready: states[rank].time,
                                bytes,
                            },
                        );
                        states[rank].send_registered = true;
                    }
                    // Blocked until the receiver performs the match.
                    Ok(false)
                }
            }
            Op::Recv { src } => {
                let posted = *states[rank].recv_posted.get_or_insert(states[rank].time);
                let Some(queue) = channels.get_mut(&(src, rank)) else {
                    return Ok(false);
                };
                let Some(&head) = queue.front() else {
                    return Ok(false);
                };
                match head {
                    MsgInFlight::Eager { arrival, bytes } => {
                        queue.pop_front();
                        let end = (posted + o).max(arrival);
                        builder.push(Event::begin_activity(
                            posted,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        builder.push(Event::message_recv(end, rank as u32, src as u32, bytes));
                        builder.push(Event::end_activity(
                            end,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        states[rank].time = end;
                        states[rank].recv_posted = None;
                        states[rank].pc += 1;
                        Ok(true)
                    }
                    MsgInFlight::Rendezvous {
                        sender_ready,
                        bytes,
                    } => {
                        queue.pop_front();
                        let sync = posted.max(sender_ready);
                        let (transfer, latency, loss_delay) =
                            self.message_costs(src, rank, sync, bytes);
                        let sender_done = sync + o + transfer + loss_delay;
                        let recv_done = sender_done + latency;
                        // Complete the blocked sender's side.
                        builder.push(Event::begin_activity(
                            sender_ready,
                            src as u32,
                            ActivityKind::PointToPoint,
                        ));
                        builder.push(Event::message_send(
                            sender_ready,
                            src as u32,
                            rank as u32,
                            bytes,
                        ));
                        builder.push(Event::end_activity(
                            sender_done,
                            src as u32,
                            ActivityKind::PointToPoint,
                        ));
                        states[src].time = sender_done;
                        states[src].send_registered = false;
                        states[src].pc += 1;
                        // Complete the receive.
                        builder.push(Event::begin_activity(
                            posted,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        builder.push(Event::message_recv(
                            recv_done,
                            rank as u32,
                            src as u32,
                            bytes,
                        ));
                        builder.push(Event::end_activity(
                            recv_done,
                            rank as u32,
                            ActivityKind::PointToPoint,
                        ));
                        states[rank].time = recv_done;
                        states[rank].recv_posted = None;
                        states[rank].pc += 1;
                        stats.messages += 1;
                        stats.bytes += bytes;
                        Ok(true)
                    }
                }
            }
            Op::Isend { dst, bytes, handle } => {
                // Buffered nonblocking send: the NIC takes over; the
                // local buffer frees after the injection completes.
                let begin = states[rank].time;
                let (transfer, latency, loss_delay) = self.message_costs(rank, dst, begin, bytes);
                let issue = begin + o;
                let buffer_free = issue + transfer;
                builder.push(Event::begin_activity(
                    begin,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                builder.push(Event::message_send(begin, rank as u32, dst as u32, bytes));
                builder.push(Event::end_activity(
                    issue,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                channels
                    .entry((rank, dst))
                    .or_default()
                    .push_back(MsgInFlight::Eager {
                        arrival: buffer_free + latency + loss_delay,
                        bytes,
                    });
                states[rank]
                    .handles
                    .insert(handle, Outstanding::SendDone(buffer_free));
                states[rank].time = issue;
                states[rank].pc += 1;
                stats.messages += 1;
                stats.bytes += bytes;
                Ok(true)
            }
            Op::Irecv { src, handle } => {
                let begin = states[rank].time;
                let posted = begin + o;
                builder.push(Event::begin_activity(
                    begin,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                builder.push(Event::end_activity(
                    posted,
                    rank as u32,
                    ActivityKind::PointToPoint,
                ));
                states[rank]
                    .handles
                    .insert(handle, Outstanding::RecvPending { src, posted });
                states[rank].time = posted;
                states[rank].pc += 1;
                Ok(true)
            }
            Op::Wait { handle } => {
                let outstanding = *states[rank]
                    .handles
                    .get(&handle)
                    .expect("validated: handle outstanding");
                match outstanding {
                    Outstanding::SendDone(free) => {
                        let begin = states[rank].time;
                        let end = begin.max(free);
                        if end > begin {
                            builder.push(Event::begin_activity(
                                begin,
                                rank as u32,
                                ActivityKind::PointToPoint,
                            ));
                            builder.push(Event::end_activity(
                                end,
                                rank as u32,
                                ActivityKind::PointToPoint,
                            ));
                        }
                        states[rank].handles.remove(&handle);
                        states[rank].time = end;
                        states[rank].pc += 1;
                        Ok(true)
                    }
                    Outstanding::RecvPending { src, posted } => {
                        let begin = *states[rank].wait_started.get_or_insert(states[rank].time);
                        let Some(queue) = channels.get_mut(&(src, rank)) else {
                            return Ok(false);
                        };
                        let Some(&head) = queue.front() else {
                            return Ok(false);
                        };
                        match head {
                            MsgInFlight::Eager { arrival, bytes } => {
                                queue.pop_front();
                                let end = begin.max(arrival);
                                builder.push(Event::begin_activity(
                                    begin,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                builder.push(Event::message_recv(
                                    end,
                                    rank as u32,
                                    src as u32,
                                    bytes,
                                ));
                                builder.push(Event::end_activity(
                                    end,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                states[rank].handles.remove(&handle);
                                states[rank].wait_started = None;
                                states[rank].time = end;
                                states[rank].pc += 1;
                                Ok(true)
                            }
                            MsgInFlight::Rendezvous {
                                sender_ready,
                                bytes,
                            } => {
                                queue.pop_front();
                                // The receive was posted at irecv time, so
                                // the rendezvous can start as soon as both
                                // sides are ready.
                                let sync = posted.max(sender_ready);
                                let (transfer, latency, loss_delay) =
                                    self.message_costs(src, rank, sync, bytes);
                                let sender_done = sync + o + transfer + loss_delay;
                                let recv_done = sender_done + latency;
                                builder.push(Event::begin_activity(
                                    sender_ready,
                                    src as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                builder.push(Event::message_send(
                                    sender_ready,
                                    src as u32,
                                    rank as u32,
                                    bytes,
                                ));
                                builder.push(Event::end_activity(
                                    sender_done,
                                    src as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                states[src].time = sender_done;
                                states[src].send_registered = false;
                                states[src].pc += 1;
                                let end = begin.max(recv_done);
                                builder.push(Event::begin_activity(
                                    begin,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                builder.push(Event::message_recv(
                                    end,
                                    rank as u32,
                                    src as u32,
                                    bytes,
                                ));
                                builder.push(Event::end_activity(
                                    end,
                                    rank as u32,
                                    ActivityKind::PointToPoint,
                                ));
                                states[rank].handles.remove(&handle);
                                states[rank].wait_started = None;
                                states[rank].time = end;
                                states[rank].pc += 1;
                                stats.messages += 1;
                                stats.bytes += bytes;
                                Ok(true)
                            }
                        }
                    }
                }
            }
            Op::Collective { kind, bytes } => {
                let instance = states[rank].collective_counter;
                if collectives.len() <= instance {
                    collectives.push(CollectiveInstance {
                        kind,
                        max_bytes: 0,
                        arrivals: vec![None; program.ranks()],
                        arrived: 0,
                    });
                }
                let inst = &mut collectives[instance];
                if inst.kind != kind {
                    return Err(SimError::CollectiveMismatch {
                        instance,
                        detail: format!("rank {rank} calls {kind} but instance is {}", inst.kind),
                    });
                }
                if states[rank].collective_arrived.is_none() {
                    states[rank].collective_arrived = Some(states[rank].time);
                    inst.arrivals[rank] = Some(states[rank].time);
                    inst.arrived += 1;
                    inst.max_bytes = inst.max_bytes.max(bytes);
                }
                if inst.arrived < program.ranks() {
                    return Ok(false);
                }
                // Everyone has arrived: release all participants.
                let ready = inst
                    .arrivals
                    .iter()
                    .map(|a| a.expect("all arrived"))
                    .fold(f64::NEG_INFINITY, f64::max);
                let cost = collective_cost(kind, program.ranks(), inst.max_bytes, self.config);
                let completion = ready + cost;
                let activity = if kind == CollectiveKind::Barrier {
                    ActivityKind::Synchronization
                } else {
                    ActivityKind::Collective
                };
                for (r, state) in states.iter_mut().enumerate() {
                    let arrival = collectives[instance].arrivals[r].expect("all arrived");
                    builder.push(Event::begin_activity(arrival, r as u32, activity));
                    builder.push(Event::end_activity(completion, r as u32, activity));
                    state.time = completion;
                    state.collective_arrived = None;
                    state.collective_counter += 1;
                    state.pc += 1;
                }
                stats.collectives += 1;
                Ok(true)
            }
        }
    }
}
