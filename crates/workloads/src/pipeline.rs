//! Staged dataflow pipeline.

use limba_mpisim::{Program, ProgramBuilder, SimError};

use crate::Imbalance;

/// Configuration of the pipeline workload.
///
/// Every rank is one pipeline stage; `items` work items stream through.
/// Stage 0 produces, interior stages transform, the last stage consumes.
/// Per-stage costs are scaled by the [`Imbalance`] injector, so a heavy
/// stage becomes the pipeline bottleneck — the classic imbalance pattern
/// where *every* stage's time is dominated by waiting for the slowest.
///
/// # Example
///
/// ```
/// use limba_workloads::pipeline::PipelineConfig;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = PipelineConfig::new(4).with_items(10).build_program()?;
/// assert_eq!(program.ranks(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    stages: usize,
    items: usize,
    stage_work: f64,
    item_bytes: u64,
    imbalance: Imbalance,
    seed: u64,
}

impl PipelineConfig {
    /// Creates a pipeline of `stages` stages with defaults (8 items,
    /// 10 ms per stage, 16 KiB items).
    pub fn new(stages: usize) -> Self {
        PipelineConfig {
            stages,
            items: 8,
            stage_work: 0.01,
            item_bytes: 16 << 10,
            imbalance: Imbalance::default(),
            seed: 0,
        }
    }

    /// Number of ranks (= stages).
    pub fn ranks(&self) -> usize {
        self.stages
    }

    /// Sets the number of streamed items.
    pub fn with_items(mut self, items: usize) -> Self {
        self.items = items;
        self
    }

    /// Sets the nominal per-stage compute time per item in seconds.
    pub fn with_stage_work(mut self, seconds: f64) -> Self {
        self.stage_work = seconds;
        self
    }

    /// Sets the item payload size in bytes.
    pub fn with_item_bytes(mut self, bytes: u64) -> Self {
        self.item_bytes = bytes;
        self
    }

    /// Sets the per-stage cost injector.
    pub fn with_imbalance(mut self, imbalance: Imbalance) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the seed used by stochastic injectors.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the op program.
    ///
    /// # Errors
    ///
    /// Returns an error when the pipeline has fewer than two stages.
    pub fn build_program(&self) -> Result<Program, SimError> {
        if self.stages < 2 {
            return Err(SimError::InvalidConfig {
                detail: "pipeline needs at least two stages".into(),
            });
        }
        let w = self.imbalance.weights(self.stages, self.seed);
        let mut pb = ProgramBuilder::new(self.stages);
        let stage = pb.add_region("stage");
        let last = self.stages - 1;
        pb.spmd(|rank, mut ops| {
            ops.enter(stage);
            for _ in 0..self.items {
                if rank > 0 {
                    ops.recv(rank - 1);
                }
                ops.compute(self.stage_work * w[rank]);
                if rank < last {
                    ops.send(rank + 1, self.item_bytes);
                }
            }
            ops.leave(stage);
        });
        pb.build()
    }
}

#[cfg(test)]
mod tests {
    use limba_model::{ActivityKind, ProcessorId, RegionId};
    use limba_mpisim::{MachineConfig, Simulator};

    use super::*;

    fn simulate(cfg: &PipelineConfig) -> limba_mpisim::SimOutput {
        let program = cfg.build_program().unwrap();
        Simulator::new(MachineConfig::new(cfg.ranks()))
            .run(&program)
            .unwrap()
    }

    #[test]
    fn items_flow_through_all_stages() {
        let out = simulate(&PipelineConfig::new(4).with_items(5));
        // 5 items × 3 hops.
        assert_eq!(out.stats.messages, 15);
    }

    #[test]
    fn bottleneck_stage_slows_everyone() {
        let balanced = simulate(&PipelineConfig::new(4).with_items(16));
        let skewed = simulate(&PipelineConfig::new(4).with_items(16).with_imbalance(
            Imbalance::Hotspot {
                rank: 1,
                factor: 4.0,
            },
        ));
        assert!(skewed.stats.makespan > balanced.stats.makespan * 1.3);
        // Downstream stages spend time blocked in point-to-point waits.
        let m = skewed.reduce().unwrap().measurements;
        let stage = RegionId::new(0);
        let wait2 = m.time(stage, ActivityKind::PointToPoint, ProcessorId::new(2));
        let comp2 = m.time(stage, ActivityKind::Computation, ProcessorId::new(2));
        assert!(wait2 > comp2, "stage after bottleneck should mostly wait");
    }

    #[test]
    fn single_stage_rejected() {
        assert!(PipelineConfig::new(1).build_program().is_err());
    }

    #[test]
    fn zero_items_is_a_valid_noop() {
        let out = simulate(&PipelineConfig::new(3).with_items(0));
        assert_eq!(out.stats.messages, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = PipelineConfig::new(5)
            .with_items(7)
            .with_imbalance(Imbalance::RandomJitter { amplitude: 0.2 });
        assert_eq!(simulate(&cfg).trace, simulate(&cfg).trace);
    }
}
