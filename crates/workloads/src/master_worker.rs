//! Master–worker task farm.

use limba_mpisim::{Program, ProgramBuilder, SimError};

use crate::Imbalance;

/// Configuration of the master–worker workload.
///
/// Rank 0 is the master: it scatters `tasks` task descriptors round-robin
/// over the workers, then gathers one result per task. Workers receive,
/// compute, and send results back. Task compute times are scaled by the
/// [`Imbalance`] injector *over workers*, modelling uneven task costs that
/// a static round-robin assignment cannot balance.
///
/// # Example
///
/// ```
/// use limba_workloads::master_worker::MasterWorkerConfig;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = MasterWorkerConfig::new(5).with_tasks(12).build_program()?;
/// assert_eq!(program.ranks(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MasterWorkerConfig {
    ranks: usize,
    tasks: usize,
    task_work: f64,
    task_bytes: u64,
    result_bytes: u64,
    imbalance: Imbalance,
    seed: u64,
}

impl MasterWorkerConfig {
    /// Creates a farm of `ranks` ranks (1 master + `ranks − 1` workers)
    /// with defaults (2 tasks per worker, 20 ms per task, 4 KiB task
    /// payloads, 1 KiB results).
    pub fn new(ranks: usize) -> Self {
        MasterWorkerConfig {
            ranks,
            tasks: 2 * ranks.saturating_sub(1),
            task_work: 0.02,
            task_bytes: 4 << 10,
            result_bytes: 1 << 10,
            imbalance: Imbalance::default(),
            seed: 0,
        }
    }

    /// Number of ranks (master included).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Sets the total number of tasks.
    pub fn with_tasks(mut self, tasks: usize) -> Self {
        self.tasks = tasks;
        self
    }

    /// Sets the nominal compute time per task in seconds.
    pub fn with_task_work(mut self, seconds: f64) -> Self {
        self.task_work = seconds;
        self
    }

    /// Sets task and result payload sizes in bytes.
    pub fn with_payloads(mut self, task_bytes: u64, result_bytes: u64) -> Self {
        self.task_bytes = task_bytes;
        self.result_bytes = result_bytes;
        self
    }

    /// Sets the per-worker cost injector.
    pub fn with_imbalance(mut self, imbalance: Imbalance) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the seed used by stochastic injectors.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the op program.
    ///
    /// # Errors
    ///
    /// Returns an error when the farm has fewer than two ranks (a master
    /// needs at least one worker).
    pub fn build_program(&self) -> Result<Program, SimError> {
        if self.ranks < 2 {
            return Err(SimError::InvalidConfig {
                detail: "master-worker needs at least two ranks".into(),
            });
        }
        let workers = self.ranks - 1;
        let w = self.imbalance.weights(workers, self.seed);
        let mut pb = ProgramBuilder::new(self.ranks);
        let scatter = pb.add_region("task scatter");
        let work = pb.add_region("worker compute");
        let gather = pb.add_region("result gather");

        // Master: scatter every task, then gather every result, in
        // round-robin worker order.
        {
            let mut master = pb.rank(0);
            master.enter(scatter);
            for t in 0..self.tasks {
                let worker = 1 + t % workers;
                master.send(worker, self.task_bytes);
            }
            master.leave(scatter);
            master.enter(gather);
            for t in 0..self.tasks {
                let worker = 1 + t % workers;
                master.recv(worker);
            }
            master.leave(gather);
        }
        // Workers: receive, compute, reply per assigned task.
        for worker in 1..self.ranks {
            let my_tasks = (0..self.tasks)
                .filter(|t| 1 + t % workers == worker)
                .count();
            let mut ops = pb.rank(worker);
            ops.enter(work);
            for _ in 0..my_tasks {
                ops.recv(0)
                    .compute(self.task_work * w[worker - 1])
                    .send(0, self.result_bytes);
            }
            ops.leave(work);
        }
        pb.build()
    }
}

#[cfg(test)]
mod tests {
    use limba_model::{ActivityKind, CountKind, ProcessorId, RegionId};
    use limba_mpisim::{MachineConfig, Simulator};

    use super::*;

    fn simulate(cfg: &MasterWorkerConfig) -> limba_mpisim::SimOutput {
        let program = cfg.build_program().unwrap();
        Simulator::new(MachineConfig::new(cfg.ranks()))
            .run(&program)
            .unwrap()
    }

    #[test]
    fn all_tasks_complete() {
        let cfg = MasterWorkerConfig::new(4).with_tasks(9);
        let out = simulate(&cfg);
        let red = out.reduce().unwrap();
        // Master receives one result per task.
        let gathered = red.counts.count(
            RegionId::new(2),
            CountKind::MessagesReceived,
            ProcessorId::new(0),
        );
        assert_eq!(gathered, 9.0);
    }

    #[test]
    fn master_does_no_task_computation() {
        let out = simulate(&MasterWorkerConfig::new(3));
        let m = out.reduce().unwrap().measurements;
        let work = RegionId::new(1);
        assert_eq!(
            m.time(work, ActivityKind::Computation, ProcessorId::new(0)),
            0.0
        );
        assert!(m.time(work, ActivityKind::Computation, ProcessorId::new(1)) > 0.0);
    }

    #[test]
    fn slow_worker_dominates_makespan() {
        let even = simulate(&MasterWorkerConfig::new(5).with_tasks(16));
        let skewed = simulate(&MasterWorkerConfig::new(5).with_tasks(16).with_imbalance(
            Imbalance::Hotspot {
                rank: 0,
                factor: 4.0,
            },
        ));
        assert!(skewed.stats.makespan > even.stats.makespan * 1.3);
    }

    #[test]
    fn uneven_task_counts_are_handled() {
        // 7 tasks over 3 workers: 3/2/2 split.
        let out = simulate(&MasterWorkerConfig::new(4).with_tasks(7));
        assert!(out.stats.makespan > 0.0);
        assert_eq!(out.stats.messages, 14);
    }

    #[test]
    fn too_few_ranks_rejected() {
        assert!(MasterWorkerConfig::new(1).build_program().is_err());
    }

    #[test]
    fn zero_tasks_is_a_valid_noop() {
        let out = simulate(&MasterWorkerConfig::new(3).with_tasks(0));
        assert_eq!(out.stats.messages, 0);
    }
}
