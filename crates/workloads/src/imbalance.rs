//! Work-distribution (im)balance injectors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the nominal per-rank work of a workload is distributed.
///
/// `weights(ranks, seed)` returns one multiplicative factor per rank with
/// mean exactly 1, so the *total* work is independent of the injector and
/// runs stay comparable.
///
/// # Example
///
/// ```
/// use limba_workloads::Imbalance;
/// let w = Imbalance::LinearSkew { spread: 0.5 }.weights(4, 0);
/// assert!((w.iter().sum::<f64>() / 4.0 - 1.0).abs() < 1e-12);
/// assert!(w[3] > w[0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Imbalance {
    /// Perfectly even distribution.
    #[default]
    None,
    /// Work grows linearly with the rank index; the last rank gets
    /// `1 + spread/2` of nominal, the first `1 − spread/2`.
    LinearSkew {
        /// Total relative spread between the lightest and heaviest rank,
        /// clamped to `[0, 2)`.
        spread: f64,
    },
    /// The first `heavy` ranks each get `factor` times the work of the
    /// remaining ranks (a bad block decomposition).
    BlockSkew {
        /// Number of overloaded ranks.
        heavy: usize,
        /// Overload factor (> 1).
        factor: f64,
    },
    /// Multiplicative uniform noise in `[1 − amplitude, 1 + amplitude]`,
    /// renormalized to mean 1 (OS jitter, cache effects).
    RandomJitter {
        /// Noise amplitude in `[0, 1)`.
        amplitude: f64,
    },
    /// A single hotspot rank receives `factor` times the work of everyone
    /// else (e.g. a physics hotspot pinned to one subdomain).
    Hotspot {
        /// The overloaded rank.
        rank: usize,
        /// Overload factor (> 1).
        factor: f64,
    },
}

impl Imbalance {
    /// Per-rank multiplicative work factors with mean exactly 1.
    ///
    /// `seed` only matters for [`Imbalance::RandomJitter`]; all other
    /// variants are deterministic.
    ///
    /// # Panics
    ///
    /// Panics when `ranks` is zero.
    pub fn weights(&self, ranks: usize, seed: u64) -> Vec<f64> {
        assert!(ranks > 0, "need at least one rank");
        let raw: Vec<f64> = match *self {
            Imbalance::None => vec![1.0; ranks],
            Imbalance::LinearSkew { spread } => {
                let spread = spread.clamp(0.0, 1.999);
                if ranks == 1 {
                    vec![1.0]
                } else {
                    (0..ranks)
                        .map(|p| 1.0 - spread / 2.0 + spread * p as f64 / (ranks - 1) as f64)
                        .collect()
                }
            }
            Imbalance::BlockSkew { heavy, factor } => {
                let heavy = heavy.min(ranks);
                let factor = factor.max(1.0);
                (0..ranks)
                    .map(|p| if p < heavy { factor } else { 1.0 })
                    .collect()
            }
            Imbalance::RandomJitter { amplitude } => {
                let amplitude = amplitude.clamp(0.0, 0.999);
                let mut rng = StdRng::seed_from_u64(seed);
                (0..ranks)
                    .map(|_| 1.0 + rng.gen_range(-amplitude..=amplitude))
                    .collect()
            }
            Imbalance::Hotspot { rank, factor } => {
                let factor = factor.max(1.0);
                (0..ranks)
                    .map(|p| if p == rank % ranks { factor } else { 1.0 })
                    .collect()
            }
        };
        let mean = raw.iter().sum::<f64>() / ranks as f64;
        raw.into_iter().map(|w| w / mean).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_mean_one(w: &[f64]) {
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12, "mean {mean}");
    }

    #[test]
    fn all_variants_have_mean_one_and_positive_weights() {
        let variants = [
            Imbalance::None,
            Imbalance::LinearSkew { spread: 0.8 },
            Imbalance::BlockSkew {
                heavy: 3,
                factor: 2.5,
            },
            Imbalance::RandomJitter { amplitude: 0.4 },
            Imbalance::Hotspot {
                rank: 5,
                factor: 4.0,
            },
        ];
        for v in variants {
            let w = v.weights(16, 42);
            assert_eq!(w.len(), 16);
            assert_mean_one(&w);
            assert!(w.iter().all(|&x| x > 0.0), "{v:?} gave non-positive weight");
        }
    }

    #[test]
    fn none_is_uniform() {
        assert_eq!(Imbalance::None.weights(4, 0), vec![1.0; 4]);
    }

    #[test]
    fn linear_skew_is_monotone() {
        let w = Imbalance::LinearSkew { spread: 0.5 }.weights(8, 0);
        for pair in w.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        assert!((w[7] - w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn linear_skew_single_rank() {
        assert_eq!(
            Imbalance::LinearSkew { spread: 1.0 }.weights(1, 0),
            vec![1.0]
        );
    }

    #[test]
    fn block_skew_overloads_prefix() {
        let w = Imbalance::BlockSkew {
            heavy: 2,
            factor: 3.0,
        }
        .weights(4, 0);
        assert!((w[0] / w[2] - 3.0).abs() < 1e-12);
        assert_eq!(w[0], w[1]);
        assert_eq!(w[2], w[3]);
    }

    #[test]
    fn block_skew_heavy_capped_at_ranks() {
        let w = Imbalance::BlockSkew {
            heavy: 99,
            factor: 3.0,
        }
        .weights(4, 0);
        assert_eq!(w, vec![1.0; 4]); // everyone heavy → renormalized to 1
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let a = Imbalance::RandomJitter { amplitude: 0.3 }.weights(8, 7);
        let b = Imbalance::RandomJitter { amplitude: 0.3 }.weights(8, 7);
        let c = Imbalance::RandomJitter { amplitude: 0.3 }.weights(8, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn hotspot_targets_one_rank() {
        let w = Imbalance::Hotspot {
            rank: 2,
            factor: 5.0,
        }
        .weights(4, 0);
        assert!(w[2] > w[0]);
        assert_eq!(w[0], w[1]);
        // Out-of-range ranks wrap.
        let w = Imbalance::Hotspot {
            rank: 6,
            factor: 5.0,
        }
        .weights(4, 0);
        assert!(w[2] > w[0]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Imbalance::None.weights(0, 0);
    }
}
