//! Deadlock-free neighbor exchange patterns.
//!
//! All workloads exchange halos along non-periodic chains using a
//! two-phase schedule: phase 0 pairs `(2k, 2k+1)`, phase 1 pairs
//! `(2k+1, 2k+2)`. Within a pair the lower rank sends first; pairs are
//! disjoint within a phase, so the schedule cannot deadlock even when
//! every message uses the rendezvous protocol.

use limba_mpisim::RankOps;

/// Appends `rank`'s ops for a bidirectional halo exchange along the chain
/// `0 — 1 — … — ranks−1` with `bytes` per direction.
pub(crate) fn chain_exchange(ops: &mut RankOps<'_>, rank: usize, ranks: usize, bytes: u64) {
    line_exchange(ops, rank, ranks, |i| i, bytes);
}

/// Appends the ops of the element at `pos` of a line of `len` logical
/// positions, where `to_global` maps a position to its MPI rank. Used for
/// row/column exchanges of 2-D decompositions.
pub(crate) fn line_exchange<F: Fn(usize) -> usize>(
    ops: &mut RankOps<'_>,
    pos: usize,
    len: usize,
    to_global: F,
    bytes: u64,
) {
    for phase in 0..2usize {
        let is_left = pos % 2 == phase;
        if is_left {
            if pos + 1 < len {
                let partner = to_global(pos + 1);
                ops.send(partner, bytes).recv(partner);
            }
        } else if pos >= 1 {
            let partner = to_global(pos - 1);
            ops.recv(partner).send(partner, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use limba_mpisim::{MachineConfig, ProgramBuilder, Simulator};

    use super::*;

    fn run_chain(ranks: usize, bytes: u64) {
        let mut pb = ProgramBuilder::new(ranks);
        let r = pb.add_region("halo");
        pb.spmd(|rank, mut ops| {
            ops.enter(r);
            chain_exchange(&mut ops, rank, ranks, bytes);
            ops.leave(r);
        });
        let program = pb.build().unwrap();
        let cfg = MachineConfig::new(ranks).with_eager_threshold(0); // force rendezvous
        Simulator::new(cfg).run(&program).unwrap();
    }

    #[test]
    fn chain_exchange_is_deadlock_free_for_any_size() {
        for ranks in [1, 2, 3, 4, 5, 7, 8, 16, 17] {
            run_chain(ranks, 1 << 20);
        }
    }

    #[test]
    fn interior_ranks_exchange_with_both_neighbors() {
        let ranks = 4;
        let mut pb = ProgramBuilder::new(ranks);
        let r = pb.add_region("halo");
        pb.spmd(|rank, mut ops| {
            ops.enter(r);
            chain_exchange(&mut ops, rank, ranks, 100);
            ops.leave(r);
        });
        let program = pb.build().unwrap();
        // Interior ranks have 2 sends + 2 recvs (+ enter/leave) = 6 ops;
        // edge ranks 1 send + 1 recv = 4 ops.
        assert_eq!(program.ops(0).len(), 4);
        assert_eq!(program.ops(1).len(), 6);
        assert_eq!(program.ops(2).len(), 6);
        assert_eq!(program.ops(3).len(), 4);
    }

    #[test]
    fn line_exchange_maps_positions_through_stride() {
        // A column of a 2×2 grid: positions {0,1} map to ranks {1,3}.
        let mut pb = ProgramBuilder::new(4);
        let r = pb.add_region("col");
        pb.spmd(|rank, mut ops| {
            ops.enter(r);
            if rank % 2 == 1 {
                let pos = rank / 2;
                line_exchange(&mut ops, pos, 2, |p| p * 2 + 1, 64);
            }
            ops.leave(r);
        });
        let program = pb.build().unwrap();
        Simulator::new(MachineConfig::new(4)).run(&program).unwrap();
        assert_eq!(program.ops(1).len(), 4);
        assert_eq!(program.ops(0).len(), 2);
    }
}
