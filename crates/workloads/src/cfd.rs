//! The CFD proxy application.
//!
//! A message-passing computational-fluid-dynamics proxy with the loop /
//! activity structure of the paper's case study: seven main loops, of
//! which (cf. Table 1)
//!
//! | loop | computation | point-to-point | collective | synchronization |
//! |------|-------------|----------------|------------|-----------------|
//! | 1 flux assembly      | heavy | – | heavy reduce | barrier |
//! | 2 pressure solve     | heavy | – | heavy reduce | – |
//! | 3 halo exchange x    | medium | heavy | – | – |
//! | 4 momentum update    | heavy | medium | – | – |
//! | 5 time integration   | heavy | light | medium reduce | barrier |
//! | 6 boundary conditions| light | light | – | barrier |
//! | 7 residual check     | light | – | light reduce | – |
//!
//! Per-rank computation is scaled by an [`Imbalance`] injector, so the
//! spread the methodology measures has known ground truth.

use limba_mpisim::{Program, ProgramBuilder, SimError};

use crate::exchange::chain_exchange;
use crate::Imbalance;

/// Names of the seven loops, in region-id order.
pub const LOOP_NAMES: [&str; 7] = [
    "loop 1", "loop 2", "loop 3", "loop 4", "loop 5", "loop 6", "loop 7",
];

/// Configuration of the CFD proxy.
///
/// # Example
///
/// ```
/// use limba_workloads::{cfd::CfdConfig, Imbalance};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = CfdConfig::new(16)
///     .with_iterations(3)
///     .with_imbalance(Imbalance::RandomJitter { amplitude: 0.2 })
///     .build_program()?;
/// assert_eq!(program.ranks(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CfdConfig {
    ranks: usize,
    iterations: usize,
    work_scale: f64,
    imbalance: Imbalance,
    seed: u64,
}

impl CfdConfig {
    /// Creates a configuration for `ranks` ranks with one iteration,
    /// nominal work scale, and no injected imbalance.
    pub fn new(ranks: usize) -> Self {
        CfdConfig {
            ranks,
            iterations: 1,
            work_scale: 1.0,
            imbalance: Imbalance::default(),
            seed: 0,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Sets the number of outer time-step iterations.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Scales all computation times (1.0 = nominal).
    pub fn with_work_scale(mut self, scale: f64) -> Self {
        self.work_scale = scale;
        self
    }

    /// Sets the work-distribution injector.
    pub fn with_imbalance(mut self, imbalance: Imbalance) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the seed used by stochastic injectors.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the op program for the simulator.
    ///
    /// # Errors
    ///
    /// Propagates program-validation errors (none occur for valid
    /// configurations).
    pub fn build_program(&self) -> Result<Program, SimError> {
        let n = self.ranks;
        let w = self.imbalance.weights(n, self.seed);
        let s = self.work_scale;
        let mut pb = ProgramBuilder::new(n);
        let loops: Vec<_> = LOOP_NAMES.iter().map(|name| pb.add_region(*name)).collect();
        for _ in 0..self.iterations {
            pb.spmd(|rank, mut ops| {
                let wk = w[rank] * s;
                // Loop 1: flux assembly — the core of the program. The
                // reduce absorbs the computation spread (imbalanced
                // collective); a small jittered fix-up before the barrier
                // makes synchronization short but highly imbalanced, the
                // paper's signature finding.
                ops.enter(loops[0]).compute(0.60 * wk).reduce(256 << 10);
                if rank != 0 && rank + 1 != n {
                    // Interior fix-up: boundary ranks skip it and sit in
                    // the barrier, concentrating the wait on few ranks.
                    ops.compute(0.010 * wk);
                }
                ops.barrier().leave(loops[0]);
                // Loop 2: pressure solve.
                ops.enter(loops[1])
                    .compute(0.40 * wk)
                    .reduce(224 << 10)
                    .leave(loops[1]);
                // Loop 3: halo exchange (x sweep) — heavy point-to-point
                // dominated by transfer time, hence fairly balanced.
                ops.enter(loops[2]).compute(0.26 * wk);
                chain_exchange(&mut ops, rank, n, 768 << 10);
                ops.leave(loops[2]);
                // Loop 4: momentum update — moderate messages behind a
                // big jittered compute, so waits make p2p imbalanced.
                ops.enter(loops[3]).compute(0.40 * wk);
                chain_exchange(&mut ops, rank, n, 128 << 10);
                ops.leave(loops[3]);
                // Loop 5: time integration — performs all four
                // activities; the exchange comes first (arrivals are
                // near-synchronized from loop 4), keeping its p2p share
                // small as in the paper.
                ops.enter(loops[4]);
                chain_exchange(&mut ops, rank, n, 2 << 10);
                ops.compute(0.38 * wk).reduce(16 << 10);
                if rank != 0 && rank + 1 != n {
                    ops.compute(0.004 * wk);
                }
                ops.barrier().leave(loops[4]);
                // Loop 6: boundary conditions — small but busy; the
                // exchange and barrier both absorb fresh spread.
                ops.enter(loops[5]).compute(0.018 * wk);
                chain_exchange(&mut ops, rank, n, 8 << 10);
                ops.barrier().leave(loops[5]);
                // Loop 7: residual check.
                ops.enter(loops[6])
                    .compute(0.014 * wk)
                    .reduce(1 << 10)
                    .leave(loops[6]);
            });
        }
        pb.build()
    }
}

#[cfg(test)]
mod tests {
    use limba_model::{ActivityKind, ProcessorId, ProgramProfile, RegionId};
    use limba_mpisim::{MachineConfig, Simulator};

    use super::*;

    fn simulate(cfg: &CfdConfig) -> limba_mpisim::SimOutput {
        let program = cfg.build_program().unwrap();
        Simulator::new(MachineConfig::new(cfg.ranks()))
            .run(&program)
            .unwrap()
    }

    #[test]
    fn seven_loops_with_paper_activity_pattern() {
        let out = simulate(&CfdConfig::new(16));
        let m = out.reduce().unwrap().measurements;
        assert_eq!(m.regions(), 7);
        // Activity sparsity pattern of Table 1 (which loops perform what).
        let expect = [
            // (p2p, collective, sync)
            (false, true, true),  // loop 1
            (false, true, false), // loop 2
            (true, false, false), // loop 3
            (true, false, false), // loop 4
            (true, true, true),   // loop 5
            (true, false, true),  // loop 6
            (false, true, false), // loop 7
        ];
        for (i, &(p2p, coll, sync)) in expect.iter().enumerate() {
            let r = RegionId::new(i);
            assert!(
                m.performs(r, ActivityKind::Computation),
                "loop {} computes",
                i + 1
            );
            assert_eq!(
                m.performs(r, ActivityKind::PointToPoint),
                p2p,
                "loop {} p2p",
                i + 1
            );
            assert_eq!(
                m.performs(r, ActivityKind::Collective),
                coll,
                "loop {} coll",
                i + 1
            );
            assert_eq!(
                m.performs(r, ActivityKind::Synchronization),
                sync,
                "loop {} sync",
                i + 1
            );
        }
    }

    #[test]
    fn loop_1_is_heaviest_and_computation_dominant() {
        let out = simulate(&CfdConfig::new(16).with_iterations(2));
        let m = out.reduce().unwrap().measurements;
        let profile = ProgramProfile::from_measurements(&m);
        assert_eq!(profile.heaviest_region().unwrap().name, "loop 1");
        assert_eq!(
            profile.dominant_activity().unwrap().0,
            ActivityKind::Computation
        );
    }

    #[test]
    fn injected_skew_shows_up_in_computation_times() {
        let cfg = CfdConfig::new(8).with_imbalance(Imbalance::LinearSkew { spread: 0.6 });
        let out = simulate(&cfg);
        let m = out.reduce().unwrap().measurements;
        let r = RegionId::new(0);
        let t0 = m.time(r, ActivityKind::Computation, ProcessorId::new(0));
        let t7 = m.time(r, ActivityKind::Computation, ProcessorId::new(7));
        assert!(t7 > t0 * 1.5, "skew not visible: {t0} vs {t7}");
        // The compute laggard waits least in the reduce that follows (the
        // barrier right after it sees already-synchronized ranks).
        let s0 = m.time(r, ActivityKind::Collective, ProcessorId::new(0));
        let s7 = m.time(r, ActivityKind::Collective, ProcessorId::new(7));
        assert!(
            s0 > s7,
            "collective wait should mirror compute skew: {s0} vs {s7}"
        );
    }

    #[test]
    fn iterations_scale_times_linearly() {
        let m1 = simulate(&CfdConfig::new(4)).reduce().unwrap().measurements;
        let m3 = simulate(&CfdConfig::new(4).with_iterations(3))
            .reduce()
            .unwrap()
            .measurements;
        let r = RegionId::new(1);
        let a = m1.region_activity_time(r, ActivityKind::Computation);
        let b = m3.region_activity_time(r, ActivityKind::Computation);
        assert!((b / a - 3.0).abs() < 1e-9);
    }

    #[test]
    fn work_scale_scales_computation() {
        let m1 = simulate(&CfdConfig::new(4)).reduce().unwrap().measurements;
        let m2 = simulate(&CfdConfig::new(4).with_work_scale(2.0))
            .reduce()
            .unwrap()
            .measurements;
        let r = RegionId::new(0);
        let a = m1.region_activity_time(r, ActivityKind::Computation);
        let b = m2.region_activity_time(r, ActivityKind::Computation);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = CfdConfig::new(8)
            .with_imbalance(Imbalance::RandomJitter { amplitude: 0.3 })
            .with_seed(9);
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn works_on_odd_and_small_rank_counts() {
        for ranks in [1, 2, 3, 5] {
            let out = simulate(&CfdConfig::new(ranks));
            assert!(out.stats.makespan > 0.0);
        }
    }
}
