//! 2-D Jacobi stencil solver with halo exchanges.

use limba_mpisim::{Program, ProgramBuilder, SimError};

use crate::exchange::line_exchange;
use crate::Imbalance;

/// Configuration of the 2-D stencil workload on a `px × py` rank grid.
///
/// Per iteration every rank exchanges halos with its grid neighbors
/// (row-wise then column-wise, phased and deadlock-free), computes its
/// subdomain, and every `residual_every` iterations joins an allreduce on
/// the residual.
///
/// # Example
///
/// ```
/// use limba_workloads::stencil::StencilConfig;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = StencilConfig::new(4, 2).with_iterations(5).build_program()?;
/// assert_eq!(program.ranks(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StencilConfig {
    px: usize,
    py: usize,
    iterations: usize,
    cell_work: f64,
    halo_bytes: u64,
    residual_every: usize,
    imbalance: Imbalance,
    seed: u64,
}

impl StencilConfig {
    /// Creates a `px × py` stencil with defaults (10 iterations, 50 ms of
    /// work per rank-iteration, 32 KiB halos, residual every 5 iterations).
    pub fn new(px: usize, py: usize) -> Self {
        StencilConfig {
            px,
            py,
            iterations: 10,
            cell_work: 0.05,
            halo_bytes: 32 << 10,
            residual_every: 5,
            imbalance: Imbalance::default(),
            seed: 0,
        }
    }

    /// Total ranks `px × py`.
    pub fn ranks(&self) -> usize {
        self.px * self.py
    }

    /// Sets the iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Sets the nominal per-rank work per iteration in seconds.
    pub fn with_cell_work(mut self, seconds: f64) -> Self {
        self.cell_work = seconds;
        self
    }

    /// Sets halo payload size in bytes.
    pub fn with_halo_bytes(mut self, bytes: u64) -> Self {
        self.halo_bytes = bytes;
        self
    }

    /// Sets how often (in iterations) the residual allreduce happens.
    pub fn with_residual_every(mut self, every: usize) -> Self {
        self.residual_every = every.max(1);
        self
    }

    /// Sets the work-distribution injector.
    pub fn with_imbalance(mut self, imbalance: Imbalance) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the seed used by stochastic injectors.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the op program.
    ///
    /// # Errors
    ///
    /// Returns an invalid-config style error via program validation when
    /// the grid is degenerate (zero ranks).
    pub fn build_program(&self) -> Result<Program, SimError> {
        let n = self.ranks();
        if n == 0 {
            return Err(SimError::InvalidConfig {
                detail: "stencil grid must have at least one rank".into(),
            });
        }
        let w = self.imbalance.weights(n, self.seed);
        let mut pb = ProgramBuilder::new(n);
        let exchange = pb.add_region("halo exchange");
        let compute = pb.add_region("stencil update");
        let residual = pb.add_region("residual");
        let (px, py) = (self.px, self.py);
        for iter in 0..self.iterations {
            pb.spmd(|rank, mut ops| {
                let (x, y) = (rank % px, rank / px);
                ops.enter(exchange);
                // Row-wise exchange: the rank's row is a line of px items.
                line_exchange(&mut ops, x, px, |p| y * px + p, self.halo_bytes);
                // Column-wise exchange.
                line_exchange(&mut ops, y, py, |p| p * px + x, self.halo_bytes);
                ops.leave(exchange);
                ops.enter(compute)
                    .compute(self.cell_work * w[rank])
                    .leave(compute);
                if (iter + 1) % self.residual_every == 0 {
                    ops.enter(residual).allreduce(8).leave(residual);
                }
            });
        }
        pb.build()
    }
}

#[cfg(test)]
mod tests {
    use limba_model::{ActivityKind, ProcessorId, RegionId};
    use limba_mpisim::{MachineConfig, Simulator};

    use super::*;

    fn simulate(cfg: &StencilConfig) -> limba_mpisim::SimOutput {
        let program = cfg.build_program().unwrap();
        Simulator::new(MachineConfig::new(cfg.ranks()))
            .run(&program)
            .unwrap()
    }

    #[test]
    fn runs_on_various_grids_without_deadlock() {
        for (px, py) in [(1, 1), (2, 1), (3, 2), (2, 3), (4, 4), (5, 3)] {
            let out = simulate(&StencilConfig::new(px, py).with_iterations(2));
            assert!(out.stats.makespan > 0.0);
        }
    }

    #[test]
    fn corner_ranks_send_fewer_messages_than_interior() {
        let cfg = StencilConfig::new(3, 3).with_iterations(1);
        let out = simulate(&cfg);
        let red = out.reduce().unwrap();
        use limba_model::CountKind;
        let r = RegionId::new(0);
        let corner = red
            .counts
            .count(r, CountKind::MessagesSent, ProcessorId::new(0));
        let center = red
            .counts
            .count(r, CountKind::MessagesSent, ProcessorId::new(4));
        assert_eq!(corner, 2.0);
        assert_eq!(center, 4.0);
    }

    #[test]
    fn residual_region_appears_at_configured_cadence() {
        let out = simulate(
            &StencilConfig::new(2, 2)
                .with_iterations(4)
                .with_residual_every(2),
        );
        let m = out.reduce().unwrap().measurements;
        let res = RegionId::new(2);
        assert!(m.performs(res, ActivityKind::Collective));
        // 2 allreduces of 8 bytes each; all ranks spend equal nonzero time.
        let t = m.region_activity_time(res, ActivityKind::Collective);
        assert!(t > 0.0);
    }

    #[test]
    fn hotspot_rank_computes_longest() {
        let cfg = StencilConfig::new(2, 2).with_imbalance(Imbalance::Hotspot {
            rank: 3,
            factor: 4.0,
        });
        let out = simulate(&cfg);
        let m = out.reduce().unwrap().measurements;
        let comp = RegionId::new(1);
        let hot = m.time(comp, ActivityKind::Computation, ProcessorId::new(3));
        let cold = m.time(comp, ActivityKind::Computation, ProcessorId::new(0));
        assert!(hot > 3.0 * cold);
    }

    #[test]
    fn zero_rank_grid_rejected() {
        assert!(StencilConfig::new(0, 4).build_program().is_err());
    }
}
