//! Ready-made balance plans for rebalancing experiments on the
//! workloads.
//!
//! A preset is a [`BalancePlan`] with curated parameters — unlike the
//! fault presets it needs no horizon scaling, because every policy
//! triggers on *relative* load (cumulative nominal seconds versus the
//! pack), which is scale-free. The CLI accepts them as
//! `limba simulate --balance preset:<name>`.

use limba_mpisim::BalancePlan;

/// Names accepted by [`preset`].
pub const PRESETS: &[&str] = &["stealing", "diffusion", "anticipatory"];

/// One-line summary per preset, in [`PRESETS`] order — what the CLI
/// prints for `--balance list`.
pub const PRESET_SUMMARIES: &[(&str, &str)] = &[
    (
        "stealing",
        "ranks 15% over the mean load shed their excess to the least-loaded rank",
    ),
    (
        "diffusion",
        "load flows to less-loaded network neighbors at rate 0.5 per compute op",
    ),
    (
        "anticipatory",
        "ranks trending away from the pack over 8 ops shed the predicted excess early",
    ),
];

/// Builds the named balance-plan preset. Returns `None` for unknown
/// names (see [`PRESETS`]).
///
/// * `stealing` — threshold-triggered work stealing at θ = 1.15: a rank
///   whose projected load tops the mean by 15% sheds the excess to the
///   least-loaded alive rank;
/// * `diffusion` — nearest-neighbor diffusion at rate 0.5 over the
///   machine's link topology (a ring when no overrides exist);
/// * `anticipatory` — trend-triggered rebalancing over an 8-op window
///   at sensitivity 0.25, acting on predicted rather than realized
///   imbalance.
pub fn preset(name: &str) -> Option<BalancePlan> {
    Some(match name {
        "stealing" => BalancePlan::stealing(2003, 1.15),
        "diffusion" => BalancePlan::diffusion(2003, 0.5),
        "anticipatory" => BalancePlan::anticipatory(2003, 8, 0.25),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_builds_and_validates() {
        for &name in PRESETS {
            let plan = preset(name).unwrap_or_else(|| panic!("preset {name} missing"));
            plan.validate()
                .unwrap_or_else(|e| panic!("preset {name}: {e}"));
            assert_eq!(plan.policy_name(), name);
        }
        assert!(preset("hurricane").is_none());
    }

    #[test]
    fn summaries_cover_every_preset_in_order() {
        let summarized: Vec<&str> = PRESET_SUMMARIES.iter().map(|&(name, _)| name).collect();
        assert_eq!(summarized, PRESETS);
        for &(_, summary) in PRESET_SUMMARIES {
            assert!(!summary.is_empty());
        }
    }

    #[test]
    fn presets_improve_an_imbalanced_workload_run() {
        use crate::cfd::CfdConfig;
        use crate::Imbalance;
        use limba_mpisim::{MachineConfig, Simulator};
        let program = CfdConfig::new(8)
            .with_iterations(3)
            .with_imbalance(Imbalance::RandomJitter { amplitude: 0.35 })
            .with_seed(7)
            .build_program()
            .unwrap();
        let sim = Simulator::new(MachineConfig::new(8));
        let base = sim.run(&program).unwrap();
        for &name in PRESETS {
            let plan = preset(name).unwrap();
            let balanced = sim.run_with_balance(&program, &plan).unwrap();
            assert!(
                balanced.stats.makespan <= base.stats.makespan,
                "{name}: {} > {}",
                balanced.stats.makespan,
                base.stats.makespan
            );
            assert!(balanced.balance.migrations > 0, "{name} never fired");
        }
    }
}
