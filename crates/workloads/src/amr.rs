//! AMR-style workload with *nested* code regions.
//!
//! Adaptive-mesh codes nest naturally: each time step contains a solve
//! phase (itself split into flux computation and state update) and an
//! I/O/bookkeeping phase. The refinement concentrates cells — and hence
//! work — on the ranks owning the refined patches, so the imbalance
//! hides *two levels down*, in the flux kernel. The hierarchical
//! drill-down of `limba_analysis::hierarchy` is built to find exactly
//! that.

use limba_mpisim::{Program, ProgramBuilder, SimError};

use crate::Imbalance;

/// Configuration of the nested AMR-style workload.
///
/// # Example
///
/// ```
/// use limba_workloads::{amr::AmrConfig, Imbalance};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = AmrConfig::new(8)
///     .with_steps(2)
///     .with_refinement(Imbalance::Hotspot { rank: 2, factor: 4.0 })
///     .build_program()?;
/// assert_eq!(program.ranks(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AmrConfig {
    ranks: usize,
    steps: usize,
    flux_work: f64,
    update_work: f64,
    io_work: f64,
    halo_bytes: u64,
    refinement: Imbalance,
    seed: u64,
}

impl AmrConfig {
    /// Creates the workload with defaults (2 steps, 60 ms flux / 30 ms
    /// update / 10 ms io per step, 16 KiB halos, no refinement skew).
    pub fn new(ranks: usize) -> Self {
        AmrConfig {
            ranks,
            steps: 2,
            flux_work: 0.06,
            update_work: 0.03,
            io_work: 0.01,
            halo_bytes: 16 << 10,
            refinement: Imbalance::default(),
            seed: 0,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Sets the number of time steps.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps.max(1);
        self
    }

    /// Sets the refinement-driven work distribution of the *flux* kernel
    /// (the update and I/O remain balanced — the point of the scenario).
    pub fn with_refinement(mut self, refinement: Imbalance) -> Self {
        self.refinement = refinement;
        self
    }

    /// Sets the seed used by stochastic injectors.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the op program with nested region markers:
    /// `time step → { solve → { flux, update }, io }`.
    ///
    /// # Errors
    ///
    /// Returns an error when the workload has no ranks.
    pub fn build_program(&self) -> Result<Program, SimError> {
        if self.ranks == 0 {
            return Err(SimError::InvalidConfig {
                detail: "amr workload needs at least one rank".into(),
            });
        }
        let n = self.ranks;
        let w = self.refinement.weights(n, self.seed);
        let mut pb = ProgramBuilder::new(n);
        let step = pb.add_region("time step");
        let solve = pb.add_region("solve");
        let flux = pb.add_region("flux");
        let update = pb.add_region("update");
        let io = pb.add_region("io");
        for _ in 0..self.steps {
            pb.spmd(|rank, mut ops| {
                ops.enter(step);
                ops.enter(solve);
                // Flux kernel: refinement-skewed work + halo exchange.
                ops.enter(flux).compute(self.flux_work * w[rank]);
                crate::exchange::chain_exchange(&mut ops, rank, n, self.halo_bytes);
                ops.leave(flux);
                // Update kernel: balanced.
                ops.enter(update).compute(self.update_work).leave(update);
                ops.leave(solve);
                // I/O phase: balanced, with a closing barrier.
                ops.enter(io).compute(self.io_work).barrier().leave(io);
                ops.leave(step);
            });
        }
        pb.build()
    }
}

#[cfg(test)]
mod tests {
    use limba_analysis::hierarchy::{drilldown, RegionTree};
    use limba_mpisim::{MachineConfig, Simulator};
    use limba_stats::dispersion::DispersionKind;
    use limba_trace::region_parents;

    use super::*;

    fn simulate(cfg: &AmrConfig) -> limba_mpisim::SimOutput {
        let program = cfg.build_program().unwrap();
        Simulator::new(MachineConfig::new(cfg.ranks()))
            .run(&program)
            .unwrap()
    }

    #[test]
    fn trace_exposes_the_nested_structure() {
        let out = simulate(&AmrConfig::new(4));
        let parents = region_parents(&out.trace).unwrap();
        // step=0, solve=1, flux=2, update=3, io=4.
        assert_eq!(parents, vec![None, Some(0), Some(1), Some(1), Some(0)]);
    }

    #[test]
    fn drilldown_localizes_the_refined_flux_kernel() {
        let out = simulate(&AmrConfig::new(8).with_refinement(Imbalance::Hotspot {
            rank: 5,
            factor: 5.0,
        }));
        let reduced = out.reduce().unwrap();
        let tree = RegionTree::from_parents(region_parents(&out.trace).unwrap()).unwrap();
        let dd = drilldown(&reduced.measurements, &tree, DispersionKind::Euclidean, 0.5).unwrap();
        let names: Vec<&str> = dd.path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["time step", "solve", "flux"], "path: {names:?}");
    }

    #[test]
    fn balanced_refinement_runs_cleanly() {
        let out = simulate(&AmrConfig::new(4).with_steps(3));
        assert!(out.stats.makespan > 0.0);
        out.trace.validate().unwrap();
    }

    #[test]
    fn zero_ranks_rejected() {
        assert!(AmrConfig::new(0).build_program().is_err());
    }
}
