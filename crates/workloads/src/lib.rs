//! Synthetic message-passing applications for the limba simulator.
//!
//! The paper's case study is "a message passing computational fluid
//! dynamic code" whose measurements cover "7 code regions corresponding to
//! the main loops of the program" with four activities (computation,
//! point-to-point, collective, synchronization). [`cfd`] is a proxy
//! application with exactly that loop/activity structure; the remaining
//! modules provide the "large variety of scientific programs" the paper's
//! future work calls for:
//!
//! * [`stencil`] — a 2-D Jacobi solver with halo exchanges and periodic
//!   residual allreduces;
//! * [`master_worker`] — a task farm with a coordinating rank 0;
//! * [`pipeline`] — a staged dataflow pipeline with a bottleneck stage;
//! * [`irregular`] — a particle-style code with skewed per-rank
//!   populations, alltoall migration, and an optional population *drift*
//!   for evolution studies;
//! * [`fft`] — butterfly stages separated by alltoall transposes;
//! * [`sweep`] — wavefront sweeps whose dependency front idles the chain
//!   ends (structural imbalance without uneven work);
//! * [`amr`] — nested regions (`time step → solve → flux/update`) whose
//!   refinement-driven imbalance hides two levels down, exercising the
//!   hierarchical drill-down.
//!
//! Every workload takes an [`Imbalance`] injector describing how work is
//! (mis)distributed across ranks, so the analysis methodology has known
//! ground truth to recover.
//!
//! # Example
//!
//! ```
//! use limba_mpisim::{MachineConfig, Simulator};
//! use limba_workloads::{cfd::CfdConfig, Imbalance};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = CfdConfig::new(16)
//!     .with_iterations(2)
//!     .with_imbalance(Imbalance::LinearSkew { spread: 0.3 })
//!     .build_program()?;
//! let out = Simulator::new(MachineConfig::new(16)).run(&program)?;
//! assert!(out.stats.makespan > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amr;
pub mod balance;
pub mod cfd;
pub mod faults;
pub mod fft;
pub mod irregular;
pub mod master_worker;
pub mod pipeline;
pub mod stencil;
pub mod sweep;

mod exchange;
mod imbalance;

pub use imbalance::Imbalance;
