//! Ready-made fault plans for chaos experiments on the workloads.
//!
//! A preset is a [`FaultPlan`] template scaled to a rank count and a
//! time *horizon* — normally the makespan of a fault-free run of the
//! same program, so windows and crash times land inside the execution
//! instead of depending on absolute workload-specific timings. The CLI
//! (`limba simulate --faults preset:<name>`) measures the horizon with
//! a clean run first; both runs are deterministic, so the whole recipe
//! reproduces bit-identically.

use limba_mpisim::FaultPlan;

/// Names accepted by [`preset`].
pub const PRESETS: &[&str] = &[
    "straggler",
    "degraded-link",
    "flaky-network",
    "crash",
    "chaos",
];

/// One-line summary per preset, in [`PRESETS`] order — what the CLI
/// prints for `--faults list`.
pub const PRESET_SUMMARIES: &[(&str, &str)] = &[
    (
        "straggler",
        "the middle rank computes at 1/3 speed all run long",
    ),
    (
        "degraded-link",
        "the 0 -> 1 link suffers 8x latency and 1/4 bandwidth through the middle half",
    ),
    (
        "flaky-network",
        "every channel loses 5% of transmission attempts (up to 4 retries)",
    ),
    (
        "crash",
        "the last rank fail-stops halfway through, interrupting its peers",
    ),
    ("chaos", "all of the above at once"),
];

/// Builds the named fault-plan preset for a machine of `ranks` ranks
/// and a run expected to span roughly `[0, horizon]` seconds. Returns
/// `None` for unknown names (see [`PRESETS`]).
///
/// * `straggler` — the middle rank computes at 1/3 speed all run long,
///   the paper's slow-node scenario;
/// * `degraded-link` — the `0 → 1` link suffers 8× latency and 1/4
///   bandwidth through the middle half of the run;
/// * `flaky-network` — every channel loses 5% of transmission attempts
///   (up to 4 retries, exponential backoff);
/// * `crash` — the last rank fail-stops halfway through, truncating its
///   trace and interrupting everyone waiting on it;
/// * `chaos` — all of the above at once.
pub fn preset(name: &str, ranks: usize, horizon: f64) -> Option<FaultPlan> {
    let horizon = if horizon.is_finite() && horizon > 0.0 {
        horizon
    } else {
        1.0
    };
    let mid = ranks / 2;
    let last = ranks.saturating_sub(1);
    let straggler = |p: FaultPlan| p.with_slowdown(mid, 0.0, horizon, 3.0);
    let degraded = |p: FaultPlan| {
        if ranks > 1 {
            p.with_link_fault(0, 1, horizon * 0.25, horizon * 0.75, 8.0, 4.0)
        } else {
            p
        }
    };
    let flaky = |p: FaultPlan| p.with_message_loss(0.05, 4, horizon * 0.01, 2.0);
    let crash = |p: FaultPlan| p.with_crash(last, horizon * 0.5);
    Some(match name {
        "straggler" => straggler(FaultPlan::new(1)),
        "degraded-link" => degraded(FaultPlan::new(2)),
        "flaky-network" => flaky(FaultPlan::new(3)),
        "crash" => crash(FaultPlan::new(4)),
        "chaos" => crash(flaky(degraded(straggler(FaultPlan::new(5))))),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_builds_and_validates() {
        for &name in PRESETS {
            for ranks in [1, 2, 16] {
                let plan =
                    preset(name, ranks, 2.0).unwrap_or_else(|| panic!("preset {name} missing"));
                plan.validate(ranks)
                    .unwrap_or_else(|e| panic!("preset {name} on {ranks} ranks: {e}"));
                // A single-rank machine has no links to degrade.
                if ranks > 1 {
                    assert!(!plan.is_empty(), "preset {name} injects nothing");
                }
            }
        }
        assert!(preset("hurricane", 4, 1.0).is_none());
    }

    #[test]
    fn summaries_cover_every_preset_in_order() {
        let summarized: Vec<&str> = PRESET_SUMMARIES.iter().map(|&(name, _)| name).collect();
        assert_eq!(summarized, PRESETS);
        for &(_, summary) in PRESET_SUMMARIES {
            assert!(!summary.is_empty());
        }
    }

    #[test]
    fn degenerate_horizons_fall_back_to_a_unit_window() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let plan = preset("chaos", 8, bad).unwrap();
            plan.validate(8).unwrap();
        }
    }

    #[test]
    fn presets_perturb_a_real_workload_run() {
        use crate::cfd::CfdConfig;
        use limba_mpisim::{MachineConfig, Simulator};
        let program = CfdConfig::new(8)
            .with_iterations(1)
            .build_program()
            .unwrap();
        let sim = Simulator::new(MachineConfig::new(8));
        let clean = sim.run(&program).unwrap();
        let horizon = clean.stats.makespan;
        let plan = preset("straggler", 8, horizon).unwrap();
        let faulted = sim.run_with_faults(&program, &plan).unwrap();
        assert!(faulted.stats.makespan > clean.stats.makespan);
        assert!(faulted.faults.crashes.is_empty());
        let crashed = sim
            .run_with_faults(&program, &preset("crash", 8, horizon).unwrap())
            .unwrap();
        assert_eq!(crashed.faults.crashes.len(), 1);
        assert_eq!(crashed.faults.crashes[0].0, 7);
    }
}
