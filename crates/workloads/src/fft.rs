//! Parallel FFT-style workload: compute-heavy butterfly stages separated
//! by alltoall transposes.

use limba_mpisim::{Program, ProgramBuilder, SimError};

use crate::Imbalance;

/// Configuration of the FFT workload.
///
/// Per iteration every rank computes its local butterflies, joins a
/// global alltoall transpose, computes the second half, transposes back,
/// and periodically allreduces a checksum. Because the transpose is a
/// global collective, *any* compute imbalance turns into alltoall waiting
/// time — the classic pathology of transpose-based codes.
///
/// # Example
///
/// ```
/// use limba_workloads::fft::FftConfig;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = FftConfig::new(8).with_iterations(3).build_program()?;
/// assert_eq!(program.ranks(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FftConfig {
    ranks: usize,
    iterations: usize,
    stage_work: f64,
    transpose_bytes: u64,
    checksum_every: usize,
    imbalance: Imbalance,
    seed: u64,
}

impl FftConfig {
    /// Creates the workload with defaults (2 iterations, 40 ms per
    /// butterfly stage, 64 KiB per-pair transpose payload, checksum every
    /// 2 iterations).
    pub fn new(ranks: usize) -> Self {
        FftConfig {
            ranks,
            iterations: 2,
            stage_work: 0.04,
            transpose_bytes: 64 << 10,
            checksum_every: 2,
            imbalance: Imbalance::default(),
            seed: 0,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Sets the iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations.max(1);
        self
    }

    /// Sets the nominal per-stage compute time in seconds.
    pub fn with_stage_work(mut self, seconds: f64) -> Self {
        self.stage_work = seconds;
        self
    }

    /// Sets the per-pair transpose payload in bytes.
    pub fn with_transpose_bytes(mut self, bytes: u64) -> Self {
        self.transpose_bytes = bytes;
        self
    }

    /// Sets how often (in iterations) the checksum allreduce happens.
    pub fn with_checksum_every(mut self, every: usize) -> Self {
        self.checksum_every = every.max(1);
        self
    }

    /// Sets the work-distribution injector.
    pub fn with_imbalance(mut self, imbalance: Imbalance) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the seed used by stochastic injectors.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the op program.
    ///
    /// # Errors
    ///
    /// Returns an error when the workload has no ranks.
    pub fn build_program(&self) -> Result<Program, SimError> {
        if self.ranks == 0 {
            return Err(SimError::InvalidConfig {
                detail: "fft workload needs at least one rank".into(),
            });
        }
        let w = self.imbalance.weights(self.ranks, self.seed);
        let mut pb = ProgramBuilder::new(self.ranks);
        let butterfly = pb.add_region("butterfly stages");
        let transpose = pb.add_region("transpose");
        let checksum = pb.add_region("checksum");
        for iter in 0..self.iterations {
            pb.spmd(|rank, mut ops| {
                ops.enter(butterfly)
                    .compute(self.stage_work * w[rank])
                    .leave(butterfly);
                ops.enter(transpose)
                    .alltoall(self.transpose_bytes)
                    .leave(transpose);
                ops.enter(butterfly)
                    .compute(self.stage_work * w[rank])
                    .leave(butterfly);
                ops.enter(transpose)
                    .alltoall(self.transpose_bytes)
                    .leave(transpose);
                if (iter + 1) % self.checksum_every == 0 {
                    ops.enter(checksum).allreduce(16).leave(checksum);
                }
            });
        }
        pb.build()
    }
}

#[cfg(test)]
mod tests {
    use limba_model::{ActivityKind, ProcessorId, RegionId};
    use limba_mpisim::{MachineConfig, Simulator};

    use super::*;

    fn simulate(cfg: &FftConfig) -> limba_mpisim::SimOutput {
        let program = cfg.build_program().unwrap();
        Simulator::new(MachineConfig::new(cfg.ranks()))
            .run(&program)
            .unwrap()
    }

    #[test]
    fn transpose_region_is_pure_collective() {
        let out = simulate(&FftConfig::new(8));
        let m = out.reduce().unwrap().measurements;
        let t = RegionId::new(1);
        assert!(m.performs(t, ActivityKind::Collective));
        assert!(!m.performs(t, ActivityKind::PointToPoint));
    }

    #[test]
    fn compute_skew_surfaces_as_transpose_waiting() {
        let balanced = simulate(&FftConfig::new(8));
        let skewed = simulate(&FftConfig::new(8).with_imbalance(Imbalance::Hotspot {
            rank: 3,
            factor: 3.0,
        }));
        let mb = balanced.reduce().unwrap().measurements;
        let ms = skewed.reduce().unwrap().measurements;
        let t = RegionId::new(1);
        // The hotspot rank arrives last, so everyone else waits: a light
        // rank's collective time grows under skew.
        let light_balanced = mb.time(t, ActivityKind::Collective, ProcessorId::new(0));
        let light_skewed = ms.time(t, ActivityKind::Collective, ProcessorId::new(0));
        assert!(light_skewed > 2.0 * light_balanced);
    }

    #[test]
    fn checksum_cadence_respected() {
        let out = simulate(&FftConfig::new(4).with_iterations(4).with_checksum_every(2));
        let m = out.reduce().unwrap().measurements;
        assert!(m.performs(RegionId::new(2), ActivityKind::Collective));
        assert_eq!(out.stats.collectives, 4 * 2 + 2); // 2 transposes/iter + 2 checksums
    }

    #[test]
    fn zero_ranks_rejected() {
        assert!(FftConfig::new(0).build_program().is_err());
    }
}
