//! Irregular particle-style workload with alltoall migration.

use limba_mpisim::{Program, ProgramBuilder, SimError};

use crate::Imbalance;

/// Configuration of the irregular (particle) workload.
///
/// Every step each rank advances its particle population (compute time
/// proportional to its share), migrates particles with an alltoall, and
/// synchronizes at a barrier. The population split across ranks comes
/// from the [`Imbalance`] injector, modelling clustered particles that a
/// uniform spatial decomposition distributes badly.
///
/// # Example
///
/// ```
/// use limba_workloads::{irregular::IrregularConfig, Imbalance};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = IrregularConfig::new(8)
///     .with_steps(3)
///     .with_imbalance(Imbalance::BlockSkew { heavy: 2, factor: 3.0 })
///     .build_program()?;
/// assert_eq!(program.ranks(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IrregularConfig {
    ranks: usize,
    steps: usize,
    step_work: f64,
    migration_bytes: u64,
    imbalance: Imbalance,
    drift: Option<(Imbalance, f64)>,
    seed: u64,
}

impl IrregularConfig {
    /// Creates the workload for `ranks` ranks with defaults (4 steps,
    /// 30 ms nominal step work, 2 KiB per-pair migration payload).
    pub fn new(ranks: usize) -> Self {
        IrregularConfig {
            ranks,
            steps: 4,
            step_work: 0.03,
            migration_bytes: 2 << 10,
            imbalance: Imbalance::default(),
            drift: None,
            seed: 0,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Sets the number of simulation steps.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps.max(1);
        self
    }

    /// Sets the nominal per-rank compute time per step in seconds.
    pub fn with_step_work(mut self, seconds: f64) -> Self {
        self.step_work = seconds;
        self
    }

    /// Sets the alltoall per-pair payload in bytes.
    pub fn with_migration_bytes(mut self, bytes: u64) -> Self {
        self.migration_bytes = bytes;
        self
    }

    /// Sets the population injector.
    pub fn with_imbalance(mut self, imbalance: Imbalance) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the seed used by stochastic injectors.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Makes the population distribution *drift* toward `target` over the
    /// run: at step `s` the per-rank weights are the blend
    /// `(1 − a)·initial + a·target` with `a = min(1, rate·s)` — particles
    /// progressively clustering into one subdomain. Pair with
    /// `limba_trace::reduce_windows`-style evolution analysis to watch
    /// the imbalance grow.
    pub fn with_drift(mut self, target: Imbalance, rate: f64) -> Self {
        self.drift = Some((target, rate.max(0.0)));
        self
    }

    /// Builds the op program.
    ///
    /// # Errors
    ///
    /// Returns an error when the workload has no ranks.
    pub fn build_program(&self) -> Result<Program, SimError> {
        if self.ranks == 0 {
            return Err(SimError::InvalidConfig {
                detail: "irregular workload needs at least one rank".into(),
            });
        }
        let base = self.imbalance.weights(self.ranks, self.seed);
        let target = self
            .drift
            .as_ref()
            .map(|(t, _)| t.weights(self.ranks, self.seed));
        let mut pb = ProgramBuilder::new(self.ranks);
        let advance = pb.add_region("advance particles");
        let migrate = pb.add_region("migrate");
        for step in 0..self.steps {
            let w: Vec<f64> = match (&target, self.drift.as_ref()) {
                (Some(target), Some((_, rate))) => {
                    let a = (rate * step as f64).min(1.0);
                    base.iter()
                        .zip(target)
                        .map(|(&b, &t)| (1.0 - a) * b + a * t)
                        .collect()
                }
                _ => base.clone(),
            };
            pb.spmd(|rank, mut ops| {
                ops.enter(advance)
                    .compute(self.step_work * w[rank])
                    .leave(advance);
                ops.enter(migrate)
                    .alltoall(self.migration_bytes)
                    .barrier()
                    .leave(migrate);
            });
        }
        pb.build()
    }
}

#[cfg(test)]
mod tests {
    use limba_model::{ActivityKind, ProcessorId, RegionId};
    use limba_mpisim::{MachineConfig, Simulator};
    use limba_stats::dispersion::{DispersionIndex, EuclideanFromMean};

    use super::*;

    fn simulate(cfg: &IrregularConfig) -> limba_mpisim::SimOutput {
        let program = cfg.build_program().unwrap();
        Simulator::new(MachineConfig::new(cfg.ranks()))
            .run(&program)
            .unwrap()
    }

    #[test]
    fn balanced_population_gives_near_zero_dispersion() {
        let out = simulate(&IrregularConfig::new(8));
        let m = out.reduce().unwrap().measurements;
        let s = m
            .processor_slice(RegionId::new(0), ActivityKind::Computation)
            .unwrap();
        let id = EuclideanFromMean.index(s).unwrap();
        assert!(id < 1e-9, "balanced run has dispersion {id}");
    }

    #[test]
    fn skewed_population_raises_dispersion_and_sync_wait() {
        let out = simulate(
            &IrregularConfig::new(8).with_imbalance(Imbalance::BlockSkew {
                heavy: 2,
                factor: 4.0,
            }),
        );
        let m = out.reduce().unwrap().measurements;
        let comp = m
            .processor_slice(RegionId::new(0), ActivityKind::Computation)
            .unwrap();
        let id = EuclideanFromMean.index(comp).unwrap();
        assert!(id > 0.05, "skewed run has dispersion only {id}");
        // Light ranks wait inside the alltoall (the first synchronizing
        // operation after the skewed compute); heavy ranks barely do.
        let heavy_wait = m.time(
            RegionId::new(1),
            ActivityKind::Collective,
            ProcessorId::new(0),
        );
        let light_wait = m.time(
            RegionId::new(1),
            ActivityKind::Collective,
            ProcessorId::new(7),
        );
        assert!(light_wait > heavy_wait, "{light_wait} vs {heavy_wait}");
    }

    #[test]
    fn alltoall_time_is_attributed_to_collective() {
        let out = simulate(&IrregularConfig::new(4));
        let m = out.reduce().unwrap().measurements;
        assert!(m.performs(RegionId::new(1), ActivityKind::Collective));
        assert!(m.performs(RegionId::new(1), ActivityKind::Synchronization));
    }

    #[test]
    fn drift_grows_imbalance_over_steps() {
        use limba_stats::dispersion::{DispersionIndex, EuclideanFromMean};
        let cfg = IrregularConfig::new(8).with_steps(6).with_drift(
            Imbalance::Hotspot {
                rank: 3,
                factor: 6.0,
            },
            0.2,
        );
        let out = simulate(&cfg);
        // Window the trace per step and watch the computation dispersion.
        let windows = limba_trace::reduce_windows(&out.trace, 6).unwrap();
        let ids: Vec<f64> = windows
            .iter()
            .filter_map(|w| {
                w.measurements
                    .processor_slice(RegionId::new(0), ActivityKind::Computation)
                    .and_then(|s| EuclideanFromMean.index(s).ok())
            })
            .collect();
        assert!(ids.len() >= 4);
        assert!(
            ids.last().unwrap() > &(ids[0] + 0.05),
            "imbalance did not grow: {ids:?}"
        );
    }

    #[test]
    fn zero_ranks_rejected() {
        assert!(IrregularConfig::new(0).build_program().is_err());
    }

    #[test]
    fn single_rank_runs() {
        let out = simulate(&IrregularConfig::new(1).with_steps(2));
        assert!(out.stats.makespan > 0.0);
    }
}
