//! Wavefront sweep workload (transport-sweep style).

use limba_mpisim::{Program, ProgramBuilder, SimError};

use crate::Imbalance;

/// Configuration of the wavefront sweep.
///
/// Each sweep propagates a dependency front along the rank chain: rank
/// `p` receives the upstream boundary from `p − 1`, computes its cells,
/// and forwards to `p + 1`; the reverse sweep then runs the other way.
/// Ranks near the ends idle while the front is elsewhere, so even a
/// perfectly balanced decomposition shows *structural* point-to-point
/// waiting — a different imbalance mechanism than uneven work.
///
/// # Example
///
/// ```
/// use limba_workloads::sweep::SweepConfig;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = SweepConfig::new(6).with_sweeps(2).build_program()?;
/// assert_eq!(program.ranks(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    ranks: usize,
    sweeps: usize,
    cell_work: f64,
    boundary_bytes: u64,
    imbalance: Imbalance,
    seed: u64,
}

impl SweepConfig {
    /// Creates the workload with defaults (2 forward/backward sweep
    /// pairs, 20 ms per rank per sweep, 8 KiB boundary payloads).
    pub fn new(ranks: usize) -> Self {
        SweepConfig {
            ranks,
            sweeps: 2,
            cell_work: 0.02,
            boundary_bytes: 8 << 10,
            imbalance: Imbalance::default(),
            seed: 0,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Sets the number of forward/backward sweep pairs.
    pub fn with_sweeps(mut self, sweeps: usize) -> Self {
        self.sweeps = sweeps.max(1);
        self
    }

    /// Sets the nominal per-rank compute time per sweep in seconds.
    pub fn with_cell_work(mut self, seconds: f64) -> Self {
        self.cell_work = seconds;
        self
    }

    /// Sets the boundary payload size in bytes.
    pub fn with_boundary_bytes(mut self, bytes: u64) -> Self {
        self.boundary_bytes = bytes;
        self
    }

    /// Sets the work-distribution injector.
    pub fn with_imbalance(mut self, imbalance: Imbalance) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the seed used by stochastic injectors.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the op program.
    ///
    /// # Errors
    ///
    /// Returns an error when the sweep has fewer than two ranks.
    pub fn build_program(&self) -> Result<Program, SimError> {
        if self.ranks < 2 {
            return Err(SimError::InvalidConfig {
                detail: "sweep needs at least two ranks".into(),
            });
        }
        let n = self.ranks;
        let w = self.imbalance.weights(n, self.seed);
        let mut pb = ProgramBuilder::new(n);
        let east = pb.add_region("sweep east");
        let west = pb.add_region("sweep west");
        for _ in 0..self.sweeps {
            pb.spmd(|rank, mut ops| {
                // Forward (east) sweep: 0 → n−1.
                ops.enter(east);
                if rank > 0 {
                    ops.recv(rank - 1);
                }
                ops.compute(self.cell_work * w[rank]);
                if rank + 1 < n {
                    ops.send(rank + 1, self.boundary_bytes);
                }
                ops.leave(east);
                // Backward (west) sweep: n−1 → 0.
                ops.enter(west);
                if rank + 1 < n {
                    ops.recv(rank + 1);
                }
                ops.compute(self.cell_work * w[rank]);
                if rank > 0 {
                    ops.send(rank - 1, self.boundary_bytes);
                }
                ops.leave(west);
            });
        }
        pb.build()
    }
}

#[cfg(test)]
mod tests {
    use limba_model::{ActivityKind, ProcessorId, RegionId};
    use limba_mpisim::{MachineConfig, Simulator};

    use super::*;

    fn simulate(cfg: &SweepConfig) -> limba_mpisim::SimOutput {
        let program = cfg.build_program().unwrap();
        Simulator::new(MachineConfig::new(cfg.ranks()))
            .run(&program)
            .unwrap()
    }

    #[test]
    fn downstream_ranks_wait_for_the_front() {
        let out = simulate(&SweepConfig::new(6).with_sweeps(1));
        let m = out.reduce().unwrap().measurements;
        let east = RegionId::new(0);
        // In the east sweep the last rank waits the longest.
        let w1 = m.time(east, ActivityKind::PointToPoint, ProcessorId::new(1));
        let w5 = m.time(east, ActivityKind::PointToPoint, ProcessorId::new(5));
        assert!(w5 > w1, "downstream wait {w5} should exceed upstream {w1}");
    }

    #[test]
    fn makespan_scales_with_chain_length_not_just_work() {
        let short = simulate(&SweepConfig::new(2).with_sweeps(1));
        let long = simulate(&SweepConfig::new(8).with_sweeps(1));
        // Total work per rank is identical; the longer chain's critical
        // path is longer because the front must traverse it.
        assert!(long.stats.makespan > 3.0 * short.stats.makespan);
    }

    #[test]
    fn structural_imbalance_shows_without_any_injected_skew() {
        use limba_stats::dispersion::{DispersionIndex, EuclideanFromMean};
        let out = simulate(&SweepConfig::new(8).with_sweeps(1));
        let m = out.reduce().unwrap().measurements;
        let p2p = m
            .processor_slice(RegionId::new(0), ActivityKind::PointToPoint)
            .unwrap();
        // Everyone computes the same, yet p2p waits are highly dispersed.
        let id = EuclideanFromMean.index(p2p).unwrap();
        assert!(id > 0.1, "structural p2p dispersion {id} too small");
    }

    #[test]
    fn single_rank_rejected() {
        assert!(SweepConfig::new(1).build_program().is_err());
    }
}
