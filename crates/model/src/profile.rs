//! Profiles: Table-1-style wall-clock breakdowns derived from measurements.

use crate::{ActivityKind, Measurements, RegionId};

/// Time of one activity within a region, with its share of the region.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityBreakdown {
    /// The activity.
    pub kind: ActivityKind,
    /// `t_ij`, seconds.
    pub seconds: f64,
    /// `t_ij / t_i` — fraction of the region's time.
    pub fraction_of_region: f64,
    /// Whether the region performs this activity at all (the paper's tables
    /// print "-" otherwise).
    pub performed: bool,
}

/// Wall-clock breakdown of one code region — one row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionProfile {
    /// The region this row describes.
    pub region: RegionId,
    /// Region display name.
    pub name: String,
    /// `t_i`, seconds.
    pub seconds: f64,
    /// `t_i / T` — fraction of the program's wall-clock time.
    pub fraction_of_program: f64,
    /// Per-activity breakdown in activity column order.
    pub breakdown: Vec<ActivityBreakdown>,
}

impl RegionProfile {
    /// Time of `kind` in this region, `0.0` when absent.
    pub fn activity_seconds(&self, kind: ActivityKind) -> f64 {
        self.breakdown
            .iter()
            .find(|b| b.kind == kind)
            .map(|b| b.seconds)
            .unwrap_or(0.0)
    }
}

/// Coarse-grain profile of the whole program — the paper's Table 1 plus the
/// program-level activity totals `T_j`.
///
/// # Example
///
/// ```
/// use limba_model::{ActivityKind, MeasurementsBuilder, ProgramProfile};
/// # fn main() -> Result<(), limba_model::ModelError> {
/// let mut b = MeasurementsBuilder::new(2);
/// let r = b.add_region("core");
/// b.record(r, ActivityKind::Computation, 0, 2.0)?;
/// b.record(r, ActivityKind::Computation, 1, 2.0)?;
/// let profile = ProgramProfile::from_measurements(&b.build()?);
/// assert_eq!(profile.total_seconds, 2.0);
/// assert_eq!(profile.heaviest_region().unwrap().name, "core");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramProfile {
    /// `T`: program wall-clock time in seconds.
    pub total_seconds: f64,
    /// One row per region, in region order.
    pub regions: Vec<RegionProfile>,
    /// `(activity, T_j)` pairs in activity column order.
    pub activity_totals: Vec<(ActivityKind, f64)>,
}

impl ProgramProfile {
    /// Computes the profile of `measurements`.
    pub fn from_measurements(measurements: &Measurements) -> Self {
        let total = measurements.total_time();
        let regions = measurements
            .region_ids()
            .map(|r| {
                let t_i = measurements.region_time(r);
                let breakdown = measurements
                    .activities()
                    .iter()
                    .map(|kind| {
                        let t_ij = measurements.region_activity_time(r, kind);
                        ActivityBreakdown {
                            kind,
                            seconds: t_ij,
                            fraction_of_region: if t_i > 0.0 { t_ij / t_i } else { 0.0 },
                            performed: measurements.performs(r, kind),
                        }
                    })
                    .collect();
                RegionProfile {
                    region: r,
                    name: measurements.region_info(r).name().to_string(),
                    seconds: t_i,
                    fraction_of_program: if total > 0.0 { t_i / total } else { 0.0 },
                    breakdown,
                }
            })
            .collect();
        let activity_totals = measurements
            .activities()
            .iter()
            .map(|kind| (kind, measurements.activity_time(kind)))
            .collect();
        ProgramProfile {
            total_seconds: total,
            regions,
            activity_totals,
        }
    }

    /// The *dominant* ("heaviest") activity: the one with the maximum `T_j`.
    ///
    /// Returns `None` only when the profile carries no activities.
    pub fn dominant_activity(&self) -> Option<(ActivityKind, f64)> {
        self.activity_totals
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The heaviest region: the one with the maximum `t_i`.
    pub fn heaviest_region(&self) -> Option<&RegionProfile> {
        self.regions
            .iter()
            .max_by(|a, b| a.seconds.total_cmp(&b.seconds))
    }

    /// Region with the maximum time in `kind` (the paper's "worst" region
    /// for an activity), restricted to regions that perform it.
    pub fn worst_region_for(&self, kind: ActivityKind) -> Option<&RegionProfile> {
        self.regions
            .iter()
            .filter(|r| r.breakdown.iter().any(|b| b.kind == kind && b.performed))
            .max_by(|a, b| {
                a.activity_seconds(kind)
                    .total_cmp(&b.activity_seconds(kind))
            })
    }

    /// Region with the minimum time in `kind` (the paper's "best" region),
    /// restricted to regions that perform it.
    pub fn best_region_for(&self, kind: ActivityKind) -> Option<&RegionProfile> {
        self.regions
            .iter()
            .filter(|r| r.breakdown.iter().any(|b| b.kind == kind && b.performed))
            .min_by(|a, b| {
                a.activity_seconds(kind)
                    .total_cmp(&b.activity_seconds(kind))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MeasurementsBuilder;

    fn sample() -> Measurements {
        let mut b = MeasurementsBuilder::new(2);
        let r0 = b.add_region("heavy");
        let r1 = b.add_region("light");
        for p in 0..2 {
            b.record(r0, ActivityKind::Computation, p, 4.0).unwrap();
            b.record(r0, ActivityKind::Collective, p, 1.0).unwrap();
            b.record(r1, ActivityKind::Computation, p, 0.5).unwrap();
            b.record(r1, ActivityKind::PointToPoint, p, 1.5).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn profile_totals_and_fractions() {
        let p = ProgramProfile::from_measurements(&sample());
        assert!((p.total_seconds - 7.0).abs() < 1e-12);
        assert!((p.regions[0].seconds - 5.0).abs() < 1e-12);
        assert!((p.regions[0].fraction_of_program - 5.0 / 7.0).abs() < 1e-12);
        let comp = &p.regions[0].breakdown[0];
        assert_eq!(comp.kind, ActivityKind::Computation);
        assert!((comp.fraction_of_region - 0.8).abs() < 1e-12);
    }

    #[test]
    fn dominant_activity_is_computation() {
        let p = ProgramProfile::from_measurements(&sample());
        let (kind, t) = p.dominant_activity().unwrap();
        assert_eq!(kind, ActivityKind::Computation);
        assert!((t - 4.5).abs() < 1e-12);
    }

    #[test]
    fn heaviest_region() {
        let p = ProgramProfile::from_measurements(&sample());
        assert_eq!(p.heaviest_region().unwrap().name, "heavy");
    }

    #[test]
    fn worst_and_best_regions_per_activity() {
        let p = ProgramProfile::from_measurements(&sample());
        assert_eq!(
            p.worst_region_for(ActivityKind::Computation).unwrap().name,
            "heavy"
        );
        assert_eq!(
            p.best_region_for(ActivityKind::Computation).unwrap().name,
            "light"
        );
        // Only "light" performs point-to-point, so it is both worst and best.
        assert_eq!(
            p.worst_region_for(ActivityKind::PointToPoint).unwrap().name,
            "light"
        );
        assert_eq!(
            p.best_region_for(ActivityKind::PointToPoint).unwrap().name,
            "light"
        );
        // Nobody performs synchronization.
        assert!(p.worst_region_for(ActivityKind::Synchronization).is_none());
    }

    #[test]
    fn activity_seconds_zero_when_absent() {
        let p = ProgramProfile::from_measurements(&sample());
        assert_eq!(
            p.regions[1].activity_seconds(ActivityKind::Synchronization),
            0.0
        );
    }
}
