//! The central `N × K × P` wall-clock time matrix.

use crate::{ActivityKind, ActivitySet, ModelError, ProcessorId, RegionId, RegionInfo};

/// Wall-clock measurements `t_ijp` of a parallel program.
///
/// `Measurements` stores, for each of `N` code regions, `K` activities and
/// `P` processors, the wall-clock time `t_ijp` that processor `p` spent in
/// activity `j` of region `i`, plus the marginals the methodology is built
/// on:
///
/// * `t_ij` — [`region_activity_time`](Self::region_activity_time), the
///   (per-processor mean) time of activity `j` within region `i`;
/// * `t_i` — [`region_time`](Self::region_time), the time of region `i`;
/// * `T_j` — [`activity_time`](Self::activity_time), the time of activity `j`
///   over the whole program;
/// * `T` — [`total_time`](Self::total_time), the program wall-clock time.
///
/// Marginals use the *mean over processors* convention (see DESIGN.md);
/// because every index of dispersion is scale invariant and every weight is
/// a ratio of marginals, analyses are identical under the sum convention.
///
/// Instances are created through [`MeasurementsBuilder`] or
/// [`Measurements::from_dense`].
#[derive(Debug, Clone, PartialEq)]
pub struct Measurements {
    activities: ActivitySet,
    processors: usize,
    regions: Vec<RegionInfo>,
    /// Row-major `[region][activity][processor]`.
    data: Vec<f64>,
}

impl Measurements {
    /// Creates measurements directly from a dense `N × K × P` buffer laid
    /// out row-major as `[region][activity][processor]`.
    ///
    /// # Errors
    ///
    /// Returns an error when the buffer length does not match
    /// `regions.len() * activities.len() * processors`, when `regions` or
    /// `processors` is empty, or when any value is negative or non-finite.
    pub fn from_dense(
        regions: Vec<RegionInfo>,
        activities: ActivitySet,
        processors: usize,
        data: Vec<f64>,
    ) -> Result<Self, ModelError> {
        if processors == 0 {
            return Err(ModelError::NoProcessors);
        }
        if regions.is_empty() {
            return Err(ModelError::NoRegions);
        }
        let expected = regions.len() * activities.len() * processors;
        if data.len() != expected {
            // Treat a mis-sized buffer as a region range error against the
            // implied shape: it is always a caller bug.
            return Err(ModelError::RegionOutOfRange {
                index: data.len() / (activities.len() * processors).max(1),
                regions: regions.len(),
            });
        }
        for &v in &data {
            if !v.is_finite() || v < 0.0 {
                return Err(ModelError::InvalidTime { value: v });
            }
        }
        Ok(Measurements {
            activities,
            processors,
            regions,
            data,
        })
    }

    fn offset(&self, region: usize, column: usize, proc: usize) -> usize {
        (region * self.activities.len() + column) * self.processors + proc
    }

    /// Number of code regions `N`.
    pub fn regions(&self) -> usize {
        self.regions.len()
    }

    /// Number of processors `P`.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The ordered activity set (the `K` axis).
    pub fn activities(&self) -> &ActivitySet {
        &self.activities
    }

    /// Metadata of region `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn region_info(&self, region: RegionId) -> &RegionInfo {
        &self.regions[region.index()]
    }

    /// Iterates over all region ids in index order.
    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> {
        (0..self.regions()).map(RegionId::new)
    }

    /// Iterates over all processor ids in index order.
    pub fn processor_ids(&self) -> impl Iterator<Item = ProcessorId> {
        (0..self.processors).map(ProcessorId::new)
    }

    /// `t_ijp`: wall-clock time of processor `proc` in activity `kind` of
    /// `region`. Returns `0.0` when `kind` is not part of the activity set.
    ///
    /// # Panics
    ///
    /// Panics if `region` or `proc` is out of range.
    pub fn time(&self, region: RegionId, kind: ActivityKind, proc: ProcessorId) -> f64 {
        assert!(region.index() < self.regions(), "region out of range");
        assert!(proc.index() < self.processors, "processor out of range");
        match self.activities.column(kind) {
            Some(col) => self.data[self.offset(region.index(), col, proc.index())],
            None => 0.0,
        }
    }

    /// The per-processor times of one `(region, activity)` cell as a slice
    /// of length `P` — the data set whose spread the indices of dispersion
    /// measure. Returns `None` when `kind` is not part of the activity set.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn processor_slice(&self, region: RegionId, kind: ActivityKind) -> Option<&[f64]> {
        assert!(region.index() < self.regions(), "region out of range");
        let col = self.activities.column(kind)?;
        let start = self.offset(region.index(), col, 0);
        Some(&self.data[start..start + self.processors])
    }

    /// `t_ij`: time of activity `kind` within `region` (mean over processors).
    pub fn region_activity_time(&self, region: RegionId, kind: ActivityKind) -> f64 {
        match self.processor_slice(region, kind) {
            Some(s) => s.iter().sum::<f64>() / self.processors as f64,
            None => 0.0,
        }
    }

    /// `t_i`: time of `region` summed over its activities.
    pub fn region_time(&self, region: RegionId) -> f64 {
        self.activities
            .iter()
            .map(|k| self.region_activity_time(region, k))
            .sum()
    }

    /// `T_j`: time of activity `kind` summed over all regions.
    pub fn activity_time(&self, kind: ActivityKind) -> f64 {
        self.region_ids()
            .map(|r| self.region_activity_time(r, kind))
            .sum()
    }

    /// `T`: wall-clock time of the whole program.
    pub fn total_time(&self) -> f64 {
        self.region_ids().map(|r| self.region_time(r)).sum()
    }

    /// Wall-clock time processor `proc` spent in `region`, summed over
    /// activities — the quantity behind "processor 2 … a wall clock time
    /// equal to 15.93 seconds" in the paper's processor view.
    pub fn processor_region_time(&self, region: RegionId, proc: ProcessorId) -> f64 {
        self.activities
            .iter()
            .map(|k| self.time(region, k, proc))
            .sum()
    }

    /// Total wall-clock time of processor `proc` over the whole program.
    pub fn processor_time(&self, proc: ProcessorId) -> f64 {
        self.region_ids()
            .map(|r| self.processor_region_time(r, proc))
            .sum()
    }

    /// Returns `true` when `region` performs `kind` at all (any processor
    /// spent a positive time in it). The paper's tables print "-" for cells
    /// where an activity is not performed.
    pub fn performs(&self, region: RegionId, kind: ActivityKind) -> bool {
        self.processor_slice(region, kind)
            .map(|s| s.iter().any(|&v| v > 0.0))
            .unwrap_or(false)
    }

    /// The region's times across activities for one processor, in activity
    /// column order — the vector standardized by the processor view.
    pub fn activity_vector(&self, region: RegionId, proc: ProcessorId) -> Vec<f64> {
        self.activities
            .iter()
            .map(|k| self.time(region, k, proc))
            .collect()
    }
}

/// Incremental builder of [`Measurements`].
///
/// Times recorded for the same `(region, activity, processor)` cell
/// accumulate, which matches how instrumentation attributes many intervals
/// to the same cell.
///
/// # Example
///
/// ```
/// use limba_model::{ActivityKind, MeasurementsBuilder};
/// # fn main() -> Result<(), limba_model::ModelError> {
/// let mut b = MeasurementsBuilder::new(4);
/// let r = b.add_region("loop 1");
/// for p in 0..4 {
///     b.record(r, ActivityKind::Computation, p, 1.0 + p as f64 * 0.1)?;
/// }
/// let m = b.build()?;
/// assert_eq!(m.processors(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MeasurementsBuilder {
    activities: ActivitySet,
    processors: usize,
    regions: Vec<RegionInfo>,
    data: Vec<f64>,
}

impl MeasurementsBuilder {
    /// Creates a builder for `processors` processors with the paper's
    /// standard four activities.
    pub fn new(processors: usize) -> Self {
        MeasurementsBuilder::with_activities(processors, ActivitySet::standard())
    }

    /// Creates a builder with an explicit activity set.
    pub fn with_activities(processors: usize, activities: ActivitySet) -> Self {
        MeasurementsBuilder {
            activities,
            processors,
            regions: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Registers a new code region and returns its id.
    pub fn add_region(&mut self, name: impl Into<String>) -> RegionId {
        self.add_region_info(RegionInfo::new(name))
    }

    /// Registers a new code region with full metadata and returns its id.
    pub fn add_region_info(&mut self, info: RegionInfo) -> RegionId {
        let id = RegionId::new(self.regions.len());
        self.regions.push(info);
        self.data.extend(std::iter::repeat_n(
            0.0,
            self.activities.len() * self.processors,
        ));
        id
    }

    /// Number of regions registered so far.
    pub fn regions(&self) -> usize {
        self.regions.len()
    }

    /// Adds `seconds` to the `(region, kind, proc)` cell.
    ///
    /// # Errors
    ///
    /// Returns an error when the region or processor is out of range, the
    /// activity is not in the builder's set, or `seconds` is negative or
    /// non-finite.
    pub fn record(
        &mut self,
        region: RegionId,
        kind: ActivityKind,
        proc: usize,
        seconds: f64,
    ) -> Result<(), ModelError> {
        let idx = self.cell_index(region, kind, proc, seconds)?;
        self.data[idx] += seconds;
        Ok(())
    }

    /// Overwrites the `(region, kind, proc)` cell with `seconds`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`record`](Self::record).
    pub fn set(
        &mut self,
        region: RegionId,
        kind: ActivityKind,
        proc: usize,
        seconds: f64,
    ) -> Result<(), ModelError> {
        let idx = self.cell_index(region, kind, proc, seconds)?;
        self.data[idx] = seconds;
        Ok(())
    }

    fn cell_index(
        &self,
        region: RegionId,
        kind: ActivityKind,
        proc: usize,
        seconds: f64,
    ) -> Result<usize, ModelError> {
        if region.index() >= self.regions.len() {
            return Err(ModelError::RegionOutOfRange {
                index: region.index(),
                regions: self.regions.len(),
            });
        }
        if proc >= self.processors {
            return Err(ModelError::ProcessorOutOfRange {
                index: proc,
                processors: self.processors,
            });
        }
        let col = self
            .activities
            .column(kind)
            .ok_or(ModelError::UnknownActivity { kind })?;
        if !seconds.is_finite() || seconds < 0.0 {
            return Err(ModelError::InvalidTime { value: seconds });
        }
        Ok((region.index() * self.activities.len() + col) * self.processors + proc)
    }

    /// Finalizes the builder into a [`Measurements`] matrix.
    ///
    /// # Errors
    ///
    /// Returns an error when no regions were registered or the builder was
    /// created with zero processors.
    pub fn build(self) -> Result<Measurements, ModelError> {
        Measurements::from_dense(self.regions, self.activities, self.processors, self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measurements {
        let mut b = MeasurementsBuilder::new(2);
        let r0 = b.add_region("loop 1");
        let r1 = b.add_region("loop 2");
        b.record(r0, ActivityKind::Computation, 0, 1.0).unwrap();
        b.record(r0, ActivityKind::Computation, 1, 3.0).unwrap();
        b.record(r0, ActivityKind::Collective, 0, 0.5).unwrap();
        b.record(r0, ActivityKind::Collective, 1, 0.5).unwrap();
        b.record(r1, ActivityKind::PointToPoint, 0, 2.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn marginals_follow_mean_convention() {
        let m = sample();
        let r0 = RegionId::new(0);
        let r1 = RegionId::new(1);
        assert_eq!(m.region_activity_time(r0, ActivityKind::Computation), 2.0);
        assert_eq!(m.region_activity_time(r0, ActivityKind::Collective), 0.5);
        assert_eq!(m.region_time(r0), 2.5);
        assert_eq!(m.region_time(r1), 1.0);
        assert_eq!(m.activity_time(ActivityKind::Computation), 2.0);
        assert_eq!(m.total_time(), 3.5);
    }

    #[test]
    fn per_processor_accessors() {
        let m = sample();
        let r0 = RegionId::new(0);
        assert_eq!(
            m.time(r0, ActivityKind::Computation, ProcessorId::new(1)),
            3.0
        );
        assert_eq!(m.processor_region_time(r0, ProcessorId::new(0)), 1.5);
        assert_eq!(m.processor_region_time(r0, ProcessorId::new(1)), 3.5);
        assert_eq!(m.processor_time(ProcessorId::new(0)), 3.5);
        assert_eq!(
            m.processor_slice(r0, ActivityKind::Computation).unwrap(),
            &[1.0, 3.0]
        );
    }

    #[test]
    fn performs_matches_table_dashes() {
        let m = sample();
        let r0 = RegionId::new(0);
        let r1 = RegionId::new(1);
        assert!(m.performs(r0, ActivityKind::Computation));
        assert!(!m.performs(r0, ActivityKind::PointToPoint));
        assert!(m.performs(r1, ActivityKind::PointToPoint));
        assert!(!m.performs(r1, ActivityKind::Synchronization));
    }

    #[test]
    fn record_accumulates_and_set_overwrites() {
        let mut b = MeasurementsBuilder::new(1);
        let r = b.add_region("r");
        b.record(r, ActivityKind::Io, 0, 1.0).unwrap_err(); // Io not in standard set
        b.record(r, ActivityKind::Computation, 0, 1.0).unwrap();
        b.record(r, ActivityKind::Computation, 0, 2.0).unwrap();
        b.set(r, ActivityKind::Synchronization, 0, 9.0).unwrap();
        b.set(r, ActivityKind::Synchronization, 0, 4.0).unwrap();
        let m = b.build().unwrap();
        let r = RegionId::new(0);
        assert_eq!(
            m.time(r, ActivityKind::Computation, ProcessorId::new(0)),
            3.0
        );
        assert_eq!(
            m.time(r, ActivityKind::Synchronization, ProcessorId::new(0)),
            4.0
        );
    }

    #[test]
    fn builder_validates_inputs() {
        let mut b = MeasurementsBuilder::new(2);
        let r = b.add_region("r");
        assert!(matches!(
            b.record(RegionId::new(5), ActivityKind::Computation, 0, 1.0),
            Err(ModelError::RegionOutOfRange { .. })
        ));
        assert!(matches!(
            b.record(r, ActivityKind::Computation, 2, 1.0),
            Err(ModelError::ProcessorOutOfRange { .. })
        ));
        assert!(matches!(
            b.record(r, ActivityKind::Computation, 0, -1.0),
            Err(ModelError::InvalidTime { .. })
        ));
        assert!(matches!(
            b.record(r, ActivityKind::Computation, 0, f64::NAN),
            Err(ModelError::InvalidTime { .. })
        ));
    }

    #[test]
    fn build_requires_regions_and_processors() {
        assert!(matches!(
            MeasurementsBuilder::new(2).build(),
            Err(ModelError::NoRegions)
        ));
        let mut b = MeasurementsBuilder::new(0);
        b.add_region("r");
        assert!(matches!(b.build(), Err(ModelError::NoProcessors)));
    }

    #[test]
    fn from_dense_validates_shape_and_values() {
        let regions = vec![RegionInfo::new("r")];
        let acts = ActivitySet::standard();
        assert!(Measurements::from_dense(regions.clone(), acts.clone(), 2, vec![0.0; 7]).is_err());
        let mut good = vec![0.0; 8];
        good[0] = -1.0;
        assert!(matches!(
            Measurements::from_dense(regions.clone(), acts.clone(), 2, good),
            Err(ModelError::InvalidTime { .. })
        ));
        assert!(Measurements::from_dense(regions, acts, 2, vec![0.0; 8]).is_ok());
    }

    #[test]
    fn activity_vector_is_in_column_order() {
        let m = sample();
        let v = m.activity_vector(RegionId::new(0), ProcessorId::new(0));
        assert_eq!(v, vec![1.0, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn unknown_activity_reads_as_zero() {
        let m = sample();
        assert_eq!(
            m.time(RegionId::new(0), ActivityKind::Io, ProcessorId::new(0)),
            0.0
        );
        assert!(m
            .processor_slice(RegionId::new(0), ActivityKind::Io)
            .is_none());
        assert_eq!(
            m.region_activity_time(RegionId::new(0), ActivityKind::Io),
            0.0
        );
    }

    #[test]
    fn clone_round_trip() {
        // Wire round-trips are covered by the trace codec tests; here we
        // only pin that a deep clone compares equal.
        let m = sample();
        let m2 = m.clone();
        assert_eq!(m, m2);
    }
}
