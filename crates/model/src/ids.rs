//! Strongly typed identifiers for regions and processors.

use std::fmt;

/// Identifier of a code region (loop, routine, statement block).
///
/// Region ids are dense indices handed out by
/// [`MeasurementsBuilder::add_region`](crate::MeasurementsBuilder::add_region)
/// in registration order, so they can be used to index per-region arrays.
///
/// # Example
///
/// ```
/// use limba_model::RegionId;
/// let r = RegionId::new(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "region#3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(usize);

impl RegionId {
    /// Creates a region id from a dense index.
    pub fn new(index: usize) -> Self {
        RegionId(index)
    }

    /// Returns the dense index of this region.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

impl From<usize> for RegionId {
    fn from(index: usize) -> Self {
        RegionId(index)
    }
}

/// Identifier of an allocated processor (an MPI rank in the paper's setting).
///
/// # Example
///
/// ```
/// use limba_model::ProcessorId;
/// let p = ProcessorId::new(0);
/// assert_eq!(p.to_string(), "proc#0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessorId(usize);

impl ProcessorId {
    /// Creates a processor id from a dense index.
    pub fn new(index: usize) -> Self {
        ProcessorId(index)
    }

    /// Returns the dense index of this processor.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

impl From<usize> for ProcessorId {
    fn from(index: usize) -> Self {
        ProcessorId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_id_round_trips_index() {
        for i in [0usize, 1, 7, 1024] {
            assert_eq!(RegionId::new(i).index(), i);
            assert_eq!(RegionId::from(i), RegionId::new(i));
        }
    }

    #[test]
    fn processor_id_round_trips_index() {
        for i in [0usize, 15, 255] {
            assert_eq!(ProcessorId::new(i).index(), i);
            assert_eq!(ProcessorId::from(i), ProcessorId::new(i));
        }
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(RegionId::new(1) < RegionId::new(2));
        assert!(ProcessorId::new(0) < ProcessorId::new(9));
    }

    #[test]
    fn display_is_nonempty_and_distinct() {
        assert_eq!(RegionId::new(5).to_string(), "region#5");
        assert_eq!(ProcessorId::new(5).to_string(), "proc#5");
        assert_ne!(
            RegionId::new(5).to_string(),
            ProcessorId::new(5).to_string()
        );
    }
}
