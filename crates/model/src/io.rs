//! Text persistence of measurement matrices.
//!
//! Tracefiles capture *events*; sometimes only the reduced matrix is
//! worth keeping (the paper's tables are exactly such matrices). The
//! format is line oriented and diff friendly:
//!
//! ```text
//! limba-measurements v1
//! processors 2
//! activities computation point-to-point
//! region 0 solver loop
//! cell 0 computation 1.5 2.5
//! ```
//!
//! `cell` lines carry one value per processor; unmentioned cells are
//! zero.

use std::io::{BufRead, BufReader, Read, Write};

use crate::{ActivityKind, ActivitySet, Measurements, MeasurementsBuilder, ModelError, RegionId};

const HEADER: &str = "limba-measurements v1";

/// Error raised while encoding or decoding measurement files.
#[derive(Debug)]
pub enum MeasurementsIoError {
    /// The text being decoded was malformed.
    Malformed {
        /// Description of the problem.
        detail: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The decoded data violated model invariants.
    Model(ModelError),
}

impl std::fmt::Display for MeasurementsIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasurementsIoError::Malformed { detail } => {
                write!(f, "malformed measurements file: {detail}")
            }
            MeasurementsIoError::Io(e) => write!(f, "measurements i/o failed: {e}"),
            MeasurementsIoError::Model(e) => write!(f, "invalid measurements data: {e}"),
        }
    }
}

impl std::error::Error for MeasurementsIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MeasurementsIoError::Io(e) => Some(e),
            MeasurementsIoError::Model(e) => Some(e),
            MeasurementsIoError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for MeasurementsIoError {
    fn from(e: std::io::Error) -> Self {
        MeasurementsIoError::Io(e)
    }
}

impl From<ModelError> for MeasurementsIoError {
    fn from(e: ModelError) -> Self {
        MeasurementsIoError::Model(e)
    }
}

fn malformed(detail: impl Into<String>) -> MeasurementsIoError {
    MeasurementsIoError::Malformed {
        detail: detail.into(),
    }
}

/// Writes `measurements` in the text format.
///
/// # Errors
///
/// Propagates I/O failures of `writer`.
pub fn write<W: Write>(
    measurements: &Measurements,
    mut writer: W,
) -> Result<(), MeasurementsIoError> {
    writeln!(writer, "{HEADER}")?;
    writeln!(writer, "processors {}", measurements.processors())?;
    let labels: Vec<&str> = measurements
        .activities()
        .iter()
        .map(|k| k.label())
        .collect();
    writeln!(writer, "activities {}", labels.join(" "))?;
    for r in measurements.region_ids() {
        writeln!(
            writer,
            "region {} {}",
            r.index(),
            measurements.region_info(r).name()
        )?;
    }
    for r in measurements.region_ids() {
        for kind in measurements.activities().iter() {
            let slice = measurements
                .processor_slice(r, kind)
                .expect("kind is in the activity set");
            if slice.iter().any(|&v| v > 0.0) {
                let values: Vec<String> = slice.iter().map(|v| v.to_string()).collect();
                writeln!(
                    writer,
                    "cell {} {} {}",
                    r.index(),
                    kind.label(),
                    values.join(" ")
                )?;
            }
        }
    }
    Ok(())
}

/// Encodes `measurements` to a `String`.
pub fn to_string(measurements: &Measurements) -> String {
    let mut buf = Vec::new();
    write(measurements, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("codec emits utf-8")
}

/// Reads measurements in the text format.
///
/// # Errors
///
/// Returns [`MeasurementsIoError::Malformed`] on syntax errors, model
/// errors for invalid values, and propagates I/O failures.
pub fn read<R: Read>(reader: R) -> Result<Measurements, MeasurementsIoError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| malformed("empty input"))??;
    if header.trim() != HEADER {
        return Err(malformed(format!("bad header {header:?}")));
    }
    let processors: usize = lines
        .next()
        .ok_or_else(|| malformed("missing processors line"))??
        .strip_prefix("processors ")
        .ok_or_else(|| malformed("expected `processors N`"))?
        .trim()
        .parse()
        .map_err(|e| malformed(format!("bad processor count: {e}")))?;
    let activities_line = lines
        .next()
        .ok_or_else(|| malformed("missing activities line"))??;
    let labels = activities_line
        .strip_prefix("activities ")
        .ok_or_else(|| malformed("expected `activities …`"))?;
    let kinds: Vec<ActivityKind> = labels
        .split_whitespace()
        .map(|l| {
            ActivityKind::parse_label(l).ok_or_else(|| malformed(format!("unknown activity {l:?}")))
        })
        .collect::<Result<_, _>>()?;
    let mut builder = MeasurementsBuilder::with_activities(processors, ActivitySet::new(kinds));

    for line in lines {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("region ") {
            let (idx, name) = rest
                .split_once(' ')
                .ok_or_else(|| malformed(format!("bad region line {line:?}")))?;
            let idx: usize = idx
                .parse()
                .map_err(|e| malformed(format!("bad region index: {e}")))?;
            if idx != builder.regions() {
                return Err(malformed(format!(
                    "region indices must be dense, got {idx}"
                )));
            }
            builder.add_region(name);
        } else if let Some(rest) = line.strip_prefix("cell ") {
            let mut parts = rest.split_whitespace();
            let region: usize = parts
                .next()
                .ok_or_else(|| malformed("cell missing region"))?
                .parse()
                .map_err(|e| malformed(format!("bad cell region: {e}")))?;
            let label = parts
                .next()
                .ok_or_else(|| malformed("cell missing activity"))?;
            let kind = ActivityKind::parse_label(label)
                .ok_or_else(|| malformed(format!("unknown activity {label:?}")))?;
            let values: Vec<f64> = parts
                .map(|v| {
                    v.parse()
                        .map_err(|e| malformed(format!("bad cell value: {e}")))
                })
                .collect::<Result<_, _>>()?;
            if values.len() != processors {
                return Err(malformed(format!(
                    "cell has {} values for {processors} processors",
                    values.len()
                )));
            }
            for (p, v) in values.into_iter().enumerate() {
                builder.set(RegionId::new(region), kind, p, v)?;
            }
        } else {
            return Err(malformed(format!("unrecognized line {line:?}")));
        }
    }
    Ok(builder.build()?)
}

/// Decodes measurements from a string.
///
/// # Errors
///
/// Same conditions as [`read`].
pub fn from_str(s: &str) -> Result<Measurements, MeasurementsIoError> {
    read(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessorId;

    fn sample() -> Measurements {
        let mut b = MeasurementsBuilder::new(3);
        let r0 = b.add_region("solver loop");
        let r1 = b.add_region("halo exchange");
        b.record(r0, ActivityKind::Computation, 0, 1.5).unwrap();
        b.record(r0, ActivityKind::Computation, 2, 2.25).unwrap();
        b.record(r1, ActivityKind::PointToPoint, 1, 0.125).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_matrix() {
        let m = sample();
        let text = to_string(&m);
        let back = from_str(&text).unwrap();
        assert_eq!(m, back);
        assert!(text.contains("solver loop"));
    }

    #[test]
    fn zero_cells_are_omitted_from_the_encoding() {
        let text = to_string(&sample());
        // Only two cells carry time.
        assert_eq!(
            text.matches("\ncell ").count() + usize::from(text.starts_with("cell ")),
            2
        );
    }

    #[test]
    fn paper_matrix_round_trips_exactly() {
        // Exercise a full-sized, high-precision matrix.
        let mut b = MeasurementsBuilder::new(4);
        let r = b.add_region("precise");
        for p in 0..4 {
            b.record(r, ActivityKind::Synchronization, p, 0.1 + p as f64 * 1e-13)
                .unwrap();
        }
        let m = b.build().unwrap();
        let back = from_str(&to_string(&m)).unwrap();
        for p in 0..4 {
            assert_eq!(
                m.time(r, ActivityKind::Synchronization, ProcessorId::new(p)),
                back.time(r, ActivityKind::Synchronization, ProcessorId::new(p)),
                "shortest-round-trip float formatting must be lossless"
            );
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_str("").is_err());
        assert!(from_str("wrong\n").is_err());
        assert!(from_str("limba-measurements v1\nnope\n").is_err());
        assert!(from_str("limba-measurements v1\nprocessors 1\nactivities warp\n").is_err());
        let ok_prefix = "limba-measurements v1\nprocessors 2\nactivities computation\nregion 0 r\n";
        assert!(from_str(&format!("{ok_prefix}cell 0 computation 1.0\n")).is_err()); // wrong arity
        assert!(from_str(&format!("{ok_prefix}cell 0 io 1.0 2.0\n")).is_err()); // kind not in set
        assert!(from_str(&format!("{ok_prefix}cell 0 computation 1.0 -2.0\n")).is_err()); // negative
        assert!(from_str(&format!("{ok_prefix}region 5 x\n")).is_err()); // sparse index
        assert!(from_str(&format!("{ok_prefix}mystery\n")).is_err());
        // Comments and blanks are fine.
        assert!(from_str(&format!(
            "{ok_prefix}\n# comment\ncell 0 computation 1.0 2.0\n"
        ))
        .is_ok());
    }
}
