//! Operations on measurement matrices: merging, scaling, restriction.

use crate::{Measurements, MeasurementsBuilder, ModelError, RegionId};

impl Measurements {
    /// Sums several matrices cell by cell — e.g. aggregating the windows
    /// of a windowed reduction back into a whole-run matrix, or pooling
    /// repeated runs of the same program.
    ///
    /// All inputs must agree on regions (names), activities, and
    /// processor count.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoRegions`] for an empty input set and shape
    /// errors when the matrices disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use limba_model::{ActivityKind, Measurements, MeasurementsBuilder};
    /// # fn main() -> Result<(), limba_model::ModelError> {
    /// let mut b = MeasurementsBuilder::new(2);
    /// let r = b.add_region("r");
    /// b.record(r, ActivityKind::Computation, 0, 1.0)?;
    /// let m = b.build()?;
    /// let sum = Measurements::merged(&[&m, &m, &m])?;
    /// assert_eq!(sum.time(r, ActivityKind::Computation, 0.into()), 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn merged(parts: &[&Measurements]) -> Result<Measurements, ModelError> {
        let first = parts.first().ok_or(ModelError::NoRegions)?;
        for part in &parts[1..] {
            if part.regions() != first.regions() {
                return Err(ModelError::RegionOutOfRange {
                    index: part.regions(),
                    regions: first.regions(),
                });
            }
            if part.processors() != first.processors() {
                return Err(ModelError::ProcessorOutOfRange {
                    index: part.processors(),
                    processors: first.processors(),
                });
            }
            if part.activities() != first.activities() {
                return Err(ModelError::UnknownActivity {
                    kind: part
                        .activities()
                        .iter()
                        .find(|&k| !first.activities().contains(k))
                        .unwrap_or_else(|| {
                            first
                                .activities()
                                .iter()
                                .next()
                                .expect("non-empty activity set")
                        }),
                });
            }
        }
        let mut b =
            MeasurementsBuilder::with_activities(first.processors(), first.activities().clone());
        for r in first.region_ids() {
            b.add_region(first.region_info(r).name().to_string());
        }
        for part in parts {
            for r in part.region_ids() {
                for kind in part.activities().iter() {
                    for p in part.processor_ids() {
                        let t = part.time(r, kind, p);
                        if t > 0.0 {
                            b.record(r, kind, p.index(), t)?;
                        }
                    }
                }
            }
        }
        b.build()
    }

    /// A copy with every time multiplied by `factor` (e.g. normalizing
    /// per-iteration).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTime`] for a negative or non-finite
    /// factor.
    pub fn scaled(&self, factor: f64) -> Result<Measurements, ModelError> {
        if !factor.is_finite() || factor < 0.0 {
            return Err(ModelError::InvalidTime { value: factor });
        }
        let mut b =
            MeasurementsBuilder::with_activities(self.processors(), self.activities().clone());
        for r in self.region_ids() {
            b.add_region(self.region_info(r).name().to_string());
        }
        for r in self.region_ids() {
            for kind in self.activities().iter() {
                for p in self.processor_ids() {
                    b.set(r, kind, p.index(), self.time(r, kind, p) * factor)?;
                }
            }
        }
        b.build()
    }

    /// A sub-matrix containing only `regions` (re-indexed densely, in the
    /// given order) — for focusing an analysis on a subset of the code.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RegionOutOfRange`] for unknown regions and
    /// [`ModelError::NoRegions`] for an empty selection.
    pub fn restricted(&self, regions: &[RegionId]) -> Result<Measurements, ModelError> {
        if regions.is_empty() {
            return Err(ModelError::NoRegions);
        }
        for &r in regions {
            if r.index() >= self.regions() {
                return Err(ModelError::RegionOutOfRange {
                    index: r.index(),
                    regions: self.regions(),
                });
            }
        }
        let mut b =
            MeasurementsBuilder::with_activities(self.processors(), self.activities().clone());
        for &r in regions {
            b.add_region(self.region_info(r).name().to_string());
        }
        for (new_idx, &r) in regions.iter().enumerate() {
            for kind in self.activities().iter() {
                for p in self.processor_ids() {
                    b.set(
                        RegionId::new(new_idx),
                        kind,
                        p.index(),
                        self.time(r, kind, p),
                    )?;
                }
            }
        }
        b.build()
    }

    /// Returns `true` when `other` has the same shape: same region names,
    /// activity set, and processor count.
    pub fn same_shape(&self, other: &Measurements) -> bool {
        self.regions() == other.regions()
            && self.processors() == other.processors()
            && self.activities() == other.activities()
            && self
                .region_ids()
                .all(|r| self.region_info(r).name() == other.region_info(r).name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActivityKind, ProcessorId};

    fn sample(scale: f64) -> Measurements {
        let mut b = MeasurementsBuilder::new(2);
        let r0 = b.add_region("a");
        let r1 = b.add_region("b");
        b.record(r0, ActivityKind::Computation, 0, 1.0 * scale)
            .unwrap();
        b.record(r0, ActivityKind::Computation, 1, 3.0 * scale)
            .unwrap();
        b.record(r1, ActivityKind::Collective, 0, 0.5 * scale)
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn merged_sums_cells() {
        let a = sample(1.0);
        let b = sample(2.0);
        let m = Measurements::merged(&[&a, &b]).unwrap();
        assert_eq!(
            m.time(
                RegionId::new(0),
                ActivityKind::Computation,
                ProcessorId::new(1)
            ),
            9.0
        );
        assert_eq!(
            m.time(
                RegionId::new(1),
                ActivityKind::Collective,
                ProcessorId::new(0)
            ),
            1.5
        );
        assert!(m.same_shape(&a));
    }

    #[test]
    fn merged_rejects_shape_mismatches() {
        let a = sample(1.0);
        let mut b = MeasurementsBuilder::new(3); // different proc count
        b.add_region("a");
        b.add_region("b");
        let other = b.build().unwrap();
        assert!(Measurements::merged(&[&a, &other]).is_err());
        assert!(Measurements::merged(&[]).is_err());
    }

    #[test]
    fn scaled_multiplies_everything() {
        let m = sample(1.0).scaled(2.0).unwrap();
        assert_eq!(m, sample(2.0));
        assert!(sample(1.0).scaled(-1.0).is_err());
        assert!(sample(1.0).scaled(f64::NAN).is_err());
        // Scaling by zero produces an all-zero (but structurally valid) matrix.
        let z = sample(1.0).scaled(0.0).unwrap();
        assert_eq!(z.total_time(), 0.0);
    }

    #[test]
    fn restricted_selects_and_reindexes() {
        let m = sample(1.0);
        let only_b = m.restricted(&[RegionId::new(1)]).unwrap();
        assert_eq!(only_b.regions(), 1);
        assert_eq!(only_b.region_info(RegionId::new(0)).name(), "b");
        assert_eq!(
            only_b.time(
                RegionId::new(0),
                ActivityKind::Collective,
                ProcessorId::new(0)
            ),
            0.5
        );
        // Order is caller-controlled.
        let swapped = m.restricted(&[RegionId::new(1), RegionId::new(0)]).unwrap();
        assert_eq!(swapped.region_info(RegionId::new(0)).name(), "b");
        assert_eq!(swapped.region_info(RegionId::new(1)).name(), "a");
        assert!(m.restricted(&[]).is_err());
        assert!(m.restricted(&[RegionId::new(9)]).is_err());
    }

    #[test]
    fn same_shape_checks_names() {
        let a = sample(1.0);
        let mut b = MeasurementsBuilder::new(2);
        b.add_region("a");
        b.add_region("RENAMED");
        let renamed = b.build().unwrap();
        assert!(!a.same_shape(&renamed));
        assert!(a.same_shape(&sample(5.0)));
    }
}
