//! Measurement model for parallel-program performance analysis.
//!
//! This crate defines the data model that the rest of the `limba` suite is
//! built on: a parallel program is observed as a set of *code regions*
//! (loops, routines, statements), each performing a set of *activities*
//! (computation, communication, synchronization, …) on a set of allocated
//! *processors*. The central type is [`Measurements`], a dense
//! `N × K × P` matrix of wall-clock times `t_ijp` — the time processor `p`
//! spent in activity `j` of code region `i` — together with its marginals
//! (`t_ij`, `t_i`, `T_j`, `T`) and derived [`ProgramProfile`] breakdowns.
//!
//! Counting parameters (message counts, bytes, I/O operations, cache
//! misses) are carried by the parallel [`counting::CountMatrix`] type.
//!
//! # Example
//!
//! ```
//! use limba_model::{ActivityKind, MeasurementsBuilder};
//!
//! # fn main() -> Result<(), limba_model::ModelError> {
//! let mut b = MeasurementsBuilder::new(2); // two processors
//! let solve = b.add_region("solver loop");
//! b.record(solve, ActivityKind::Computation, 0, 1.25)?;
//! b.record(solve, ActivityKind::Computation, 1, 1.75)?;
//! b.record(solve, ActivityKind::PointToPoint, 0, 0.25)?;
//! let m = b.build()?;
//! assert_eq!(m.regions(), 1);
//! assert!((m.region_activity_time(solve, ActivityKind::Computation) - 1.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;

mod activity;
mod counting;
mod error;
mod ids;
mod labels;
mod matrix;
mod ops;
mod profile;

pub use activity::{ActivityKind, ActivitySet, STANDARD_ACTIVITIES};
pub use counting::{CountKind, CountMatrix, CountMatrixBuilder};
pub use error::ModelError;
pub use ids::{ProcessorId, RegionId};
pub use labels::{RegionInfo, RegionKind, SourceLocation};
pub use matrix::{Measurements, MeasurementsBuilder};
pub use profile::{ActivityBreakdown, ProgramProfile, RegionProfile};
