//! Metadata describing code regions.

use std::fmt;

/// What kind of source construct a code region corresponds to.
///
/// The paper analyzes "loops, routines, code statements"; the kind is
/// informational and does not affect any metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RegionKind {
    /// A loop nest (the paper's case study uses the 7 main loops).
    #[default]
    Loop,
    /// A routine / function.
    Routine,
    /// A statement block.
    Statement,
    /// The whole program.
    Program,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegionKind::Loop => "loop",
            RegionKind::Routine => "routine",
            RegionKind::Statement => "statement",
            RegionKind::Program => "program",
        };
        f.write_str(s)
    }
}

/// Position of a region in the program source.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceLocation {
    /// Source file path as recorded by the instrumenter.
    pub file: String,
    /// First line of the region.
    pub line: u32,
}

impl SourceLocation {
    /// Creates a source location.
    pub fn new(file: impl Into<String>, line: u32) -> Self {
        SourceLocation {
            file: file.into(),
            line,
        }
    }
}

impl fmt::Display for SourceLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// Descriptive metadata for one code region.
///
/// # Example
///
/// ```
/// use limba_model::{RegionInfo, RegionKind, SourceLocation};
/// let info = RegionInfo::new("flux update")
///     .with_kind(RegionKind::Loop)
///     .with_location(SourceLocation::new("solver.f90", 120));
/// assert_eq!(info.name(), "flux update");
/// assert_eq!(info.kind(), RegionKind::Loop);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegionInfo {
    name: String,
    kind: RegionKind,
    location: Option<SourceLocation>,
}

impl RegionInfo {
    /// Creates region metadata with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        RegionInfo {
            name: name.into(),
            kind: RegionKind::default(),
            location: None,
        }
    }

    /// Sets the region kind.
    pub fn with_kind(mut self, kind: RegionKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the source location.
    pub fn with_location(mut self, location: SourceLocation) -> Self {
        self.location = Some(location);
        self
    }

    /// Display name of the region.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Kind of source construct.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// Source location, when known.
    pub fn location(&self) -> Option<&SourceLocation> {
        self.location.as_ref()
    }
}

impl fmt::Display for RegionInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.location {
            Some(loc) => write!(f, "{} ({} at {})", self.name, self.kind, loc),
            None => write!(f, "{} ({})", self.name, self.kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_construction() {
        let info = RegionInfo::new("main loop")
            .with_kind(RegionKind::Loop)
            .with_location(SourceLocation::new("a.c", 10));
        assert_eq!(info.name(), "main loop");
        assert_eq!(info.location().unwrap().line, 10);
        assert!(info.to_string().contains("a.c:10"));
    }

    #[test]
    fn default_kind_is_loop() {
        assert_eq!(RegionInfo::new("x").kind(), RegionKind::Loop);
    }

    #[test]
    fn display_without_location() {
        let info = RegionInfo::new("init").with_kind(RegionKind::Routine);
        assert_eq!(info.to_string(), "init (routine)");
    }

    #[test]
    fn region_kind_display() {
        assert_eq!(RegionKind::Program.to_string(), "program");
        assert_eq!(RegionKind::Statement.to_string(), "statement");
    }
}
