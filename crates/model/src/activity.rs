//! Activities performed by a parallel program.

use std::fmt;

/// Kind of activity a processor performs inside a code region.
///
/// The paper's case study measures the first four kinds (computation,
/// point-to-point communication, collective communication, and
/// synchronization); the model also carries I/O and memory-access
/// activities so that richer instrumentation fits the same matrices.
///
/// # Example
///
/// ```
/// use limba_model::ActivityKind;
/// assert_eq!(ActivityKind::PointToPoint.to_string(), "point-to-point");
/// assert!(ActivityKind::Computation.is_computation());
/// assert!(ActivityKind::Collective.is_communication());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActivityKind {
    /// Pure computation (user code between communication calls).
    Computation,
    /// Point-to-point communication (`MPI_SEND` / `MPI_RECV`).
    PointToPoint,
    /// Collective communication (`MPI_REDUCE`, `MPI_ALLTOALL`, …).
    Collective,
    /// Explicit synchronization (`MPI_BARRIER`).
    Synchronization,
    /// File input/output.
    Io,
    /// Memory accesses attributed separately from computation.
    MemoryAccess,
}

/// The activities measured in the paper's case study, in table order.
pub const STANDARD_ACTIVITIES: [ActivityKind; 4] = [
    ActivityKind::Computation,
    ActivityKind::PointToPoint,
    ActivityKind::Collective,
    ActivityKind::Synchronization,
];

impl ActivityKind {
    /// All activity kinds the model knows about, in canonical order.
    pub const ALL: [ActivityKind; 6] = [
        ActivityKind::Computation,
        ActivityKind::PointToPoint,
        ActivityKind::Collective,
        ActivityKind::Synchronization,
        ActivityKind::Io,
        ActivityKind::MemoryAccess,
    ];

    /// Dense index of this kind within [`ActivityKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            ActivityKind::Computation => 0,
            ActivityKind::PointToPoint => 1,
            ActivityKind::Collective => 2,
            ActivityKind::Synchronization => 3,
            ActivityKind::Io => 4,
            ActivityKind::MemoryAccess => 5,
        }
    }

    /// Inverse of [`ActivityKind::index`]; `None` for out-of-range indices.
    pub fn from_index(index: usize) -> Option<Self> {
        ActivityKind::ALL.get(index).copied()
    }

    /// Returns `true` for [`ActivityKind::Computation`].
    pub fn is_computation(self) -> bool {
        self == ActivityKind::Computation
    }

    /// Returns `true` for the communication kinds (point-to-point or collective).
    pub fn is_communication(self) -> bool {
        matches!(self, ActivityKind::PointToPoint | ActivityKind::Collective)
    }

    /// Short, stable label used by reports and tracefiles.
    pub fn label(self) -> &'static str {
        match self {
            ActivityKind::Computation => "computation",
            ActivityKind::PointToPoint => "point-to-point",
            ActivityKind::Collective => "collective",
            ActivityKind::Synchronization => "synchronization",
            ActivityKind::Io => "io",
            ActivityKind::MemoryAccess => "memory",
        }
    }

    /// Parses a label produced by [`ActivityKind::label`].
    pub fn parse_label(label: &str) -> Option<Self> {
        ActivityKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

impl fmt::Display for ActivityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An ordered set of activity kinds observed by one measurement campaign.
///
/// A measurement matrix only stores columns for the activities that were
/// actually instrumented; `ActivitySet` fixes their order and provides the
/// kind ↔ column mapping.
///
/// # Example
///
/// ```
/// use limba_model::{ActivityKind, ActivitySet};
/// let set = ActivitySet::standard();
/// assert_eq!(set.len(), 4);
/// assert_eq!(set.column(ActivityKind::Collective), Some(2));
/// assert_eq!(set.kind(2), Some(ActivityKind::Collective));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ActivitySet {
    kinds: Vec<ActivityKind>,
}

impl ActivitySet {
    /// Creates a set from distinct kinds, preserving their order.
    ///
    /// Duplicate kinds are collapsed to their first occurrence.
    pub fn new<I: IntoIterator<Item = ActivityKind>>(kinds: I) -> Self {
        let mut out = Vec::new();
        for k in kinds {
            if !out.contains(&k) {
                out.push(k);
            }
        }
        ActivitySet { kinds: out }
    }

    /// The paper's four measured activities in table order.
    pub fn standard() -> Self {
        ActivitySet::new(STANDARD_ACTIVITIES)
    }

    /// Number of activities in the set.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Returns `true` when the set contains no activities.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Column index of `kind` within this set, if present.
    pub fn column(&self, kind: ActivityKind) -> Option<usize> {
        self.kinds.iter().position(|&k| k == kind)
    }

    /// Kind stored at `column`, if in range.
    pub fn kind(&self, column: usize) -> Option<ActivityKind> {
        self.kinds.get(column).copied()
    }

    /// Returns `true` when `kind` is part of this set.
    pub fn contains(&self, kind: ActivityKind) -> bool {
        self.kinds.contains(&kind)
    }

    /// Iterates over the kinds in column order.
    pub fn iter(&self) -> impl Iterator<Item = ActivityKind> + '_ {
        self.kinds.iter().copied()
    }

    /// The kinds as a slice in column order.
    pub fn as_slice(&self) -> &[ActivityKind] {
        &self.kinds
    }
}

impl Default for ActivitySet {
    fn default() -> Self {
        ActivitySet::standard()
    }
}

impl FromIterator<ActivityKind> for ActivitySet {
    fn from_iter<I: IntoIterator<Item = ActivityKind>>(iter: I) -> Self {
        ActivitySet::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips_for_all_kinds() {
        for kind in ActivityKind::ALL {
            assert_eq!(ActivityKind::from_index(kind.index()), Some(kind));
        }
        assert_eq!(ActivityKind::from_index(99), None);
    }

    #[test]
    fn labels_round_trip() {
        for kind in ActivityKind::ALL {
            assert_eq!(ActivityKind::parse_label(kind.label()), Some(kind));
        }
        assert_eq!(ActivityKind::parse_label("nonsense"), None);
    }

    #[test]
    fn communication_classification() {
        assert!(ActivityKind::PointToPoint.is_communication());
        assert!(ActivityKind::Collective.is_communication());
        assert!(!ActivityKind::Computation.is_communication());
        assert!(!ActivityKind::Synchronization.is_communication());
        assert!(ActivityKind::Computation.is_computation());
    }

    #[test]
    fn standard_set_matches_paper_order() {
        let set = ActivitySet::standard();
        assert_eq!(set.len(), 4);
        assert_eq!(set.kind(0), Some(ActivityKind::Computation));
        assert_eq!(set.kind(1), Some(ActivityKind::PointToPoint));
        assert_eq!(set.kind(2), Some(ActivityKind::Collective));
        assert_eq!(set.kind(3), Some(ActivityKind::Synchronization));
        assert_eq!(set.kind(4), None);
    }

    #[test]
    fn duplicate_kinds_are_collapsed() {
        let set = ActivitySet::new([
            ActivityKind::Io,
            ActivityKind::Io,
            ActivityKind::Computation,
        ]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.column(ActivityKind::Io), Some(0));
        assert_eq!(set.column(ActivityKind::Computation), Some(1));
    }

    #[test]
    fn empty_set_reports_empty() {
        let set = ActivitySet::new([]);
        assert!(set.is_empty());
        assert_eq!(set.column(ActivityKind::Io), None);
    }

    #[test]
    fn from_iterator_collects() {
        let set: ActivitySet = STANDARD_ACTIVITIES.into_iter().collect();
        assert_eq!(set, ActivitySet::standard());
    }
}
