//! Counting parameters: message counts, bytes, I/O operations, cache misses.
//!
//! The paper's model covers "counting parameters, such as, number of I/O
//! operations, number of bytes read/written, number of memory accesses,
//! number of cache misses" alongside the timing parameters. Counts share
//! the `N × K × P` shape of [`Measurements`](crate::Measurements) but are
//! keyed by [`CountKind`] instead of being wall-clock times, and the same
//! dissimilarity machinery applies to them unchanged.

use std::collections::BTreeMap;
use std::fmt;

use crate::{ModelError, ProcessorId, RegionId};

/// Kind of event being counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CountKind {
    /// Messages sent.
    MessagesSent,
    /// Messages received.
    MessagesReceived,
    /// Bytes sent.
    BytesSent,
    /// Bytes received.
    BytesReceived,
    /// I/O operations issued.
    IoOperations,
    /// Bytes read or written by I/O.
    IoBytes,
    /// Memory accesses.
    MemoryAccesses,
    /// Cache misses.
    CacheMisses,
}

impl CountKind {
    /// All count kinds in canonical order.
    pub const ALL: [CountKind; 8] = [
        CountKind::MessagesSent,
        CountKind::MessagesReceived,
        CountKind::BytesSent,
        CountKind::BytesReceived,
        CountKind::IoOperations,
        CountKind::IoBytes,
        CountKind::MemoryAccesses,
        CountKind::CacheMisses,
    ];

    /// Short, stable label.
    pub fn label(self) -> &'static str {
        match self {
            CountKind::MessagesSent => "msgs-sent",
            CountKind::MessagesReceived => "msgs-recv",
            CountKind::BytesSent => "bytes-sent",
            CountKind::BytesReceived => "bytes-recv",
            CountKind::IoOperations => "io-ops",
            CountKind::IoBytes => "io-bytes",
            CountKind::MemoryAccesses => "mem-accesses",
            CountKind::CacheMisses => "cache-misses",
        }
    }
}

impl fmt::Display for CountKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Sparse `region × kind × processor` matrix of event counts.
///
/// # Example
///
/// ```
/// use limba_model::{CountKind, CountMatrixBuilder, ProcessorId, RegionId};
/// # fn main() -> Result<(), limba_model::ModelError> {
/// let mut b = CountMatrixBuilder::new(2);
/// b.record(RegionId::new(0), CountKind::BytesSent, 0, 4096.0)?;
/// b.record(RegionId::new(0), CountKind::BytesSent, 1, 8192.0)?;
/// let counts = b.build();
/// assert_eq!(counts.count(RegionId::new(0), CountKind::BytesSent, ProcessorId::new(1)), 8192.0);
/// assert_eq!(counts.total(CountKind::BytesSent), 12288.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CountMatrix {
    processors: usize,
    cells: BTreeMap<(usize, CountKind), Vec<f64>>,
}

impl CountMatrix {
    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Count in one cell; `0.0` for never-recorded cells.
    pub fn count(&self, region: RegionId, kind: CountKind, proc: ProcessorId) -> f64 {
        self.cells
            .get(&(region.index(), kind))
            .and_then(|v| v.get(proc.index()).copied())
            .unwrap_or(0.0)
    }

    /// Per-processor counts of one `(region, kind)` cell, if recorded.
    pub fn processor_slice(&self, region: RegionId, kind: CountKind) -> Option<&[f64]> {
        self.cells
            .get(&(region.index(), kind))
            .map(|v| v.as_slice())
    }

    /// Total count of `kind` in `region` over all processors.
    pub fn region_total(&self, region: RegionId, kind: CountKind) -> f64 {
        self.processor_slice(region, kind)
            .map(|s| s.iter().sum())
            .unwrap_or(0.0)
    }

    /// Total count of `kind` over the whole program.
    pub fn total(&self, kind: CountKind) -> f64 {
        self.cells
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, v)| v.iter().sum::<f64>())
            .sum()
    }

    /// Iterates over all recorded `(region, kind)` cells.
    pub fn cells(&self) -> impl Iterator<Item = (RegionId, CountKind, &[f64])> {
        self.cells
            .iter()
            .map(|(&(r, k), v)| (RegionId::new(r), k, v.as_slice()))
    }
}

/// Builder for [`CountMatrix`].
#[derive(Debug, Clone)]
pub struct CountMatrixBuilder {
    processors: usize,
    cells: BTreeMap<(usize, CountKind), Vec<f64>>,
}

impl CountMatrixBuilder {
    /// Creates a builder for `processors` processors.
    pub fn new(processors: usize) -> Self {
        CountMatrixBuilder {
            processors,
            cells: BTreeMap::new(),
        }
    }

    /// Adds `amount` to the `(region, kind, proc)` cell.
    ///
    /// # Errors
    ///
    /// Returns an error when `proc` is out of range or `amount` is negative
    /// or non-finite.
    pub fn record(
        &mut self,
        region: RegionId,
        kind: CountKind,
        proc: usize,
        amount: f64,
    ) -> Result<(), ModelError> {
        if proc >= self.processors {
            return Err(ModelError::ProcessorOutOfRange {
                index: proc,
                processors: self.processors,
            });
        }
        if !amount.is_finite() || amount < 0.0 {
            return Err(ModelError::InvalidCount { value: amount });
        }
        let slot = self
            .cells
            .entry((region.index(), kind))
            .or_insert_with(|| vec![0.0; self.processors]);
        slot[proc] += amount;
        Ok(())
    }

    /// Finalizes the builder.
    pub fn build(self) -> CountMatrix {
        CountMatrix {
            processors: self.processors,
            cells: self.cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut b = CountMatrixBuilder::new(3);
        let r = RegionId::new(0);
        b.record(r, CountKind::MessagesSent, 0, 2.0).unwrap();
        b.record(r, CountKind::MessagesSent, 0, 3.0).unwrap();
        b.record(r, CountKind::MessagesSent, 2, 1.0).unwrap();
        let m = b.build();
        assert_eq!(
            m.count(r, CountKind::MessagesSent, ProcessorId::new(0)),
            5.0
        );
        assert_eq!(
            m.count(r, CountKind::MessagesSent, ProcessorId::new(1)),
            0.0
        );
        assert_eq!(m.region_total(r, CountKind::MessagesSent), 6.0);
        assert_eq!(m.total(CountKind::MessagesSent), 6.0);
        assert_eq!(m.total(CountKind::CacheMisses), 0.0);
    }

    #[test]
    fn unrecorded_cells_read_zero() {
        let m = CountMatrixBuilder::new(2).build();
        assert_eq!(
            m.count(RegionId::new(4), CountKind::IoBytes, ProcessorId::new(1)),
            0.0
        );
        assert!(m
            .processor_slice(RegionId::new(4), CountKind::IoBytes)
            .is_none());
    }

    #[test]
    fn validation() {
        let mut b = CountMatrixBuilder::new(1);
        assert!(matches!(
            b.record(RegionId::new(0), CountKind::IoOperations, 1, 1.0),
            Err(ModelError::ProcessorOutOfRange { .. })
        ));
        assert!(matches!(
            b.record(RegionId::new(0), CountKind::IoOperations, 0, -4.0),
            Err(ModelError::InvalidCount { .. })
        ));
    }

    #[test]
    fn cells_iterates_in_region_order() {
        let mut b = CountMatrixBuilder::new(1);
        b.record(RegionId::new(1), CountKind::BytesSent, 0, 1.0)
            .unwrap();
        b.record(RegionId::new(0), CountKind::BytesSent, 0, 2.0)
            .unwrap();
        let m = b.build();
        let regions: Vec<usize> = m.cells().map(|(r, _, _)| r.index()).collect();
        assert_eq!(regions, vec![0, 1]);
    }

    #[test]
    fn labels_are_stable() {
        for k in CountKind::ALL {
            assert!(!k.label().is_empty());
        }
    }
}
