//! Error type for the measurement model.

use std::error::Error;
use std::fmt;

use crate::ActivityKind;

/// Error raised while constructing or querying measurement data.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A region index was out of range.
    RegionOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of regions actually present.
        regions: usize,
    },
    /// A processor index was out of range.
    ProcessorOutOfRange {
        /// Offending index.
        index: usize,
        /// Number of processors actually present.
        processors: usize,
    },
    /// An activity was recorded that the matrix does not carry a column for.
    UnknownActivity {
        /// The activity that was not part of the matrix's [`ActivitySet`](crate::ActivitySet).
        kind: ActivityKind,
    },
    /// A recorded time was negative or not finite.
    InvalidTime {
        /// The rejected value.
        value: f64,
    },
    /// A recorded count was not finite.
    InvalidCount {
        /// The rejected value.
        value: f64,
    },
    /// The builder was asked to build with no processors.
    NoProcessors,
    /// The builder was asked to build with no regions.
    NoRegions,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::RegionOutOfRange { index, regions } => {
                write!(f, "region index {index} out of range for {regions} regions")
            }
            ModelError::ProcessorOutOfRange { index, processors } => write!(
                f,
                "processor index {index} out of range for {processors} processors"
            ),
            ModelError::UnknownActivity { kind } => {
                write!(
                    f,
                    "activity {kind} is not part of this measurement's activity set"
                )
            }
            ModelError::InvalidTime { value } => {
                write!(
                    f,
                    "wall clock time must be finite and non-negative, got {value}"
                )
            }
            ModelError::InvalidCount { value } => {
                write!(f, "count must be finite and non-negative, got {value}")
            }
            ModelError::NoProcessors => write!(f, "measurements need at least one processor"),
            ModelError::NoRegions => write!(f, "measurements need at least one region"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::RegionOutOfRange {
            index: 9,
            regions: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains('7'));
        assert!(msg.chars().next().unwrap().is_lowercase());

        let e = ModelError::UnknownActivity {
            kind: ActivityKind::Io,
        };
        assert!(e.to_string().contains("io"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
