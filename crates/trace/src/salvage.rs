//! Graceful reduction of partial traces.
//!
//! A crashed or interrupted rank (see `limba-mpisim`'s fault injection)
//! leaves a *truncated* event stream: a well-formed prefix whose regions
//! and activities may still be open when the recording stops. The strict
//! [`reduce`](crate::reduce) path rejects such traces outright;
//! [`reduce_checked`] instead distinguishes truncation damage — which it
//! repairs by closing whatever is open at the rank's last recorded
//! timestamp — from genuine corruption, which it reports as a structured
//! [`TraceError::MalformedEvent`] naming the offending event's
//! recording-order index and processor.
//!
//! The result is a [`SalvagedTrace`]: the ordinary [`ReducedTrace`] plus
//! per-rank [`RankCoverage`] records, so downstream imbalance views can
//! flag the ranks whose measurements are incomplete instead of silently
//! comparing full columns against truncated ones.

use limba_model::{ActivityKind, CountMatrixBuilder, MeasurementsBuilder, RegionId};

use crate::reduce::{trace_activities, Attribution, ReducedTrace};
use crate::{Event, EventPayload, Trace, TraceError};

/// How much of one processor's stream survived into the reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankCoverage {
    /// The processor this record describes.
    pub proc: u32,
    /// Number of events the processor recorded.
    pub events: usize,
    /// `true` when the stream ended cleanly (no open regions or
    /// activities) — the rank's measurements are trustworthy.
    pub complete: bool,
    /// Regions still open when the stream ended (truncation depth).
    pub open_regions: usize,
    /// `true` when an activity was still open at the end of the stream.
    pub open_activity: bool,
    /// Timestamp of the processor's last event (`0.0` when it recorded
    /// none) — for a truncated rank, how far its data reaches.
    pub last_time: f64,
}

/// A reduction annotated with per-rank coverage: the output of
/// [`reduce_checked`].
#[derive(Debug, Clone)]
pub struct SalvagedTrace {
    /// The measurement and count matrices, with truncated ranks closed
    /// out at their last recorded timestamp.
    pub reduced: ReducedTrace,
    /// One coverage record per processor, ascending.
    pub coverage: Vec<RankCoverage>,
}

impl SalvagedTrace {
    /// `true` when every rank's stream ended cleanly — the reduction is
    /// identical to what strict [`reduce`](crate::reduce) produces.
    pub fn is_complete(&self) -> bool {
        self.coverage.iter().all(|c| c.complete)
    }

    /// Ranks whose streams were truncated, ascending.
    pub fn incomplete_ranks(&self) -> Vec<u32> {
        self.coverage
            .iter()
            .filter(|c| !c.complete)
            .map(|c| c.proc)
            .collect()
    }
}

/// Reduces a possibly-truncated trace, salvaging what validates as a
/// well-formed prefix and annotating every rank with its coverage.
///
/// Truncation damage — regions or activities still open when a rank's
/// stream ends — is repaired by attributing the open spans up to the
/// rank's last recorded timestamp and flagging the rank as incomplete.
/// Attribution otherwise follows [`reduce`](crate::reduce) exactly, and
/// on a fully well-formed trace the reduction is identical to the strict
/// path with every rank marked complete.
///
/// # Errors
///
/// Returns [`TraceError::MalformedEvent`] — naming the offending event's
/// recording-order index and processor — for damage no truncation can
/// explain: out-of-range processor or region indices, region leaves that
/// do not match the innermost open region, activity begins outside any
/// region or inside another activity, and activity ends that never
/// began. Model errors surface as [`TraceError::Model`].
pub fn reduce_checked(trace: &Trace) -> Result<SalvagedTrace, TraceError> {
    // Defense in depth behind the decoders' header caps: the
    // per-processor tables below are sized from `trace.processors()`, a
    // declared count with no per-entry bytes behind it, so never let an
    // unbounded value through even if a new ingestion path forgets the
    // check.
    if trace.processors() > crate::binary::MAX_PROCESSORS {
        return Err(TraceError::Malformed {
            detail: format!(
                "processor count {} exceeds the supported maximum {}",
                trace.processors(),
                crate::binary::MAX_PROCESSORS
            ),
        });
    }
    // Partition per processor, carrying recording-order indices so
    // errors can name the offending event. Mirrors
    // `Trace::events_partitioned` (stable time sort) but reports
    // out-of-range processors instead of dropping them.
    let mut parts: Vec<Vec<(usize, Event)>> = vec![Vec::new(); trace.processors()];
    for (index, e) in trace.events().iter().enumerate() {
        match parts.get_mut(e.proc as usize) {
            Some(bucket) => bucket.push((index, *e)),
            None => {
                return Err(TraceError::MalformedEvent {
                    proc: e.proc,
                    index,
                    detail: format!(
                        "references processor {}, trace has {}",
                        e.proc,
                        trace.processors()
                    ),
                })
            }
        }
    }
    for bucket in &mut parts {
        bucket.sort_by(|a, b| a.1.time.total_cmp(&b.1.time));
    }

    let mut mb = MeasurementsBuilder::with_activities(trace.processors(), trace_activities(trace));
    for name in trace.region_names() {
        mb.add_region(name.clone());
    }
    let mut cb = CountMatrixBuilder::new(trace.processors());
    let mut coverage = Vec::with_capacity(trace.processors());
    for (proc, events) in (0u32..).zip(&parts) {
        let mut failure: Option<TraceError> = None;
        let cov = walk_salvage(proc, events, trace.region_names().len(), |attribution| {
            if failure.is_some() {
                return;
            }
            let result = match attribution {
                Attribution::Interval {
                    region,
                    kind,
                    start,
                    end,
                } => mb.record(RegionId::new(region), kind, proc as usize, end - start),
                Attribution::Count {
                    region,
                    kind,
                    amount,
                    ..
                } => cb
                    .record(RegionId::new(region), kind, proc as usize, amount)
                    .and(Ok(())),
            };
            if let Err(e) = result {
                failure = Some(e.into());
            }
        })?;
        if let Some(e) = failure {
            return Err(e);
        }
        coverage.push(cov);
    }
    Ok(SalvagedTrace {
        reduced: ReducedTrace {
            measurements: mb.build()?,
            counts: cb.build(),
        },
        coverage,
    })
}

/// The lenient counterpart of `reduce`'s per-processor walk: identical
/// attribution on well-formed streams, structured errors where the
/// strict walk would have been shielded by validation, and synthesized
/// closings (at the last recorded timestamp) where the stream is merely
/// truncated.
fn walk_salvage<F: FnMut(Attribution)>(
    proc: u32,
    events: &[(usize, Event)],
    regions: usize,
    mut sink: F,
) -> Result<RankCoverage, TraceError> {
    let mut walker = SalvageWalker::new(proc, regions);
    for &(index, e) in events {
        walker.step(index, &e, &mut sink)?;
    }
    Ok(walker.finish(&mut sink))
}

/// The incremental state machine behind [`reduce_checked`]'s per-rank
/// walk: one event at a time via [`SalvageWalker::step`], truncation
/// repair and the coverage record on [`SalvageWalker::finish`]. The
/// batch salvage path drives it over a materialized, per-rank-sorted
/// slice; the streaming salvage fold ([`crate::stream`]) drives one
/// walker per rank as frames arrive — the same code attributes in both,
/// so their outputs are identical by construction, not merely by test.
///
/// Public so external incremental consumers — e.g. `limba-serve`'s
/// online window detector — fold the *same* [`Attribution`]s the
/// reductions see, instead of reimplementing attribution.
pub struct SalvageWalker {
    proc: u32,
    regions: usize,
    stack: Vec<usize>,
    /// Open activity: kind, start time, and the innermost region at its
    /// begin — the fallback attribution target when the region closes
    /// before the activity does.
    current: Option<(ActivityKind, f64, usize)>,
    mark: f64,
    last_time: f64,
    events: usize,
}

impl SalvageWalker {
    /// Creates a walker for one rank of a trace declaring `regions`
    /// regions.
    pub fn new(proc: u32, regions: usize) -> Self {
        SalvageWalker {
            proc,
            regions,
            stack: Vec::new(),
            current: None,
            mark: 0.0,
            last_time: 0.0,
            events: 0,
        }
    }

    /// The rank this walker attributes for.
    pub fn proc(&self) -> u32 {
        self.proc
    }

    /// Feeds the rank's next event (in time order), emitting any
    /// attributions it completes into `sink`. `index` is the event's
    /// recording-order position, used only to name offenders in errors.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::MalformedEvent`] for structural damage no
    /// truncation can explain (see [`reduce_checked`]).
    pub fn step<F: FnMut(Attribution)>(
        &mut self,
        index: usize,
        e: &Event,
        sink: &mut F,
    ) -> Result<(), TraceError> {
        let proc = self.proc;
        let regions = self.regions;
        let malformed = |index: usize, detail: String| TraceError::MalformedEvent {
            proc,
            index,
            detail,
        };
        let check_region = |index: usize, verb: &str, region: usize| {
            if region >= regions {
                Err(malformed(
                    index,
                    format!("{verb} unknown region {region}, trace declares {regions}"),
                ))
            } else {
                Ok(())
            }
        };
        self.events += 1;
        self.last_time = e.time;
        match e.payload {
            EventPayload::EnterRegion { region } => {
                check_region(index, "enters", region)?;
                if let Some(&top) = self.stack.last() {
                    sink(Attribution::Interval {
                        region: top,
                        kind: ActivityKind::Computation,
                        start: self.mark,
                        end: e.time,
                    });
                }
                self.stack.push(region);
                self.mark = e.time;
            }
            EventPayload::LeaveRegion { region } => {
                check_region(index, "leaves", region)?;
                match self.stack.last() {
                    Some(&top) if top == region => {}
                    Some(&top) => {
                        return Err(malformed(
                            index,
                            format!("leaves region {region} while region {top} is innermost"),
                        ))
                    }
                    None => {
                        return Err(malformed(
                            index,
                            format!("leaves region {region} that was never entered"),
                        ))
                    }
                }
                sink(Attribution::Interval {
                    region,
                    kind: ActivityKind::Computation,
                    start: self.mark,
                    end: e.time,
                });
                self.stack.pop();
                self.mark = e.time;
            }
            EventPayload::BeginActivity { kind } => {
                if let Some((open, _, _)) = self.current {
                    return Err(malformed(
                        index,
                        format!("begins {kind} while {open} is still open"),
                    ));
                }
                let Some(&top) = self.stack.last() else {
                    return Err(malformed(
                        index,
                        format!("begins {kind} outside any region"),
                    ));
                };
                sink(Attribution::Interval {
                    region: top,
                    kind: ActivityKind::Computation,
                    start: self.mark,
                    end: e.time,
                });
                self.current = Some((kind, e.time, top));
            }
            EventPayload::EndActivity { kind } => {
                let Some((open, start, begun_in)) = self.current.take() else {
                    return Err(malformed(index, format!("ends {kind} that never began")));
                };
                // Strict reduction attributes the interval to the
                // innermost region at end time; keep that, falling back
                // to the begin-time region when the stream left no
                // region open (valid but previously panicked reduce).
                let region = self.stack.last().copied().unwrap_or(begun_in);
                sink(Attribution::Interval {
                    region,
                    kind: open,
                    start,
                    end: e.time,
                });
                self.mark = e.time;
            }
            EventPayload::MessageSend { bytes, .. } => {
                if let Some(&top) = self.stack.last() {
                    sink(Attribution::Count {
                        region: top,
                        kind: limba_model::CountKind::MessagesSent,
                        amount: 1.0,
                        at: e.time,
                    });
                    sink(Attribution::Count {
                        region: top,
                        kind: limba_model::CountKind::BytesSent,
                        amount: bytes as f64,
                        at: e.time,
                    });
                }
            }
            EventPayload::MessageRecv { bytes, .. } => {
                if let Some(&top) = self.stack.last() {
                    sink(Attribution::Count {
                        region: top,
                        kind: limba_model::CountKind::MessagesReceived,
                        amount: 1.0,
                        at: e.time,
                    });
                    sink(Attribution::Count {
                        region: top,
                        kind: limba_model::CountKind::BytesReceived,
                        amount: bytes as f64,
                        at: e.time,
                    });
                }
            }
        }
        Ok(())
    }

    /// Ends the rank's stream: closes whatever is still open at the
    /// last recorded timestamp (truncation repair, emitted into `sink`)
    /// and returns the rank's [`RankCoverage`].
    pub fn finish<F: FnMut(Attribution)>(mut self, sink: &mut F) -> RankCoverage {
        let open_activity = self.current.is_some();
        let open_regions = self.stack.len();
        let last_time = self.last_time;
        let mut mark = self.mark;
        // Truncation salvage: close whatever the stream left open at the
        // last recorded timestamp, as if the missing end/leave events had
        // fired there. Partial spans are attributed, not discarded.
        if let Some((kind, start, begun_in)) = self.current.take() {
            let region = self.stack.last().copied().unwrap_or(begun_in);
            sink(Attribution::Interval {
                region,
                kind,
                start,
                end: last_time,
            });
            mark = last_time;
        }
        while let Some(region) = self.stack.pop() {
            sink(Attribution::Interval {
                region,
                kind: ActivityKind::Computation,
                start: mark,
                end: last_time,
            });
            mark = last_time;
        }
        RankCoverage {
            proc: self.proc,
            events: self.events,
            complete: open_regions == 0 && !open_activity,
            open_regions,
            open_activity,
            last_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reduce, TraceBuilder};
    use limba_model::{CountKind, ProcessorId};

    #[test]
    fn complete_trace_matches_strict_reduction() {
        let mut b = TraceBuilder::new(2);
        let r = b.add_region("r");
        for p in 0..2u32 {
            b.push(Event::enter(0.0, p, r));
            b.push(Event::begin_activity(1.0, p, ActivityKind::PointToPoint));
            b.push(Event::message_send(1.2, p, 1 - p, 64));
            b.push(Event::end_activity(
                1.5 + p as f64,
                p,
                ActivityKind::PointToPoint,
            ));
            b.push(Event::leave(3.0, p, r));
        }
        let trace = b.build();
        let strict = reduce(&trace).unwrap();
        let salvaged = reduce_checked(&trace).unwrap();
        assert!(salvaged.is_complete());
        assert!(salvaged.incomplete_ranks().is_empty());
        assert_eq!(salvaged.reduced.measurements, strict.measurements);
        assert_eq!(salvaged.reduced.counts, strict.counts);
        assert_eq!(salvaged.coverage[1].events, 5);
    }

    #[test]
    fn truncated_rank_is_salvaged_and_flagged() {
        let mut b = TraceBuilder::new(2);
        let r = b.add_region("r");
        // Rank 0 completes; rank 1's stream stops mid-region with an
        // activity open (a crash between begin and end).
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::leave(4.0, 0, r));
        b.push(Event::enter(0.0, 1, r));
        b.push(Event::begin_activity(2.0, 1, ActivityKind::Collective));
        b.push(Event::message_send(2.5, 1, 0, 128));
        let trace = b.build();
        assert!(reduce(&trace).is_err()); // strict path rejects
        let salvaged = reduce_checked(&trace).unwrap();
        assert!(!salvaged.is_complete());
        assert_eq!(salvaged.incomplete_ranks(), vec![1]);
        let cov = salvaged.coverage[1];
        assert_eq!(cov.open_regions, 1);
        assert!(cov.open_activity);
        assert_eq!(cov.last_time, 2.5);
        let m = &salvaged.reduced.measurements;
        // Rank 1's partial spans survive: 2.0 s of computation before
        // the activity, then the open collective up to the last event.
        assert!((m.time(r, ActivityKind::Computation, ProcessorId::new(1)) - 2.0).abs() < 1e-12);
        assert!((m.time(r, ActivityKind::Collective, ProcessorId::new(1)) - 0.5).abs() < 1e-12);
        // The message count inside the open region is kept too.
        assert_eq!(
            salvaged
                .reduced
                .counts
                .count(r, CountKind::MessagesSent, ProcessorId::new(1)),
            1.0
        );
    }

    #[test]
    fn empty_trace_is_complete() {
        // No events at all: every rank is trivially complete.
        let mut b = TraceBuilder::new(3);
        b.add_region("r");
        let salvaged = reduce_checked(&b.build()).unwrap();
        assert!(salvaged.is_complete());
        assert_eq!(salvaged.coverage.len(), 3);
        for cov in &salvaged.coverage {
            assert_eq!(cov.events, 0);
            assert_eq!(cov.last_time, 0.0);
        }
        // A trace declaring no regions cannot form a measurement matrix;
        // that surfaces as a model error (same as strict reduce), never
        // a panic.
        assert!(matches!(
            reduce_checked(&TraceBuilder::new(2).build()),
            Err(TraceError::Model(_))
        ));
    }

    #[test]
    fn single_rank_truncation_reports_depth() {
        let mut b = TraceBuilder::new(1);
        let outer = b.add_region("outer");
        let inner = b.add_region("inner");
        b.push(Event::enter(0.0, 0, outer));
        b.push(Event::enter(1.0, 0, inner));
        let salvaged = reduce_checked(&b.build()).unwrap();
        let cov = salvaged.coverage[0];
        assert_eq!(cov.open_regions, 2);
        assert!(!cov.open_activity);
        assert!(!cov.complete);
        assert_eq!(salvaged.incomplete_ranks(), vec![0]);
    }

    #[test]
    fn corrupt_events_name_index_and_rank() {
        // Leave without enter on rank 1, at stream index 2.
        let mut b = TraceBuilder::new(2);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::leave(1.0, 0, r));
        b.push(Event::leave(1.0, 1, r));
        let err = reduce_checked(&b.build()).unwrap_err();
        match err {
            TraceError::MalformedEvent { proc, index, .. } => {
                assert_eq!(proc, 1);
                assert_eq!(index, 2);
            }
            other => panic!("wrong error: {other}"),
        }

        // Out-of-range processor reports its recording index.
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::enter(0.5, 9, r));
        let err = reduce_checked(&b.build()).unwrap_err().to_string();
        assert!(err.contains("event #1"), "{err}");
        assert!(err.contains("processor 9"), "{err}");

        // End without begin.
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::end_activity(1.0, 0, ActivityKind::Collective));
        let err = reduce_checked(&b.build()).unwrap_err().to_string();
        assert!(err.contains("never began"), "{err}");

        // Begin outside any region.
        let mut b = TraceBuilder::new(1);
        b.add_region("r");
        b.push(Event::begin_activity(0.0, 0, ActivityKind::Io));
        assert!(matches!(
            reduce_checked(&b.build()),
            Err(TraceError::MalformedEvent {
                proc: 0,
                index: 0,
                ..
            })
        ));
    }

    #[test]
    fn activity_outliving_its_region_reduces_without_panic() {
        // Passes validate() (leave does not check activities) but the
        // strict walk used to panic on the end event's empty stack; the
        // salvage walk attributes the span to the begin-time region.
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::begin_activity(1.0, 0, ActivityKind::PointToPoint));
        b.push(Event::leave(2.0, 0, r));
        b.push(Event::end_activity(3.0, 0, ActivityKind::PointToPoint));
        let trace = b.build();
        trace.validate().unwrap();
        let salvaged = reduce_checked(&trace).unwrap();
        assert!(salvaged.is_complete());
        let m = &salvaged.reduced.measurements;
        assert!((m.time(r, ActivityKind::PointToPoint, ProcessorId::new(0)) - 2.0).abs() < 1e-12);
    }
}
