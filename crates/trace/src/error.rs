//! Error type for trace handling.

use std::error::Error;
use std::fmt;

use limba_model::ModelError;

/// Error raised while building, validating, encoding, or reducing traces.
#[derive(Debug)]
pub enum TraceError {
    /// Event times of one processor went backwards.
    NonMonotoneTime {
        /// Processor whose clock went backwards.
        proc: u32,
        /// Time of the earlier event.
        before: f64,
        /// Offending (smaller) time of the later event.
        after: f64,
    },
    /// A leave/end event did not match the current enter/begin.
    UnbalancedNesting {
        /// Processor with the structural problem.
        proc: u32,
        /// Description of the mismatch.
        detail: String,
    },
    /// An event referenced a region that was never registered.
    UnknownRegion {
        /// The unregistered region index.
        region: usize,
    },
    /// An event referenced a processor outside the declared range.
    UnknownProcessor {
        /// The out-of-range processor index.
        proc: u32,
    },
    /// The byte stream or text being decoded was malformed.
    Malformed {
        /// Description of the decoding failure.
        detail: String,
    },
    /// A binary trace's content checksum did not match its payload —
    /// the file was corrupted after it was written (bit rot, a torn
    /// copy, or tampering), as opposed to [`Malformed`](Self::Malformed)
    /// structure the writer could never have produced.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum recomputed over the payload actually read.
        actual: u64,
    },
    /// One event made the stream structurally unsalvageable — unlike
    /// truncation damage (open regions or activities at end of stream),
    /// which [`reduce_checked`](crate::reduce_checked) repairs. Names
    /// the offending event by its recording-order index and processor.
    MalformedEvent {
        /// Processor whose stream is corrupt.
        proc: u32,
        /// Index of the offending event in recording order
        /// ([`Trace::events`](crate::Trace::events)).
        index: usize,
        /// Description of the structural violation.
        detail: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// Reduction produced an invalid measurement matrix.
    Model(ModelError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::NonMonotoneTime {
                proc,
                before,
                after,
            } => write!(
                f,
                "clock of processor {proc} went backwards from {before} to {after}"
            ),
            TraceError::UnbalancedNesting { proc, detail } => {
                write!(f, "unbalanced events on processor {proc}: {detail}")
            }
            TraceError::UnknownRegion { region } => write!(f, "unknown region index {region}"),
            TraceError::UnknownProcessor { proc } => write!(f, "unknown processor index {proc}"),
            TraceError::Malformed { detail } => write!(f, "malformed trace: {detail}"),
            TraceError::ChecksumMismatch { expected, actual } => write!(
                f,
                "trace checksum mismatch: file records {expected:#018x}, \
                 payload hashes to {actual:#018x}"
            ),
            TraceError::MalformedEvent {
                proc,
                index,
                detail,
            } => write!(f, "malformed event #{index} on processor {proc}: {detail}"),
            TraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceError::Model(e) => write!(f, "trace reduction produced invalid data: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<ModelError> for TraceError {
    fn from(e: ModelError) -> Self {
        TraceError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TraceError::NonMonotoneTime {
            proc: 3,
            before: 2.0,
            after: 1.0,
        };
        assert!(e.to_string().contains("processor 3"));
        assert!(e.source().is_none());
        let io = TraceError::from(std::io::Error::other("x"));
        assert!(io.source().is_some());
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
