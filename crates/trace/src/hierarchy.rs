//! Observed region nesting.
//!
//! The paper's code regions can be "loops, routines, code statements" —
//! naturally nested. A trace records that nesting implicitly through its
//! enter/leave stack; this module recovers the static region tree from
//! the dynamic nesting, so the analysis can drill down from coarse
//! regions to the specific statement block that misbehaves.

use crate::{EventPayload, Trace, TraceError};

/// The observed parent of each region: `parents[r]` is `Some(q)` when
/// region `r` was always entered while `q` was the innermost open
/// region, `None` when `r` is entered at top level.
///
/// # Errors
///
/// Returns [`TraceError::UnbalancedNesting`] (via validation) for
/// malformed traces, and [`TraceError::Malformed`] when a region is
/// observed under two different parents — the region structure is then
/// not a tree and hierarchical analysis does not apply.
pub fn region_parents(trace: &Trace) -> Result<Vec<Option<usize>>, TraceError> {
    trace.validate()?;
    let n = trace.region_names().len();
    // `Some(None)` = seen at top level; `Some(Some(q))` = seen under q.
    let mut parents: Vec<Option<Option<usize>>> = vec![None; n];
    for proc in 0..trace.processors() as u32 {
        let mut stack: Vec<usize> = Vec::new();
        for e in trace.events_by_processor(proc) {
            match e.payload {
                EventPayload::EnterRegion { region } => {
                    let parent = stack.last().copied();
                    match parents[region] {
                        None => parents[region] = Some(parent),
                        Some(seen) if seen == parent => {}
                        Some(seen) => {
                            return Err(TraceError::Malformed {
                                detail: format!(
                                "region {region} observed under parents {seen:?} and {parent:?}; \
                                     the region structure is not a tree"
                            ),
                            })
                        }
                    }
                    stack.push(region);
                }
                EventPayload::LeaveRegion { .. } => {
                    stack.pop();
                }
                _ => {}
            }
        }
    }
    // Regions never entered default to top level.
    Ok(parents.into_iter().map(|p| p.flatten()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, TraceBuilder};

    #[test]
    fn recovers_two_level_nesting() {
        let mut b = TraceBuilder::new(1);
        let outer = b.add_region("outer");
        let inner_a = b.add_region("inner a");
        let inner_b = b.add_region("inner b");
        b.push(Event::enter(0.0, 0, outer));
        b.push(Event::enter(1.0, 0, inner_a));
        b.push(Event::leave(2.0, 0, inner_a));
        b.push(Event::enter(3.0, 0, inner_b));
        b.push(Event::leave(4.0, 0, inner_b));
        b.push(Event::leave(5.0, 0, outer));
        let parents = region_parents(&b.build()).unwrap();
        assert_eq!(parents, vec![None, Some(0), Some(0)]);
    }

    #[test]
    fn repeated_visits_are_consistent() {
        let mut b = TraceBuilder::new(2);
        let outer = b.add_region("outer");
        let inner = b.add_region("inner");
        for p in 0..2 {
            for i in 0..3 {
                let t = i as f64 * 10.0;
                b.push(Event::enter(t, p, outer));
                b.push(Event::enter(t + 1.0, p, inner));
                b.push(Event::leave(t + 2.0, p, inner));
                b.push(Event::leave(t + 3.0, p, outer));
            }
        }
        let parents = region_parents(&b.build()).unwrap();
        assert_eq!(parents, vec![None, Some(0)]);
    }

    #[test]
    fn inconsistent_parents_are_rejected() {
        let mut b = TraceBuilder::new(1);
        let a = b.add_region("a");
        let c = b.add_region("b");
        let shared = b.add_region("shared");
        b.push(Event::enter(0.0, 0, a));
        b.push(Event::enter(1.0, 0, shared));
        b.push(Event::leave(2.0, 0, shared));
        b.push(Event::leave(3.0, 0, a));
        b.push(Event::enter(4.0, 0, c));
        b.push(Event::enter(5.0, 0, shared));
        b.push(Event::leave(6.0, 0, shared));
        b.push(Event::leave(7.0, 0, c));
        assert!(matches!(
            region_parents(&b.build()),
            Err(TraceError::Malformed { .. })
        ));
    }

    #[test]
    fn unentered_regions_default_to_top_level() {
        let mut b = TraceBuilder::new(1);
        let a = b.add_region("a");
        let _never = b.add_region("never entered");
        b.push(Event::enter(0.0, 0, a));
        b.push(Event::leave(1.0, 0, a));
        let parents = region_parents(&b.build()).unwrap();
        assert_eq!(parents, vec![None, None]);
    }

    #[test]
    fn three_level_nesting() {
        let mut b = TraceBuilder::new(1);
        let l0 = b.add_region("step");
        let l1 = b.add_region("solve");
        let l2 = b.add_region("flux");
        b.push(Event::enter(0.0, 0, l0));
        b.push(Event::enter(1.0, 0, l1));
        b.push(Event::enter(2.0, 0, l2));
        b.push(Event::leave(3.0, 0, l2));
        b.push(Event::leave(4.0, 0, l1));
        b.push(Event::leave(5.0, 0, l0));
        let parents = region_parents(&b.build()).unwrap();
        assert_eq!(parents, vec![None, Some(0), Some(1)]);
    }
}
