//! Reduction of traces into measurement matrices.

use limba_model::{
    ActivityKind, ActivitySet, CountKind, CountMatrix, CountMatrixBuilder, Measurements,
    MeasurementsBuilder, RegionId, STANDARD_ACTIVITIES,
};

use crate::{Event, EventPayload, Trace, TraceError};

/// Result of reducing a trace: the timing matrix `t_ijp` and the message
/// counting parameters.
#[derive(Debug, Clone)]
pub struct ReducedTrace {
    /// Wall-clock times per (region, activity, processor).
    pub measurements: Measurements,
    /// Message counts and byte volumes per (region, count kind, processor).
    pub counts: CountMatrix,
}

/// One attributed event from the per-processor walk: either a time
/// interval spent in an activity of a region, or a message count.
///
/// Public so incremental consumers outside this crate (e.g. an online
/// imbalance detector driving a [`SalvageWalker`](crate::SalvageWalker)
/// per rank) can receive exactly the attributions the reductions fold —
/// same state machine, same arithmetic, byte-identical results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Attribution {
    /// Time spent in one activity of one region.
    Interval {
        /// Region index the interval is attributed to.
        region: usize,
        /// Activity the interval belongs to.
        kind: ActivityKind,
        /// Interval start time.
        start: f64,
        /// Interval end time.
        end: f64,
    },
    /// A message-counting parameter observation.
    Count {
        /// Region index the count is attributed to.
        region: usize,
        /// Which counter the amount belongs to.
        kind: CountKind,
        /// Counted amount (messages or bytes).
        amount: f64,
        /// Timestamp of the observation.
        at: f64,
    },
}

/// The incremental per-processor attribution state machine behind
/// [`walk_processor`]: one event at a time via [`ProcWalker::step`], so
/// the batch reduction (which iterates a materialized slice) and the
/// streaming folds ([`crate::stream`], which see events as frames
/// arrive) share the exact attribution code — structural identity, not
/// merely tested equivalence.
///
/// Expects a well-formed, time-ordered stream (panics on malformed
/// input, shielded by validation on the batch path); the lenient
/// counterpart is `SalvageWalker`.
pub(crate) struct ProcWalker {
    stack: Vec<usize>,
    current: Option<(ActivityKind, f64)>,
    mark: f64,
}

impl ProcWalker {
    pub(crate) fn new() -> Self {
        ProcWalker {
            stack: Vec::new(),
            current: None,
            mark: 0.0,
        }
    }

    pub(crate) fn step<F: FnMut(Attribution)>(&mut self, e: &Event, sink: &mut F) {
        match e.payload {
            EventPayload::EnterRegion { region } => {
                if let Some(&top) = self.stack.last() {
                    sink(Attribution::Interval {
                        region: top,
                        kind: ActivityKind::Computation,
                        start: self.mark,
                        end: e.time,
                    });
                }
                self.stack.push(region);
                self.mark = e.time;
            }
            EventPayload::LeaveRegion { region } => {
                sink(Attribution::Interval {
                    region,
                    kind: ActivityKind::Computation,
                    start: self.mark,
                    end: e.time,
                });
                self.stack.pop();
                self.mark = e.time;
            }
            EventPayload::BeginActivity { kind } => {
                let top = *self.stack.last().expect("validated: inside a region");
                sink(Attribution::Interval {
                    region: top,
                    kind: ActivityKind::Computation,
                    start: self.mark,
                    end: e.time,
                });
                self.current = Some((kind, e.time));
            }
            EventPayload::EndActivity { .. } => {
                let (kind, start) = self.current.take().expect("validated: activity open");
                let top = *self.stack.last().expect("validated: inside a region");
                sink(Attribution::Interval {
                    region: top,
                    kind,
                    start,
                    end: e.time,
                });
                self.mark = e.time;
            }
            EventPayload::MessageSend { bytes, .. } => {
                if let Some(&top) = self.stack.last() {
                    sink(Attribution::Count {
                        region: top,
                        kind: CountKind::MessagesSent,
                        amount: 1.0,
                        at: e.time,
                    });
                    sink(Attribution::Count {
                        region: top,
                        kind: CountKind::BytesSent,
                        amount: bytes as f64,
                        at: e.time,
                    });
                }
            }
            EventPayload::MessageRecv { bytes, .. } => {
                if let Some(&top) = self.stack.last() {
                    sink(Attribution::Count {
                        region: top,
                        kind: CountKind::MessagesReceived,
                        amount: 1.0,
                        at: e.time,
                    });
                    sink(Attribution::Count {
                        region: top,
                        kind: CountKind::BytesReceived,
                        amount: bytes as f64,
                        at: e.time,
                    });
                }
            }
        }
    }
}

/// Walks one processor's (validated, time-sorted) events and emits
/// attributions. Time between explicit activity intervals counts as
/// computation; nested regions attribute to the innermost region.
fn walk_processor<F: FnMut(Attribution)>(events: &[Event], mut sink: F) {
    let mut walker = ProcWalker::new();
    for e in events {
        walker.step(e, &mut sink);
    }
}

/// Folds one event into a running activity-kind list: the paper's
/// standard four are seeded by the caller, extras append in
/// first-appearance order. [`trace_activities`] folds a materialized
/// trace through this; the streaming scan ([`crate::stream`]) folds the
/// live event stream through the same function, so both discover the
/// identical [`ActivitySet`].
pub(crate) fn note_activity(kinds: &mut Vec<ActivityKind>, e: &Event) {
    if let EventPayload::BeginActivity { kind } = e.payload {
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
}

/// The activity set of a trace: the paper's standard four plus whatever
/// else the trace actually used, in canonical order.
pub(crate) fn trace_activities(trace: &Trace) -> ActivitySet {
    let mut kinds: Vec<ActivityKind> = STANDARD_ACTIVITIES.to_vec();
    for e in trace.events() {
        note_activity(&mut kinds, e);
    }
    ActivitySet::new(kinds)
}

/// Reduces a validated trace to per-(region, activity, processor)
/// wall-clock times and message counts.
///
/// Attribution rules:
///
/// * time between explicit activity intervals, inside a region, counts as
///   [`ActivityKind::Computation`];
/// * nested regions attribute time to the *innermost* region;
/// * message events increment the counting parameters of the innermost
///   region at their timestamp.
///
/// # Errors
///
/// Returns validation errors (this function validates first) and model
/// errors should the trace encode invalid values.
pub fn reduce(trace: &Trace) -> Result<ReducedTrace, TraceError> {
    trace.validate()?;
    reduce_unchecked(trace)
}

/// Reduces a trace that is well-formed *by construction* — e.g. one the
/// simulator just produced — skipping the structural validation pass
/// that [`reduce`] performs. Identical results on valid input, roughly
/// half the walk cost.
///
/// Feeding a malformed trace (unbalanced nesting, dangling activities)
/// is a logic error and may panic; route externally loaded traces
/// through [`reduce`] instead.
///
/// # Errors
///
/// Returns model errors should the trace encode invalid values.
pub fn reduce_well_formed(trace: &Trace) -> Result<ReducedTrace, TraceError> {
    reduce_unchecked(trace)
}

fn reduce_unchecked(trace: &Trace) -> Result<ReducedTrace, TraceError> {
    let mut mb = MeasurementsBuilder::with_activities(trace.processors(), trace_activities(trace));
    for name in trace.region_names() {
        mb.add_region(name.clone());
    }
    let mut cb = CountMatrixBuilder::new(trace.processors());
    let mut failure: Option<TraceError> = None;
    for (proc, events) in (0u32..).zip(trace.events_partitioned()) {
        walk_processor(&events, |attribution| {
            if failure.is_some() {
                return;
            }
            let result = match attribution {
                Attribution::Interval {
                    region,
                    kind,
                    start,
                    end,
                } => mb.record(RegionId::new(region), kind, proc as usize, end - start),
                Attribution::Count {
                    region,
                    kind,
                    amount,
                    ..
                } => cb
                    .record(RegionId::new(region), kind, proc as usize, amount)
                    .and(Ok(())),
            };
            if let Err(e) = result {
                failure = Some(e.into());
            }
        });
    }
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(ReducedTrace {
        measurements: mb.build()?,
        counts: cb.build(),
    })
}

/// Reduces a validated trace into `windows` equal time slices of the
/// run's `[0, makespan]` span, attributing each interval proportionally
/// to the windows it overlaps (counts go to the window of their
/// timestamp). The per-window matrices let the analysis track how load
/// imbalance *evolves* over the execution.
///
/// # Errors
///
/// Returns a malformed-trace error when `windows` is zero or the trace
/// spans no time, plus the conditions of [`reduce`].
pub fn reduce_windows(trace: &Trace, windows: usize) -> Result<Vec<ReducedTrace>, TraceError> {
    trace.validate()?;
    if windows == 0 {
        return Err(TraceError::Malformed {
            detail: "window count must be positive".into(),
        });
    }
    let makespan = trace.events().iter().map(|e| e.time).fold(0.0f64, f64::max);
    if makespan <= 0.0 {
        return Err(TraceError::Malformed {
            detail: "trace spans no time, cannot window".into(),
        });
    }
    let width = makespan / windows as f64;
    let activities = trace_activities(trace);
    let mut builders: Vec<(MeasurementsBuilder, CountMatrixBuilder)> = (0..windows)
        .map(|_| {
            let mut mb =
                MeasurementsBuilder::with_activities(trace.processors(), activities.clone());
            for name in trace.region_names() {
                mb.add_region(name.clone());
            }
            (mb, CountMatrixBuilder::new(trace.processors()))
        })
        .collect();
    let mut failure: Option<TraceError> = None;
    for (proc, events) in (0u32..).zip(trace.events_partitioned()) {
        walk_processor(&events, |attribution| {
            if failure.is_some() {
                return;
            }
            if let Err(e) = scatter_windowed(&mut builders, width, proc, attribution) {
                failure = Some(e.into());
            }
        });
    }
    if let Some(e) = failure {
        return Err(e);
    }
    builders
        .into_iter()
        .map(|(mb, cb)| {
            Ok(ReducedTrace {
                measurements: mb.build()?,
                counts: cb.build(),
            })
        })
        .collect()
}

/// Scatters one attribution over the window builders: intervals split
/// proportionally across every window they overlap, counts land in the
/// window of their timestamp. Shared verbatim by [`reduce_windows`] and
/// the streaming window fold ([`crate::stream`]), so the two paths
/// perform the identical floating-point splits in the identical order.
pub(crate) fn scatter_windowed(
    builders: &mut [(MeasurementsBuilder, CountMatrixBuilder)],
    width: f64,
    proc: u32,
    attribution: Attribution,
) -> Result<(), limba_model::ModelError> {
    let windows = builders.len();
    let clamp_window = |t: f64| -> usize { ((t / width) as usize).min(windows - 1) };
    match attribution {
        Attribution::Interval {
            region,
            kind,
            start,
            end,
        } => {
            let (first, last) = (clamp_window(start), clamp_window(end));
            let mut res = Ok(());
            for (w, builder) in builders.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = start.max(w as f64 * width);
                let hi = end.min((w + 1) as f64 * width);
                if hi > lo {
                    res = res.and(builder.0.record(
                        RegionId::new(region),
                        kind,
                        proc as usize,
                        hi - lo,
                    ));
                }
            }
            res
        }
        Attribution::Count {
            region,
            kind,
            amount,
            at,
        } => builders[clamp_window(at)]
            .1
            .record(RegionId::new(region), kind, proc as usize, amount)
            .and(Ok(())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, TraceBuilder};
    use limba_model::ProcessorId;

    #[test]
    fn gap_time_is_computation() {
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::begin_activity(2.0, 0, ActivityKind::PointToPoint));
        b.push(Event::end_activity(3.0, 0, ActivityKind::PointToPoint));
        b.push(Event::leave(5.0, 0, r));
        let red = reduce(&b.build()).unwrap();
        let m = &red.measurements;
        let p = ProcessorId::new(0);
        assert!((m.time(r, ActivityKind::Computation, p) - 4.0).abs() < 1e-12);
        assert!((m.time(r, ActivityKind::PointToPoint, p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nested_regions_attribute_to_innermost() {
        let mut b = TraceBuilder::new(1);
        let outer = b.add_region("outer");
        let inner = b.add_region("inner");
        b.push(Event::enter(0.0, 0, outer));
        b.push(Event::enter(1.0, 0, inner));
        b.push(Event::leave(3.0, 0, inner));
        b.push(Event::leave(4.0, 0, outer));
        let red = reduce(&b.build()).unwrap();
        let m = &red.measurements;
        let p = ProcessorId::new(0);
        assert!((m.time(outer, ActivityKind::Computation, p) - 2.0).abs() < 1e-12);
        assert!((m.time(inner, ActivityKind::Computation, p) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_entries_accumulate() {
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        for i in 0..3 {
            let t0 = i as f64 * 10.0;
            b.push(Event::enter(t0, 0, r));
            b.push(Event::leave(t0 + 2.0, 0, r));
        }
        let red = reduce(&b.build()).unwrap();
        let t = red
            .measurements
            .time(r, ActivityKind::Computation, ProcessorId::new(0));
        assert!((t - 6.0).abs() < 1e-12);
    }

    #[test]
    fn message_counts_attributed_to_region() {
        let mut b = TraceBuilder::new(2);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::message_send(0.5, 0, 1, 100));
        b.push(Event::message_send(0.6, 0, 1, 200));
        b.push(Event::leave(1.0, 0, r));
        b.push(Event::enter(0.0, 1, r));
        b.push(Event::message_recv(0.8, 1, 0, 300));
        b.push(Event::leave(1.0, 1, r));
        let red = reduce(&b.build()).unwrap();
        let c = &red.counts;
        assert_eq!(
            c.count(r, CountKind::MessagesSent, ProcessorId::new(0)),
            2.0
        );
        assert_eq!(c.count(r, CountKind::BytesSent, ProcessorId::new(0)), 300.0);
        assert_eq!(
            c.count(r, CountKind::MessagesReceived, ProcessorId::new(1)),
            1.0
        );
        assert_eq!(
            c.count(r, CountKind::BytesReceived, ProcessorId::new(1)),
            300.0
        );
    }

    #[test]
    fn non_standard_activity_kinds_extend_the_set() {
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::begin_activity(0.5, 0, ActivityKind::Io));
        b.push(Event::end_activity(1.5, 0, ActivityKind::Io));
        b.push(Event::leave(2.0, 0, r));
        let red = reduce(&b.build()).unwrap();
        let m = &red.measurements;
        assert!(m.activities().contains(ActivityKind::Io));
        assert!((m.time(r, ActivityKind::Io, ProcessorId::new(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn well_formed_fast_path_matches_checked_reduction() {
        let mut b = TraceBuilder::new(2);
        let r = b.add_region("r");
        for p in 0..2u32 {
            b.push(Event::enter(0.0, p, r));
            b.push(Event::begin_activity(1.0, p, ActivityKind::PointToPoint));
            b.push(Event::end_activity(
                1.5 + p as f64,
                p,
                ActivityKind::PointToPoint,
            ));
            b.push(Event::message_send(1.2, p, 1 - p, 64));
            b.push(Event::leave(3.0 + p as f64, p, r));
        }
        let trace = b.build();
        let checked = reduce(&trace).unwrap();
        let fast = reduce_well_formed(&trace).unwrap();
        assert_eq!(checked.measurements, fast.measurements);
        assert_eq!(checked.counts, fast.counts);
    }

    #[test]
    fn invalid_trace_is_rejected() {
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        assert!(reduce(&b.build()).is_err());
    }

    #[test]
    fn two_processors_fill_their_own_columns() {
        let mut b = TraceBuilder::new(2);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::leave(1.0, 0, r));
        b.push(Event::enter(0.0, 1, r));
        b.push(Event::leave(3.0, 1, r));
        let red = reduce(&b.build()).unwrap();
        let m = &red.measurements;
        let s = m.processor_slice(r, ActivityKind::Computation).unwrap();
        assert_eq!(s, &[1.0, 3.0]);
    }

    #[test]
    fn windows_partition_time_exactly() {
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::begin_activity(3.0, 0, ActivityKind::Collective));
        b.push(Event::end_activity(7.0, 0, ActivityKind::Collective));
        b.push(Event::leave(10.0, 0, r));
        let trace = b.build();
        let windows = reduce_windows(&trace, 4).unwrap();
        assert_eq!(windows.len(), 4);
        let p = ProcessorId::new(0);
        // Window width 2.5. Computation [0,3]∪[7,10]; collective [3,7].
        let comp: Vec<f64> = windows
            .iter()
            .map(|w| w.measurements.time(r, ActivityKind::Computation, p))
            .collect();
        let coll: Vec<f64> = windows
            .iter()
            .map(|w| w.measurements.time(r, ActivityKind::Collective, p))
            .collect();
        assert!((comp[0] - 2.5).abs() < 1e-12);
        assert!((comp[1] - 0.5).abs() < 1e-12);
        assert!((comp[3] - 2.5).abs() < 1e-12);
        assert!((coll[1] - 2.0).abs() < 1e-12);
        assert!((coll[2] - 2.0).abs() < 1e-12);
        // The windows sum back to the unwindowed reduction.
        let total: f64 = comp.iter().sum::<f64>() + coll.iter().sum::<f64>();
        assert!((total - 10.0).abs() < 1e-12);
    }

    #[test]
    fn window_sums_match_full_reduction_for_multiproc_traces() {
        let mut b = TraceBuilder::new(2);
        let r = b.add_region("r");
        for p in 0..2u32 {
            b.push(Event::enter(0.0, p, r));
            b.push(Event::message_send(1.0 + p as f64, p, 1 - p, 64));
            b.push(Event::leave(4.0 + p as f64, p, r));
        }
        let trace = b.build();
        let full = reduce(&trace).unwrap();
        let windows = reduce_windows(&trace, 3).unwrap();
        for p in 0..2 {
            let pid = ProcessorId::new(p);
            let summed: f64 = windows
                .iter()
                .map(|w| w.measurements.time(r, ActivityKind::Computation, pid))
                .sum();
            let direct = full.measurements.time(r, ActivityKind::Computation, pid);
            assert!((summed - direct).abs() < 1e-12);
            let msgs: f64 = windows
                .iter()
                .map(|w| w.counts.count(r, CountKind::MessagesSent, pid))
                .sum();
            assert_eq!(msgs, full.counts.count(r, CountKind::MessagesSent, pid));
        }
    }

    #[test]
    fn degenerate_window_requests_rejected() {
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::leave(1.0, 0, r));
        let trace = b.build();
        assert!(reduce_windows(&trace, 0).is_err());

        // Zero-span trace cannot be windowed.
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::leave(0.0, 0, r));
        assert!(reduce_windows(&b.build(), 2).is_err());
    }
}
