//! Durable trace writing and torn-tail detection.
//!
//! Two pieces sit here, both built on the streaming codec:
//!
//! * [`SealScanner`] — answers "how much of this (possibly torn) byte
//!   prefix is a *sealed* trace stream?". It drives a
//!   [`StreamDecoder`] over the bytes with a no-op sink and reports
//!   the last sealed boundary (the end of the header or of a complete
//!   chunk) plus whether the stream verified end to end. The serve
//!   layer's startup recovery scrub truncates a crash-torn spool back
//!   to this boundary instead of failing the tenant; a resumed client
//!   then regenerates and appends exactly the missing suffix.
//! * [`DurableSink`] — a [`TraceSink`] that writes the chunked-v3
//!   container through a [`Vfs`] and makes it durable on `finish`:
//!   the file is fsynced and its parent directory entry synced, so a
//!   power cut after `--stream-out` returns cannot lose or tear the
//!   tracefile. Mid-stream cuts leave a prefix the scanner can seal.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use limba_vfs::{Vfs, VfsFile};

use crate::stream::{StreamDecoder, StreamEncoder, TraceSink};
use crate::{Event, TraceError};

/// Scan chunk size for [`SealScanner::scan_file`].
const CHUNK: usize = 64 * 1024;

/// A sink that discards everything — the scanner only needs the
/// decoder's structural verdict, not the events.
struct NullSink;

impl TraceSink for NullSink {
    fn begin(&mut self, _processors: usize, _region_names: &[String]) -> Result<(), TraceError> {
        Ok(())
    }
    fn events(&mut self, _events: &[Event]) -> Result<(), TraceError> {
        Ok(())
    }
    fn finish(&mut self) -> Result<(), TraceError> {
        Ok(())
    }
}

/// What a [`SealScanner`] pass found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealScan {
    /// Byte offset of the last sealed boundary: a prefix of this
    /// length decodes cleanly and ends at a resume point. 0 when not
    /// even the header survived.
    pub sealed: u64,
    /// Total bytes examined.
    pub total: u64,
    /// The stream verified end to end (end chunk present, checksum
    /// good, no trailing bytes).
    pub complete: bool,
    /// The bytes past `sealed` were *structurally damaged* (bad tag,
    /// bad record, checksum mismatch, bytes after the end) rather
    /// than merely truncated mid-structure.
    pub damaged: bool,
}

impl SealScan {
    /// Whether anything needs cutting: the file holds bytes past the
    /// last sealed boundary that a clean stream would not.
    pub fn torn(&self) -> bool {
        !self.complete && self.sealed < self.total
    }
}

/// Incremental torn-tail detector over a chunked-v3 (or materialized
/// v1–2) byte stream. Feed any byte split; structural damage stops the
/// scan without erroring — the verdict is in the final [`SealScan`].
#[derive(Default)]
pub struct SealScanner {
    decoder: StreamDecoder,
    total: u64,
    damaged: bool,
}

impl SealScanner {
    /// A scanner for one stream.
    pub fn new() -> Self {
        SealScanner::default()
    }

    /// Consumes the next bytes of the stream. Bytes after damage (or
    /// after a verified end) only count toward the total.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.total += chunk.len() as u64;
        if self.damaged {
            return;
        }
        if self.decoder.feed(chunk, &mut NullSink).is_err() {
            self.damaged = true;
        }
    }

    /// The verdict over everything fed so far.
    pub fn finish(self) -> SealScan {
        SealScan {
            sealed: self.decoder.sealed(),
            total: self.total,
            complete: self.decoder.is_done() && !self.damaged && self.decoder.consumed() == self.total,
            damaged: self.damaged,
        }
    }

    /// One-shot scan of an in-memory byte slice.
    pub fn scan(bytes: &[u8]) -> SealScan {
        let mut scanner = SealScanner::new();
        scanner.feed(bytes);
        scanner.finish()
    }

    /// One-shot scan of a file through `vfs`, reading in bounded
    /// chunks.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the file cannot be read (scan verdicts
    /// about *content* never error).
    pub fn scan_file(vfs: &dyn Vfs, path: &Path) -> Result<SealScan, TraceError> {
        let mut file = vfs.open_read(path)?;
        let mut scanner = SealScanner::new();
        let mut buf = vec![0u8; CHUNK];
        loop {
            let n = file.read(&mut buf)?;
            if n == 0 {
                return Ok(scanner.finish());
            }
            scanner.feed(&buf[..n]);
        }
    }
}

/// A [`TraceSink`] that writes the chunked-v3 container to a file
/// through a [`Vfs`] and seals it durably on `finish`: content fsync,
/// then parent-directory fsync. The crash contract: after `finish`
/// returns, the complete tracefile survives a power cut; a cut before
/// that leaves a prefix [`SealScanner`] can truncate to a sealed
/// boundary (or no file at all) — never a file that *looks* complete
/// but is not.
pub struct DurableSink {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    file: Box<dyn VfsFile>,
    encoder: StreamEncoder,
}

impl DurableSink {
    /// Creates (truncates) `path` through `vfs`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the file cannot be created.
    pub fn create(vfs: Arc<dyn Vfs>, path: &Path) -> Result<Self, TraceError> {
        let file = vfs.create(path)?;
        Ok(DurableSink {
            vfs,
            path: path.to_path_buf(),
            file,
            encoder: StreamEncoder::new(),
        })
    }
}

impl TraceSink for DurableSink {
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        let header = self.encoder.header(processors, region_names)?;
        self.file.append(header.as_ref())?;
        Ok(())
    }

    fn events(&mut self, events: &[Event]) -> Result<(), TraceError> {
        let frame = self.encoder.frame(events);
        self.file.append(frame.as_ref())?;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        let end = self.encoder.finish();
        self.file.append(end.as_ref())?;
        // The durability point: content, then directory entry.
        self.file.sync()?;
        let dir = match self.path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        self.vfs.sync_dir(dir)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]

    use super::*;
    use crate::stream::WriteSink;
    use limba_vfs::MemVfs;

    /// A small two-chunk v3 stream.
    fn sample_bytes() -> Vec<u8> {
        let mut out = Vec::new();
        {
            let mut sink = WriteSink::new(&mut out);
            sink.begin(2, &["work".into(), "halo".into()]).unwrap();
            let chunk1 = vec![
                Event::enter(0.0, 0, 0.into()),
                Event::leave(1.0, 0, 0.into()),
            ];
            let chunk2 = vec![
                Event::enter(0.0, 1, 0.into()),
                Event::leave(3.0, 1, 0.into()),
                Event::enter(3.0, 1, 1.into()),
                Event::leave(3.5, 1, 1.into()),
            ];
            sink.events(&chunk1).unwrap();
            sink.events(&chunk2).unwrap();
            sink.finish().unwrap();
        }
        out
    }

    #[test]
    fn complete_stream_seals_at_its_full_length() {
        let bytes = sample_bytes();
        let scan = SealScanner::scan(&bytes);
        assert!(scan.complete && !scan.damaged && !scan.torn());
        assert_eq!(scan.sealed, bytes.len() as u64);
        assert_eq!(scan.total, bytes.len() as u64);
    }

    #[test]
    fn every_truncation_seals_at_a_decodable_boundary() {
        let bytes = sample_bytes();
        for cut in 0..bytes.len() {
            let scan = SealScanner::scan(&bytes[..cut]);
            assert!(!scan.complete, "cut {cut} claimed complete");
            assert!(!scan.damaged, "pure truncation at {cut} is not damage");
            assert!(scan.sealed <= cut as u64);
            // The sealed prefix must itself scan clean and seal at the
            // same boundary (truncating there is a fixed point).
            let again = SealScanner::scan(&bytes[..scan.sealed as usize]);
            assert_eq!(again.sealed, scan.sealed, "cut {cut} not a fixed point");
            assert!(!again.torn(), "cut {cut}: sealed prefix still torn");
        }
    }

    #[test]
    fn trailing_garbage_is_damage_but_keeps_the_seal() {
        let mut bytes = sample_bytes();
        let clean = bytes.len() as u64;
        bytes.extend_from_slice(b"garbage");
        let scan = SealScanner::scan(&bytes);
        assert!(scan.damaged && !scan.complete);
        assert_eq!(scan.sealed, clean);
    }

    #[test]
    fn corrupt_tag_seals_at_the_previous_chunk() {
        let bytes = sample_bytes();
        // The first sealed boundary is the end of the header.
        let header = (1..bytes.len())
            .map(|cut| SealScanner::scan(&bytes[..cut]).sealed)
            .find(|&sealed| sealed > 0)
            .unwrap();
        // Corrupt one byte well past the header.
        let mut corrupt = bytes.clone();
        let hit = (header as usize) + 1; // inside the first chunk
        corrupt[hit] ^= 0xFF;
        let scan = SealScanner::scan(&corrupt);
        assert!(scan.sealed <= header || scan.damaged || !scan.complete);
        assert!(!scan.complete);
    }

    #[test]
    fn durable_sink_writes_byte_identical_v3_and_syncs() {
        let mem = MemVfs::new();
        let path = Path::new("/out/trace.trc");
        let mut sink = DurableSink::create(Arc::new(mem.clone()), path).unwrap();
        sink.begin(2, &["work".into(), "halo".into()]).unwrap();
        sink.events(&[
            Event::enter(0.0, 0, 0.into()),
            Event::leave(1.0, 0, 0.into()),
        ])
        .unwrap();
        sink.events(&[
            Event::enter(0.0, 1, 0.into()),
            Event::leave(3.0, 1, 0.into()),
            Event::enter(3.0, 1, 1.into()),
            Event::leave(3.5, 1, 1.into()),
        ])
        .unwrap();
        sink.finish().unwrap();
        assert_eq!(mem.read_all(path).unwrap(), sample_bytes());
        // Durability: the file survives a power cut after finish.
        mem.crash();
        assert_eq!(mem.read_all(path).unwrap(), sample_bytes());
    }

    #[test]
    fn durable_sink_without_finish_does_not_survive_a_crash_as_complete() {
        let mem = MemVfs::new();
        let path = Path::new("/out/trace.trc");
        let mut sink = DurableSink::create(Arc::new(mem.clone()), path).unwrap();
        sink.begin(1, &["work".into()]).unwrap();
        sink.events(&[
            Event::enter(0.0, 0, 0.into()),
            Event::leave(1.0, 0, 0.into()),
        ])
        .unwrap();
        // No finish → no sync. The crash model may drop the file
        // entirely; what it must never show is a complete stream.
        mem.crash();
        if let Ok(bytes) = mem.read_all(path) {
            assert!(!SealScanner::scan(&bytes).complete);
        }
    }
}
