//! Streaming trace dataflow: frame-at-a-time encoding, decoding, and
//! reduction, so no pipeline stage ever holds a whole trace.
//!
//! The materialized pipeline (simulate → [`Trace`] → [`binary`] file →
//! [`reduce`](crate::reduce)) builds each stage's full output before
//! the next starts — the memory wall at 100k+ ranks. This module is the
//! streaming counterpart, built from three pieces:
//!
//! * [`TraceSink`] — the producer/consumer contract: a trace flows
//!   through `begin → events* → finish`, with events delivered in
//!   recording order in arbitrarily sized batches. The simulator's
//!   engines can record straight into any sink instead of a
//!   [`TraceBuilder`].
//! * [`StreamEncoder`] / [`StreamDecoder`] — the chunked binary
//!   container (format version 3): the same per-event wire records as
//!   the materialized format, framed into self-delimiting chunks so a
//!   writer can emit as rounds retire and a reader can fold from
//!   arbitrarily split byte frames. The decoder also accepts
//!   materialized version 1–2 files, and [`binary::from_bytes`] accepts
//!   version 3 by delegating here — the two formats are mutually
//!   readable.
//! * the folds — [`ScanSink`], [`ReduceSink`], [`WindowSink`],
//!   [`SalvageSink`], [`MaterializeSink`], [`TeeSink`] — sinks that
//!   consume an event stream into a makespan/activity scan, a full or
//!   windowed reduction, a salvaged reduction with per-rank coverage,
//!   or a materialized [`Trace`].
//!
//! # Identity with the materialized path
//!
//! The folds do not reimplement attribution: they drive the *same*
//! per-rank state machines (`ProcWalker`, `SalvageWalker`) and the same
//! window-scatter arithmetic as [`reduce`](crate::reduce()) /
//! [`reduce_windows`](crate::reduce_windows) /
//! [`reduce_checked`](crate::reduce_checked), stepping them as events
//! arrive instead of over materialized slices. Because every matrix
//! cell `(region, activity, processor)` is written by exactly one
//! rank's walker, and each rank's events reach its walker in the same
//! order on both paths, the per-cell floating-point accumulation
//! sequences — and therefore the results — are bit-identical. The
//! differential harness (`tests/stream_equivalence.rs`) locks this
//! empirically across workloads × faults × balance × frame sizes.
//!
//! One prerequisite the materialized path does not have: streaming
//! folds cannot sort, so each rank's events must already be
//! time-ordered in recording order. Every writer in this repository
//! (both simulator engines, the codecs) preserves that; a stream that
//! violates it fails with a named [`TraceError::NonMonotoneTime`]
//! instead of being silently misattributed.
//!
//! # Bounded memory
//!
//! The decoder stages only the bytes of one incomplete record (plus
//! whatever the caller feeds per call); the folds hold O(regions ×
//! activities × processors) of matrix state (per window, for
//! [`WindowSink`]) and O(1) walker state per rank. Nothing grows with
//! the event count.
//!
//! [`binary`]: crate::binary
//! [`binary::from_bytes`]: crate::binary::from_bytes

use bytes::{BufMut, Bytes, BytesMut};

use limba_model::{
    ActivityKind, ActivitySet, CountMatrixBuilder, MeasurementsBuilder, RegionId,
    STANDARD_ACTIVITIES,
};

use crate::binary::{put_event, try_event, Fnv, MAX_PROCESSORS};
use crate::reduce::{note_activity, scatter_windowed, Attribution, ProcWalker, ReducedTrace};
use crate::salvage::{SalvageWalker, SalvagedTrace};
use crate::{Event, EventPayload, Trace, TraceBuilder, TraceError};

/// Format version of the chunked streaming container.
pub const STREAM_VERSION: u16 = 3;

const MAGIC: &[u8; 8] = b"LIMBATRC";
/// Chunk tag: a batch of events (`u32` count, then that many records).
const CHUNK_EVENTS: u8 = 0;
/// Chunk tag: end of stream (`u64` total events, `u64` FNV-1a checksum
/// of every preceding byte).
const CHUNK_END: u8 = 1;
/// Largest region count a streamed header may declare. The
/// materialized decoder bounds counts against the bytes remaining in
/// the buffer; a stream has no "remaining", so a fixed cap stands in.
const MAX_REGIONS: usize = 1 << 20;
/// Largest single region-name length (bytes) a streamed header may
/// declare — bounds the decoder's staging buffer.
const MAX_REGION_NAME: usize = 1 << 20;
/// Decoded events are handed to the sink in batches of at most this
/// many, bounding the decoder's pending-event buffer.
const DECODE_BATCH: usize = 4096;

fn malformed(detail: impl Into<String>) -> TraceError {
    TraceError::Malformed {
        detail: detail.into(),
    }
}

/// The producer/consumer contract of the streaming pipeline: a trace
/// flows through exactly one [`begin`](TraceSink::begin), any number of
/// [`events`](TraceSink::events) batches (events in recording order;
/// batch boundaries carry no meaning), and one
/// [`finish`](TraceSink::finish).
///
/// Both ends of the pipeline speak it: the simulator's engines record
/// into a sink as rounds retire, and [`StreamDecoder`] replays a byte
/// stream into one. An error returned from any method propagates to
/// the producer, which aborts — this is how consumer cancellation
/// reaches a running simulation.
pub trait TraceSink {
    /// Starts a trace: processor count and the region name table.
    ///
    /// # Errors
    ///
    /// Implementations reject streams they cannot accept (e.g. a
    /// processor count over the supported maximum).
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError>;

    /// Delivers the next batch of events, in recording order.
    ///
    /// # Errors
    ///
    /// Implementations fail on malformed events or when their consumer
    /// is gone; the producer must stop feeding after an error.
    fn events(&mut self, events: &[Event]) -> Result<(), TraceError>;

    /// Ends the trace: no more events will arrive.
    ///
    /// # Errors
    ///
    /// Implementations surface finalization failures (e.g. a reduction
    /// over a stream that declared no regions).
    fn finish(&mut self) -> Result<(), TraceError>;
}

/// A [`TraceSink`] that materializes the stream into an ordinary
/// [`Trace`] — the bridge back to the batch pipeline, and the witness
/// that a streamed trace carries exactly the information a materialized
/// one does.
#[derive(Debug, Default)]
pub struct MaterializeSink {
    builder: Option<TraceBuilder>,
    trace: Option<Trace>,
}

impl MaterializeSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The materialized trace, once [`TraceSink::finish`] has run.
    pub fn into_trace(self) -> Option<Trace> {
        self.trace
    }
}

impl TraceSink for MaterializeSink {
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        let mut builder = TraceBuilder::new(processors);
        for name in region_names {
            builder.add_region(name.clone());
        }
        self.builder = Some(builder);
        Ok(())
    }

    fn events(&mut self, events: &[Event]) -> Result<(), TraceError> {
        let builder = self
            .builder
            .as_mut()
            .ok_or_else(|| malformed("events before begin"))?;
        builder.extend_events(events);
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        let builder = self
            .builder
            .take()
            .ok_or_else(|| malformed("finish before begin"))?;
        self.trace = Some(builder.build());
        Ok(())
    }
}

/// Forwards one stream to two sinks — e.g. a full reduction and a
/// windowed one folding the same frames in a single pass.
pub struct TeeSink<'a> {
    first: &'a mut dyn TraceSink,
    second: &'a mut dyn TraceSink,
}

impl<'a> TeeSink<'a> {
    /// Tees the stream into `first` then `second` (per call, in order).
    pub fn new(first: &'a mut dyn TraceSink, second: &'a mut dyn TraceSink) -> Self {
        TeeSink { first, second }
    }
}

impl TraceSink for TeeSink<'_> {
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        self.first.begin(processors, region_names)?;
        self.second.begin(processors, region_names)
    }

    fn events(&mut self, events: &[Event]) -> Result<(), TraceError> {
        self.first.events(events)?;
        self.second.events(events)
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        self.first.finish()?;
        self.second.finish()
    }
}

/// A [`TraceSink`] that encodes the stream into the chunked version-3
/// container and writes each frame straight to any [`io::Write`] — the
/// streaming counterpart of [`binary::to_bytes`]: the trace flows to a
/// file, pipe, or socket as it is produced and is never materialized.
///
/// Dropping the sink without [`finish`](TraceSink::finish) leaves a
/// truncated (salvage-grade) stream behind, exactly like a producer
/// that died mid-write; `finish` seals the stream with the end chunk
/// and flushes the writer.
///
/// [`io::Write`]: std::io::Write
/// [`binary::to_bytes`]: crate::binary::to_bytes
#[derive(Debug)]
pub struct WriteSink<W: std::io::Write> {
    writer: W,
    encoder: StreamEncoder,
    started: bool,
}

impl<W: std::io::Write> WriteSink<W> {
    /// Wraps a writer; frames are written as the stream arrives.
    pub fn new(writer: W) -> Self {
        WriteSink {
            writer,
            encoder: StreamEncoder::new(),
            started: false,
        }
    }

    /// Consumes the sink and returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write> TraceSink for WriteSink<W> {
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        if self.started {
            return Err(malformed("begin after begin"));
        }
        self.started = true;
        let header = self.encoder.header(processors, region_names)?;
        self.writer.write_all(&header)?;
        Ok(())
    }

    fn events(&mut self, events: &[Event]) -> Result<(), TraceError> {
        if !self.started {
            return Err(malformed("events before begin"));
        }
        let frame = self.encoder.frame(events);
        self.writer.write_all(&frame)?;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        if !self.started {
            return Err(malformed("finish before begin"));
        }
        let end = self.encoder.finish();
        self.writer.write_all(&end)?;
        self.writer.flush()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------

/// Encodes a trace stream into the chunked version-3 container, one
/// self-delimiting byte frame per call:
/// [`header`](StreamEncoder::header), then any number of
/// [`frame`](StreamEncoder::frame)s, then
/// [`finish`](StreamEncoder::finish) (which seals the stream with the
/// running event total and FNV-1a checksum). Concatenating the returned
/// frames yields a valid file that [`binary::from_bytes`] and
/// [`StreamDecoder`] both read.
///
/// ```text
/// magic    8 bytes  "LIMBATRC"
/// version  u16      3
/// procs    u32
/// nregions u32
/// regions  nregions × (u32 length, utf-8 bytes)
/// chunks   × (u8 tag 0, u32 count, count × event records)
/// end      u8 tag 1, u64 total events, u64 FNV-1a of all prior bytes
/// ```
///
/// [`binary::from_bytes`]: crate::binary::from_bytes
#[derive(Debug)]
pub struct StreamEncoder {
    hash: Fnv,
    events: u64,
}

impl StreamEncoder {
    /// Creates an encoder for one stream.
    pub fn new() -> Self {
        StreamEncoder {
            hash: Fnv::new(),
            events: 0,
        }
    }

    /// Encodes the stream header.
    ///
    /// # Errors
    ///
    /// Rejects processor counts over the supported maximum and region
    /// tables the streamed format cannot represent.
    pub fn header(
        &mut self,
        processors: usize,
        region_names: &[String],
    ) -> Result<Bytes, TraceError> {
        if processors > MAX_PROCESSORS {
            return Err(malformed(format!(
                "processor count {processors} exceeds the supported maximum {MAX_PROCESSORS}"
            )));
        }
        if region_names.len() > MAX_REGIONS {
            return Err(malformed(format!(
                "region count {} exceeds the streamed maximum {MAX_REGIONS}",
                region_names.len()
            )));
        }
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(MAGIC);
        buf.put_u16_le(STREAM_VERSION);
        buf.put_u32_le(processors as u32);
        buf.put_u32_le(region_names.len() as u32);
        for name in region_names {
            if name.len() > MAX_REGION_NAME {
                return Err(malformed(format!(
                    "region name of {} bytes exceeds the streamed maximum {MAX_REGION_NAME}",
                    name.len()
                )));
            }
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
        }
        self.hash.update(buf.as_ref());
        Ok(buf.freeze())
    }

    /// Encodes one batch of events as an event chunk. An empty batch
    /// encodes to an empty frame (nothing need be sent).
    pub fn frame(&mut self, events: &[Event]) -> Bytes {
        if events.is_empty() {
            return Bytes::from(Vec::new());
        }
        let mut buf = BytesMut::with_capacity(5 + events.len() * 25);
        // A u32 count caps one chunk at 4Gi events; longer batches
        // split into consecutive chunks, which decode identically.
        for chunk in events.chunks(u32::MAX as usize) {
            buf.put_u8(CHUNK_EVENTS);
            buf.put_u32_le(chunk.len() as u32);
            for e in chunk {
                put_event(&mut buf, e);
            }
            self.events += chunk.len() as u64;
        }
        self.hash.update(buf.as_ref());
        buf.freeze()
    }

    /// Seals the stream: the end chunk with the running event total and
    /// content checksum.
    pub fn finish(&mut self) -> Bytes {
        let mut buf = BytesMut::with_capacity(17);
        buf.put_u8(CHUNK_END);
        buf.put_u64_le(self.events);
        self.hash.update(buf.as_ref());
        buf.put_u64_le(self.hash.digest());
        buf.freeze()
    }
}

impl Default for StreamEncoder {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum DecodeState {
    /// Fixed 18-byte prelude: magic, version, processors, region count.
    Prelude,
    /// Region table entries still expected.
    Regions { left: usize },
    /// Materialized formats (v1–2): the u64 event count.
    EventCount,
    /// Materialized formats: events until the declared count is met.
    Events,
    /// Version 2 only: the trailing 8-byte checksum.
    Checksum,
    /// Streamed format (v3): the next chunk tag.
    ChunkTag,
    /// Streamed format: an event chunk's u32 count.
    BatchCount,
    /// Streamed format: events of the current chunk.
    Batch { left: u32 },
    /// Streamed format: the end chunk's total + checksum.
    Trailer,
    /// Stream fully consumed and verified.
    Done,
}

impl DecodeState {
    /// What the decoder was waiting for — names truncation errors.
    fn expecting(self) -> &'static str {
        match self {
            DecodeState::Prelude => "stream header",
            DecodeState::Regions { .. } => "region table",
            DecodeState::EventCount => "event count",
            DecodeState::Events => "events",
            DecodeState::Checksum => "content checksum",
            DecodeState::ChunkTag => "chunk tag",
            DecodeState::BatchCount => "event chunk count",
            DecodeState::Batch { .. } => "event chunk",
            DecodeState::Trailer => "end chunk",
            DecodeState::Done => "nothing",
        }
    }
}

/// Incremental push-based trace decoder: feed it byte chunks split at
/// *any* boundary — frame-aligned, mid-record, even one byte at a time
/// — and it replays the trace into a [`TraceSink`], verifying structure
/// and content checksum as it goes. Reads the streamed version-3
/// container and materialized version 1–2 files alike.
///
/// Memory: the decoder stages only the bytes of one incomplete item
/// (record, region name, or header field) between calls, plus a
/// bounded pending-event batch — never the whole trace.
///
/// A truncated stream surfaces as a named [`TraceError::Malformed`]
/// from [`StreamDecoder::finish`] saying what was being read; corrupted
/// bytes surface from [`StreamDecoder::feed`] as the earliest of a
/// structural error or a [`TraceError::ChecksumMismatch`]. (The
/// materialized decoder, holding the whole file, verifies the checksum
/// *before* structure; a stream cannot, so mid-stream corruption may
/// report structurally here. Valid input decodes identically on both.)
pub struct StreamDecoder {
    state: DecodeState,
    version: u16,
    processors: usize,
    region_names: Vec<String>,
    /// Declared region count, kept after `region_names` is handed to
    /// the sink: record validation needs it for the whole stream.
    nregions: usize,
    /// Declared event count (materialized formats only).
    expect_events: u64,
    /// Events decoded so far.
    seen_events: u64,
    hash: Fnv,
    /// Staged input: `buf[pos..]` is unconsumed.
    buf: Vec<u8>,
    pos: usize,
    /// Decoded events awaiting delivery to the sink.
    pending: Vec<Event>,
    /// Set once any error has been returned; the decoder is poisoned.
    failed: bool,
    /// Total bytes consumed from the input so far.
    consumed: u64,
    /// `consumed` as of the last *sealed* boundary (see
    /// [`StreamDecoder::sealed`]).
    sealed_at: u64,
}

impl StreamDecoder {
    /// Creates a decoder for one stream.
    pub fn new() -> Self {
        StreamDecoder {
            state: DecodeState::Prelude,
            version: 0,
            processors: 0,
            region_names: Vec::new(),
            nregions: 0,
            expect_events: 0,
            seen_events: 0,
            hash: Fnv::new(),
            buf: Vec::new(),
            pos: 0,
            pending: Vec::new(),
            failed: false,
            consumed: 0,
            sealed_at: 0,
        }
    }

    /// `true` once the stream has been fully consumed and verified.
    pub fn is_done(&self) -> bool {
        self.state == DecodeState::Done
    }

    /// Total input bytes the decoder has consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// The byte offset of the last **sealed** boundary: the end of the
    /// header or of a fully-consumed chunk (v3), the end of an event
    /// record (materialized v1–2), or the end of a verified stream.
    /// A file truncated at this offset decodes without error and a
    /// resumed producer may append from exactly here — it is where the
    /// startup recovery scrub cuts a torn spool tail back to.
    pub fn sealed(&self) -> u64 {
        self.sealed_at
    }

    /// Marks the current consumed offset as a sealed boundary.
    fn seal(&mut self) {
        self.sealed_at = self.consumed;
    }

    /// Rejects records referencing processors or regions the header
    /// never declared. The downstream folds refuse such records, so
    /// the decoder must too — otherwise a torn spool tail whose
    /// garbage bytes happen to parse as records could seal a resume
    /// boundary the replay would later fail on.
    fn check_event(&self, event: &Event) -> Result<(), TraceError> {
        if event.proc as usize >= self.processors {
            return Err(TraceError::UnknownProcessor { proc: event.proc });
        }
        match event.payload {
            EventPayload::EnterRegion { region } | EventPayload::LeaveRegion { region }
                if region >= self.nregions =>
            {
                Err(malformed(format!(
                    "record references region {region}, header declares {}",
                    self.nregions
                )))
            }
            _ => Ok(()),
        }
    }

    /// Consumes one chunk of input, delivering any completed events to
    /// `sink`. Chunks may be split at any byte boundary.
    ///
    /// # Errors
    ///
    /// Named [`TraceError`]s for structural damage, count caps, bytes
    /// after the end of the stream, and checksum mismatches — plus
    /// whatever `sink` returns. After an error the decoder is poisoned
    /// and every further call fails.
    pub fn feed(&mut self, chunk: &[u8], sink: &mut dyn TraceSink) -> Result<(), TraceError> {
        if self.failed {
            return Err(malformed("stream decoder poisoned by an earlier error"));
        }
        let result = self.feed_inner(chunk, sink);
        if result.is_err() {
            self.failed = true;
        }
        result
    }

    /// Ends the input: verifies the stream was complete and forwards
    /// [`TraceSink::finish`].
    ///
    /// # Errors
    ///
    /// A named truncation error when the stream ended mid-structure
    /// (saying what was being read), plus the conditions of
    /// [`StreamDecoder::feed`].
    pub fn finish(&mut self, sink: &mut dyn TraceSink) -> Result<(), TraceError> {
        if self.failed {
            return Err(malformed("stream decoder poisoned by an earlier error"));
        }
        if self.state != DecodeState::Done {
            self.failed = true;
            return Err(malformed(format!(
                "stream truncated while reading {}",
                self.state.expecting()
            )));
        }
        sink.finish()
    }

    fn feed_inner(&mut self, chunk: &[u8], sink: &mut dyn TraceSink) -> Result<(), TraceError> {
        if self.state == DecodeState::Done {
            if chunk.is_empty() {
                return Ok(());
            }
            return Err(malformed(format!(
                "{} bytes after end of stream",
                chunk.len()
            )));
        }
        self.buf.extend_from_slice(chunk);
        loop {
            let made_progress = self.step(sink)?;
            if self.pending.len() >= DECODE_BATCH {
                self.flush_pending(sink)?;
            }
            if !made_progress {
                break;
            }
        }
        self.flush_pending(sink)?;
        if self.state == DecodeState::Done && self.pos < self.buf.len() {
            return Err(malformed(format!(
                "{} bytes after end of stream",
                self.buf.len() - self.pos
            )));
        }
        // Compact: drop the consumed prefix so the staging buffer holds
        // only the incomplete tail between calls.
        self.buf.drain(..self.pos);
        self.pos = 0;
        Ok(())
    }

    fn flush_pending(&mut self, sink: &mut dyn TraceSink) -> Result<(), TraceError> {
        if !self.pending.is_empty() {
            sink.events(&self.pending)?;
            self.pending.clear();
        }
        Ok(())
    }

    fn avail(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Consumes `n` bytes (caller has checked availability), folding
    /// them into the running checksum unless `hashed` is false (the
    /// checksum field itself is excluded from its own hash).
    fn consume(&mut self, n: usize, hashed: bool) {
        if hashed {
            self.hash.update(&self.buf[self.pos..self.pos + n]);
        }
        self.pos += n;
        self.consumed += n as u64;
    }

    /// Attempts one parsing step; `Ok(false)` means more input is
    /// needed before anything further can be consumed.
    fn step(&mut self, sink: &mut dyn TraceSink) -> Result<bool, TraceError> {
        match self.state {
            DecodeState::Prelude => {
                let a = self.avail();
                if a.len() < 18 {
                    return Ok(false);
                }
                if &a[..8] != MAGIC {
                    return Err(malformed("bad magic"));
                }
                let version = u16::from_le_bytes(a[8..10].try_into().expect("2-byte version"));
                if !(1..=STREAM_VERSION).contains(&version) {
                    return Err(malformed(format!(
                        "unsupported version {version} (this build reads 1..={STREAM_VERSION})"
                    )));
                }
                let processors =
                    u32::from_le_bytes(a[10..14].try_into().expect("4-byte procs")) as usize;
                if processors > MAX_PROCESSORS {
                    return Err(malformed(format!(
                        "processor count {processors} exceeds the supported maximum \
                         {MAX_PROCESSORS}"
                    )));
                }
                let nregions =
                    u32::from_le_bytes(a[14..18].try_into().expect("4-byte nregions")) as usize;
                if nregions > MAX_REGIONS {
                    return Err(malformed(format!(
                        "region count {nregions} exceeds the streamed maximum {MAX_REGIONS}"
                    )));
                }
                self.version = version;
                self.processors = processors;
                self.region_names.reserve(nregions.min(1024));
                self.consume(18, true);
                self.advance_regions(nregions, sink)?;
                Ok(true)
            }
            DecodeState::Regions { left } => {
                let a = self.avail();
                if a.len() < 4 {
                    return Ok(false);
                }
                let len =
                    u32::from_le_bytes(a[..4].try_into().expect("4-byte name length")) as usize;
                if len > MAX_REGION_NAME {
                    return Err(malformed(format!(
                        "region name of {len} bytes exceeds the streamed maximum \
                         {MAX_REGION_NAME}"
                    )));
                }
                if a.len() < 4 + len {
                    return Ok(false);
                }
                let name = String::from_utf8(a[4..4 + len].to_vec())
                    .map_err(|e| malformed(format!("region name not utf-8: {e}")))?;
                self.region_names.push(name);
                self.consume(4 + len, true);
                self.advance_regions(left - 1, sink)?;
                Ok(true)
            }
            DecodeState::EventCount => {
                let a = self.avail();
                if a.len() < 8 {
                    return Ok(false);
                }
                self.expect_events = u64::from_le_bytes(a[..8].try_into().expect("8-byte count"));
                self.consume(8, true);
                self.state = if self.expect_events == 0 {
                    self.after_events()
                } else {
                    DecodeState::Events
                };
                self.seal();
                Ok(true)
            }
            DecodeState::Events => {
                let Some((event, len)) = try_event(self.avail())? else {
                    return Ok(false);
                };
                self.check_event(&event)?;
                self.pending.push(event);
                self.seen_events += 1;
                self.consume(len, true);
                if self.seen_events == self.expect_events {
                    self.state = self.after_events();
                }
                // Materialized formats have no chunk framing; every
                // record boundary is a valid resume point.
                self.seal();
                Ok(true)
            }
            DecodeState::Checksum => {
                let a = self.avail();
                if a.len() < 8 {
                    return Ok(false);
                }
                let expected = u64::from_le_bytes(a[..8].try_into().expect("8-byte checksum"));
                let actual = self.hash.digest();
                if expected != actual {
                    return Err(TraceError::ChecksumMismatch { expected, actual });
                }
                self.consume(8, false);
                self.state = DecodeState::Done;
                self.seal();
                Ok(true)
            }
            DecodeState::ChunkTag => {
                let a = self.avail();
                let Some(&tag) = a.first() else {
                    return Ok(false);
                };
                match tag {
                    CHUNK_EVENTS => {
                        self.consume(1, true);
                        self.state = DecodeState::BatchCount;
                    }
                    CHUNK_END => {
                        self.consume(1, true);
                        self.state = DecodeState::Trailer;
                    }
                    other => return Err(malformed(format!("unknown chunk tag {other}"))),
                }
                Ok(true)
            }
            DecodeState::BatchCount => {
                let a = self.avail();
                if a.len() < 4 {
                    return Ok(false);
                }
                let count = u32::from_le_bytes(a[..4].try_into().expect("4-byte batch count"));
                self.consume(4, true);
                self.state = if count == 0 {
                    DecodeState::ChunkTag
                } else {
                    DecodeState::Batch { left: count }
                };
                if count == 0 {
                    self.seal();
                }
                Ok(true)
            }
            DecodeState::Batch { left } => {
                let Some((event, len)) = try_event(self.avail())? else {
                    return Ok(false);
                };
                self.check_event(&event)?;
                self.pending.push(event);
                self.seen_events += 1;
                self.consume(len, true);
                self.state = if left == 1 {
                    DecodeState::ChunkTag
                } else {
                    DecodeState::Batch { left: left - 1 }
                };
                if left == 1 {
                    // The chunk's last record: a sealed v3 boundary.
                    self.seal();
                }
                Ok(true)
            }
            DecodeState::Trailer => {
                let a = self.avail();
                if a.len() < 16 {
                    return Ok(false);
                }
                let total = u64::from_le_bytes(a[..8].try_into().expect("8-byte total"));
                if total != self.seen_events {
                    return Err(malformed(format!(
                        "end chunk declares {total} events, stream carried {}",
                        self.seen_events
                    )));
                }
                let expected = u64::from_le_bytes(a[8..16].try_into().expect("8-byte checksum"));
                self.consume(8, true); // the total precedes the checksum, so it is hashed
                let actual = self.hash.digest();
                if expected != actual {
                    return Err(TraceError::ChecksumMismatch { expected, actual });
                }
                self.consume(8, false);
                self.state = DecodeState::Done;
                self.seal();
                Ok(true)
            }
            DecodeState::Done => Ok(false),
        }
    }

    /// Region table complete → announce the stream to the sink and move
    /// to the version's body state.
    fn advance_regions(&mut self, left: usize, sink: &mut dyn TraceSink) -> Result<(), TraceError> {
        if left > 0 {
            self.state = DecodeState::Regions { left };
            return Ok(());
        }
        sink.begin(self.processors, &self.region_names)?;
        self.nregions = self.region_names.len();
        self.region_names = Vec::new();
        self.state = if self.version >= STREAM_VERSION {
            DecodeState::ChunkTag
        } else {
            DecodeState::EventCount
        };
        // The header (prelude + region table) is complete: the first
        // sealed boundary.
        self.seal();
        Ok(())
    }

    /// Where a materialized format goes once all declared events are
    /// read: version 2 verifies its trailing checksum, version 1 ends.
    fn after_events(&self) -> DecodeState {
        if self.version >= 2 {
            DecodeState::Checksum
        } else {
            DecodeState::Done
        }
    }
}

impl Default for StreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Decodes a complete in-memory byte buffer through the streaming
/// decoder into `sink` — one `feed` of everything, then `finish`.
///
/// # Errors
///
/// The union of [`StreamDecoder::feed`] and [`StreamDecoder::finish`].
pub fn decode_all(data: &[u8], sink: &mut dyn TraceSink) -> Result<(), TraceError> {
    let mut decoder = StreamDecoder::new();
    decoder.feed(data, sink)?;
    decoder.finish(sink)
}

/// Materializes a streamed (version-3) byte buffer into a [`Trace`] —
/// the delegation target of [`binary::from_bytes`].
///
/// [`binary::from_bytes`]: crate::binary::from_bytes
pub(crate) fn trace_from_stream_bytes(data: &[u8]) -> Result<Trace, TraceError> {
    let mut sink = MaterializeSink::new();
    decode_all(data, &mut sink)?;
    sink.into_trace()
        .ok_or_else(|| malformed("stream ended before finish"))
}

/// Encodes a materialized trace into the streamed container (one event
/// chunk per `frame_events` events) — the round trip partner of
/// [`decode_all`] and the reference writer for format tests.
///
/// # Errors
///
/// Same conditions as [`StreamEncoder::header`].
pub fn to_stream_bytes(trace: &Trace, frame_events: usize) -> Result<Bytes, TraceError> {
    let mut enc = StreamEncoder::new();
    let mut out = BytesMut::with_capacity(64 + trace.events().len() * 25);
    out.put_slice(&enc.header(trace.processors(), trace.region_names())?);
    for batch in trace.events().chunks(frame_events.max(1)) {
        out.put_slice(&enc.frame(batch));
    }
    out.put_slice(&enc.finish());
    Ok(out.freeze())
}

// ---------------------------------------------------------------------
// Folds
// ---------------------------------------------------------------------

/// What one O(1)-memory pass over a stream learns: everything the
/// reducing folds need to be constructed — the run's makespan (window
/// width) and its activity set (matrix columns), both of which the
/// materialized path reads off the whole trace up front.
///
/// Produced by [`ScanSink`]; the streaming pipeline's first pass. The
/// simulator being deterministic (and a stored stream being static),
/// the second pass sees the identical events.
#[derive(Debug, Clone)]
pub struct StreamScan {
    /// Largest event timestamp — identical to the materialized
    /// makespan fold in [`reduce_windows`](crate::reduce_windows).
    pub makespan: f64,
    /// The paper's standard four activities plus extras in
    /// first-appearance order — identical to the materialized scan.
    pub activities: ActivitySet,
    /// Total events seen.
    pub events: u64,
    /// Processor count the stream declared.
    pub processors: usize,
    /// Region names the stream declared.
    pub region_names: Vec<String>,
}

/// First-pass scan: folds a stream into a [`StreamScan`] in O(1) memory
/// (plus the region name table).
#[derive(Debug, Default)]
pub struct ScanSink {
    makespan: f64,
    kinds: Vec<ActivityKind>,
    events: u64,
    processors: usize,
    region_names: Vec<String>,
    finished: bool,
}

impl ScanSink {
    /// Creates a scan pass.
    pub fn new() -> Self {
        ScanSink {
            makespan: 0.0,
            kinds: STANDARD_ACTIVITIES.to_vec(),
            events: 0,
            processors: 0,
            region_names: Vec::new(),
            finished: false,
        }
    }

    /// The scan result, once [`TraceSink::finish`] has run.
    pub fn into_scan(self) -> Option<StreamScan> {
        if !self.finished {
            return None;
        }
        Some(StreamScan {
            makespan: self.makespan,
            activities: ActivitySet::new(self.kinds),
            events: self.events,
            processors: self.processors,
            region_names: self.region_names,
        })
    }
}

impl TraceSink for ScanSink {
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        self.processors = processors;
        self.region_names = region_names.to_vec();
        Ok(())
    }

    fn events(&mut self, events: &[Event]) -> Result<(), TraceError> {
        for e in events {
            // Same fold as the materialized makespan computation.
            self.makespan = f64::max(self.makespan, e.time);
            note_activity(&mut self.kinds, e);
        }
        self.events += events.len() as u64;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        self.finished = true;
        Ok(())
    }
}

/// Inline per-rank structural validation for the strict folds: the
/// streaming counterpart of [`Trace::validate`]'s per-processor pass.
/// The batch `reduce` and `reduce_windows` validate the whole trace
/// before walking it; a stream cannot be pre-validated, so
/// [`ReduceSink`] and [`WindowSink`] run these checks event by event
/// and reject exactly the malformed streams the batch paths reject —
/// a crash-truncated trace fails windowing identically on both paths.
///
/// Ordering caveat (the same one [`SalvageSink`] documents): the batch
/// validator scans rank 0's whole stream before rank 1's, so when
/// *several* ranks are malformed it reports the lowest-ranked
/// violation; the streaming checker reports the first in recording
/// order. Truncation — the violation that actually occurs — only
/// manifests at end-of-stream, where `finish` checks in rank order and
/// reports the identical error.
struct RankChecker {
    stack: Vec<usize>,
    activity: Option<ActivityKind>,
    last_time: f64,
}

impl RankChecker {
    fn new() -> Self {
        RankChecker {
            stack: Vec::new(),
            activity: None,
            last_time: f64::NEG_INFINITY,
        }
    }

    /// Mirrors one iteration of [`Trace::validate`]'s per-event loop.
    fn step(&mut self, proc: u32, e: &Event, regions: usize) -> Result<(), TraceError> {
        match e.payload {
            EventPayload::EnterRegion { region } | EventPayload::LeaveRegion { region }
                if region >= regions =>
            {
                return Err(TraceError::UnknownRegion { region });
            }
            _ => {}
        }
        if e.time < self.last_time {
            return Err(TraceError::NonMonotoneTime {
                proc,
                before: self.last_time,
                after: e.time,
            });
        }
        self.last_time = e.time;
        match e.payload {
            EventPayload::EnterRegion { region } => self.stack.push(region),
            EventPayload::LeaveRegion { region } => match self.stack.pop() {
                Some(top) if top == region => {}
                Some(top) => {
                    return Err(TraceError::UnbalancedNesting {
                        proc,
                        detail: format!("left region {region} while inside {top}"),
                    })
                }
                None => {
                    return Err(TraceError::UnbalancedNesting {
                        proc,
                        detail: format!("left region {region} that was never entered"),
                    })
                }
            },
            EventPayload::BeginActivity { kind } => {
                if let Some(current) = self.activity {
                    return Err(TraceError::UnbalancedNesting {
                        proc,
                        detail: format!("began {kind} while {current} still active"),
                    });
                }
                if self.stack.is_empty() {
                    return Err(TraceError::UnbalancedNesting {
                        proc,
                        detail: format!("began {kind} outside any region"),
                    });
                }
                self.activity = Some(kind);
            }
            EventPayload::EndActivity { kind } => match self.activity.take() {
                Some(current) if current == kind => {}
                Some(current) => {
                    return Err(TraceError::UnbalancedNesting {
                        proc,
                        detail: format!("ended {kind} while {current} active"),
                    })
                }
                None => {
                    return Err(TraceError::UnbalancedNesting {
                        proc,
                        detail: format!("ended {kind} that never began"),
                    })
                }
            },
            EventPayload::MessageSend { .. } | EventPayload::MessageRecv { .. } => {}
        }
        Ok(())
    }

    /// Mirrors [`Trace::validate`]'s end-of-trace checks.
    fn finish(&mut self, proc: u32) -> Result<(), TraceError> {
        if let Some(kind) = self.activity {
            return Err(TraceError::UnbalancedNesting {
                proc,
                detail: format!("activity {kind} still open at end of trace"),
            });
        }
        if let Some(region) = self.stack.pop() {
            return Err(TraceError::UnbalancedNesting {
                proc,
                detail: format!("region {region} still open at end of trace"),
            });
        }
        Ok(())
    }
}

/// Shared plumbing of the reducing folds: the measurement and count
/// builders plus the per-rank walkers' monotonicity bookkeeping.
struct FoldCore {
    activities: ActivitySet,
    mb: Option<MeasurementsBuilder>,
    cb: Option<CountMatrixBuilder>,
    /// Last timestamp per rank — streaming cannot sort, so each rank's
    /// stream must arrive time-ordered (every in-repo writer's order).
    last_time: Vec<f64>,
}

impl FoldCore {
    fn new(activities: ActivitySet) -> Self {
        FoldCore {
            activities,
            mb: None,
            cb: None,
            last_time: Vec::new(),
        }
    }

    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        if processors > MAX_PROCESSORS {
            return Err(malformed(format!(
                "processor count {processors} exceeds the supported maximum {MAX_PROCESSORS}"
            )));
        }
        let mut mb = MeasurementsBuilder::with_activities(processors, self.activities.clone());
        for name in region_names {
            mb.add_region(name.clone());
        }
        self.mb = Some(mb);
        self.cb = Some(CountMatrixBuilder::new(processors));
        self.last_time = vec![f64::NEG_INFINITY; processors];
        Ok(())
    }
}

/// Streaming full reduction — the fold counterpart of
/// [`reduce`](crate::reduce()), bit-identical on every stream the
/// simulator produces. Structural validation runs inline (see
/// [`RankChecker`]): malformed streams — truncation included — fail
/// with the same [`TraceError`] the batch path's up-front validation
/// reports, never a panic. For lenient salvage of truncated streams use
/// [`SalvageSink`].
///
/// Construct it with the stream's [`ActivitySet`] (from a first-pass
/// [`ScanSink`]); the materialized path reads the set off the whole
/// trace, which a stream cannot.
pub struct ReduceSink {
    core: FoldCore,
    walkers: Vec<ProcWalker>,
    checkers: Vec<RankChecker>,
    regions: usize,
    result: Option<ReducedTrace>,
}

impl ReduceSink {
    /// Creates the fold for a stream using `activities` (the scan
    /// pass's [`StreamScan::activities`]).
    pub fn new(activities: ActivitySet) -> Self {
        ReduceSink {
            core: FoldCore::new(activities),
            walkers: Vec::new(),
            checkers: Vec::new(),
            regions: 0,
            result: None,
        }
    }

    /// The reduction, once [`TraceSink::finish`] has run.
    pub fn into_reduced(self) -> Option<ReducedTrace> {
        self.result
    }
}

impl TraceSink for ReduceSink {
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        self.core.begin(processors, region_names)?;
        self.walkers = std::iter::repeat_with(ProcWalker::new)
            .take(processors)
            .collect();
        self.checkers = std::iter::repeat_with(RankChecker::new)
            .take(processors)
            .collect();
        self.regions = region_names.len();
        Ok(())
    }

    fn events(&mut self, events: &[Event]) -> Result<(), TraceError> {
        let mb = self
            .core
            .mb
            .as_mut()
            .ok_or_else(|| malformed("events before begin"))?;
        let cb = self.core.cb.as_mut().expect("begin created both builders");
        for e in events {
            let Some(checker) = self.checkers.get_mut(e.proc as usize) else {
                return Err(TraceError::UnknownProcessor { proc: e.proc });
            };
            checker.step(e.proc, e, self.regions)?;
            let walker = &mut self.walkers[e.proc as usize];
            let mut failure = None;
            walker.step(e, &mut |attribution| {
                if failure.is_some() {
                    return;
                }
                let result = match attribution {
                    Attribution::Interval {
                        region,
                        kind,
                        start,
                        end,
                    } => mb.record(RegionId::new(region), kind, e.proc as usize, end - start),
                    Attribution::Count {
                        region,
                        kind,
                        amount,
                        ..
                    } => cb
                        .record(RegionId::new(region), kind, e.proc as usize, amount)
                        .and(Ok(())),
                };
                if let Err(err) = result {
                    failure = Some(err.into());
                }
            });
            if let Some(err) = failure {
                return Err(err);
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        let mb = self
            .core
            .mb
            .take()
            .ok_or_else(|| malformed("finish before begin"))?;
        let cb = self.core.cb.take().expect("begin created both builders");
        // Rank order, matching the batch validator's reporting when
        // several ranks were truncated.
        for (proc, checker) in self.checkers.iter_mut().enumerate() {
            checker.finish(proc as u32)?;
        }
        self.result = Some(ReducedTrace {
            measurements: mb.build()?,
            counts: cb.build(),
        });
        Ok(())
    }
}

/// Streaming windowed reduction — the fold counterpart of
/// [`reduce_windows`](crate::reduce_windows), driving the identical
/// window-scatter arithmetic, bit-identical on well-formed streams.
/// Structural validation runs inline (see [`RankChecker`]), so a
/// malformed or crash-truncated stream fails windowing with the same
/// [`TraceError`] the batch path reports from its up-front validation.
///
/// Needs the run's horizon (makespan) up front to fix the window width
/// — which is exactly what the first-pass [`ScanSink`] provides; the
/// deterministic simulator replays the identical stream on the second
/// pass. Memory is O(windows × regions × activities × processors) —
/// the size of the *output* — independent of event count.
pub struct WindowSink {
    windows: usize,
    width: f64,
    activities: ActivitySet,
    builders: Vec<(MeasurementsBuilder, CountMatrixBuilder)>,
    walkers: Vec<ProcWalker>,
    checkers: Vec<RankChecker>,
    regions: usize,
    began: bool,
    result: Option<Vec<ReducedTrace>>,
}

impl WindowSink {
    /// Creates the fold: `windows` equal slices of `[0, makespan]`,
    /// using `activities` (both from the scan pass).
    ///
    /// # Errors
    ///
    /// The same degenerate-request errors as
    /// [`reduce_windows`](crate::reduce_windows): zero windows, or a
    /// stream spanning no time.
    pub fn new(windows: usize, makespan: f64, activities: ActivitySet) -> Result<Self, TraceError> {
        if windows == 0 {
            return Err(malformed("window count must be positive"));
        }
        if makespan <= 0.0 {
            return Err(malformed("trace spans no time, cannot window"));
        }
        Ok(WindowSink {
            windows,
            width: makespan / windows as f64,
            activities,
            builders: Vec::new(),
            walkers: Vec::new(),
            checkers: Vec::new(),
            regions: 0,
            began: false,
            result: None,
        })
    }

    /// The per-window reductions, once [`TraceSink::finish`] has run.
    pub fn into_windows(self) -> Option<Vec<ReducedTrace>> {
        self.result
    }
}

impl TraceSink for WindowSink {
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        if processors > MAX_PROCESSORS {
            return Err(malformed(format!(
                "processor count {processors} exceeds the supported maximum {MAX_PROCESSORS}"
            )));
        }
        self.builders = (0..self.windows)
            .map(|_| {
                let mut mb =
                    MeasurementsBuilder::with_activities(processors, self.activities.clone());
                for name in region_names {
                    mb.add_region(name.clone());
                }
                (mb, CountMatrixBuilder::new(processors))
            })
            .collect();
        self.walkers = std::iter::repeat_with(ProcWalker::new)
            .take(processors)
            .collect();
        self.checkers = std::iter::repeat_with(RankChecker::new)
            .take(processors)
            .collect();
        self.regions = region_names.len();
        self.began = true;
        Ok(())
    }

    fn events(&mut self, events: &[Event]) -> Result<(), TraceError> {
        if !self.began {
            return Err(malformed("events before begin"));
        }
        for e in events {
            let Some(checker) = self.checkers.get_mut(e.proc as usize) else {
                return Err(TraceError::UnknownProcessor { proc: e.proc });
            };
            checker.step(e.proc, e, self.regions)?;
            let walker = &mut self.walkers[e.proc as usize];
            let builders = &mut self.builders;
            let width = self.width;
            let mut failure = None;
            walker.step(e, &mut |attribution| {
                if failure.is_some() {
                    return;
                }
                if let Err(err) = scatter_windowed(builders, width, e.proc, attribution) {
                    failure = Some(err.into());
                }
            });
            if let Some(err) = failure {
                return Err(err);
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        if !self.began {
            return Err(malformed("finish before begin"));
        }
        // Rank order, matching the batch validator's reporting when
        // several ranks were truncated.
        for (proc, checker) in self.checkers.iter_mut().enumerate() {
            checker.finish(proc as u32)?;
        }
        let builders = std::mem::take(&mut self.builders);
        let windows = builders
            .into_iter()
            .map(|(mb, cb)| {
                Ok(ReducedTrace {
                    measurements: mb.build()?,
                    counts: cb.build(),
                })
            })
            .collect::<Result<Vec<_>, TraceError>>()?;
        self.result = Some(windows);
        Ok(())
    }
}

/// Streaming salvaged reduction — the fold counterpart of
/// [`reduce_checked`](crate::reduce_checked): identical attribution,
/// identical truncation repair (open regions and activities closed at
/// each rank's last timestamp on [`TraceSink::finish`]), identical
/// per-rank [`coverage`](crate::RankCoverage) records, and the same
/// structured [`TraceError::MalformedEvent`] errors naming an
/// offending event's recording-order index.
///
/// One divergence is inherent: the batch path walks rank 0's whole
/// stream before rank 1's, so when *several* ranks carry malformed
/// events it reports the lowest-ranked one; the streaming fold fails at
/// the first malformed event in recording order. Single-error streams
/// — and all valid or merely truncated ones — behave identically.
pub struct SalvageSink {
    core: FoldCore,
    walkers: Vec<SalvageWalker>,
    /// Recording-order index of the next event (spans batches).
    index: usize,
    result: Option<SalvagedTrace>,
}

impl SalvageSink {
    /// Creates the fold for a stream using `activities` (the scan
    /// pass's [`StreamScan::activities`]).
    pub fn new(activities: ActivitySet) -> Self {
        SalvageSink {
            core: FoldCore::new(activities),
            walkers: Vec::new(),
            index: 0,
            result: None,
        }
    }

    /// The salvaged reduction, once [`TraceSink::finish`] has run.
    pub fn into_salvaged(self) -> Option<SalvagedTrace> {
        self.result
    }
}

impl TraceSink for SalvageSink {
    fn begin(&mut self, processors: usize, region_names: &[String]) -> Result<(), TraceError> {
        self.core.begin(processors, region_names)?;
        self.walkers = (0..processors)
            .map(|proc| SalvageWalker::new(proc as u32, region_names.len()))
            .collect();
        Ok(())
    }

    fn events(&mut self, events: &[Event]) -> Result<(), TraceError> {
        let mb = self
            .core
            .mb
            .as_mut()
            .ok_or_else(|| malformed("events before begin"))?;
        let cb = self.core.cb.as_mut().expect("begin created both builders");
        for e in events {
            let index = self.index;
            self.index += 1;
            let Some(walker) = self.walkers.get_mut(e.proc as usize) else {
                // Same structured error as the batch partitioner.
                return Err(TraceError::MalformedEvent {
                    proc: e.proc,
                    index,
                    detail: format!(
                        "references processor {}, trace has {}",
                        e.proc,
                        self.walkers.len()
                    ),
                });
            };
            let last = &mut self.core.last_time[e.proc as usize];
            if e.time < *last {
                return Err(TraceError::NonMonotoneTime {
                    proc: e.proc,
                    before: *last,
                    after: e.time,
                });
            }
            *last = e.time;
            let mut failure = None;
            walker.step(index, e, &mut |attribution| {
                if failure.is_some() {
                    return;
                }
                let result = match attribution {
                    Attribution::Interval {
                        region,
                        kind,
                        start,
                        end,
                    } => mb.record(RegionId::new(region), kind, e.proc as usize, end - start),
                    Attribution::Count {
                        region,
                        kind,
                        amount,
                        ..
                    } => cb
                        .record(RegionId::new(region), kind, e.proc as usize, amount)
                        .and(Ok(())),
                };
                if let Err(err) = result {
                    failure = Some(err.into());
                }
            })?;
            if let Some(err) = failure {
                return Err(err);
            }
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceError> {
        let mut mb = self
            .core
            .mb
            .take()
            .ok_or_else(|| malformed("finish before begin"))?;
        let mut cb = self.core.cb.take().expect("begin created both builders");
        let walkers = std::mem::take(&mut self.walkers);
        let mut coverage = Vec::with_capacity(walkers.len());
        for walker in walkers {
            let proc = walker.proc();
            let mut failure: Option<TraceError> = None;
            let cov = walker.finish(&mut |attribution| {
                if failure.is_some() {
                    return;
                }
                let result = match attribution {
                    Attribution::Interval {
                        region,
                        kind,
                        start,
                        end,
                    } => mb.record(RegionId::new(region), kind, proc as usize, end - start),
                    Attribution::Count {
                        region,
                        kind,
                        amount,
                        ..
                    } => cb
                        .record(RegionId::new(region), kind, proc as usize, amount)
                        .and(Ok(())),
                };
                if let Err(err) = result {
                    failure = Some(err.into());
                }
            });
            if let Some(err) = failure {
                return Err(err);
            }
            coverage.push(cov);
        }
        self.result = Some(SalvagedTrace {
            reduced: ReducedTrace {
                measurements: mb.build()?,
                counts: cb.build(),
            },
            coverage,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{from_bytes, to_bytes};
    use crate::{reduce, reduce_checked, reduce_well_formed, reduce_windows};
    use limba_model::ProcessorId;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(3);
        let r0 = b.add_region("solver");
        let r1 = b.add_region("exchange");
        b.push(Event::enter(0.0, 0, r0));
        b.push(Event::begin_activity(0.5, 0, ActivityKind::Synchronization));
        b.push(Event::end_activity(0.75, 0, ActivityKind::Synchronization));
        b.push(Event::leave(1.0, 0, r0));
        b.push(Event::enter(0.0, 2, r1));
        b.push(Event::message_send(0.25, 2, 1, 4096));
        b.push(Event::message_recv(0.5, 2, 1, 128));
        b.push(Event::leave(1.5, 2, r1));
        b.build()
    }

    fn stream_trace(trace: &Trace, frame_events: usize, sink: &mut dyn TraceSink) {
        sink.begin(trace.processors(), trace.region_names())
            .unwrap();
        for batch in trace.events().chunks(frame_events.max(1)) {
            sink.events(batch).unwrap();
        }
        sink.finish().unwrap();
    }

    #[test]
    fn materialize_sink_round_trips() {
        let t = sample();
        let mut sink = MaterializeSink::new();
        stream_trace(&t, 3, &mut sink);
        assert_eq!(sink.into_trace().unwrap(), t);
    }

    #[test]
    fn v3_round_trips_through_materialized_reader() {
        let t = sample();
        for frame in [1, 2, 7, 1000] {
            let bytes = to_stream_bytes(&t, frame).unwrap();
            assert_eq!(from_bytes(&bytes).unwrap(), t, "frame size {frame}");
        }
    }

    #[test]
    fn stream_decoder_reads_materialized_formats() {
        let t = sample();
        let v2 = to_bytes(&t);
        let mut sink = MaterializeSink::new();
        decode_all(&v2, &mut sink).unwrap();
        assert_eq!(sink.into_trace().unwrap(), t);

        // Version 1: checksum stripped, version patched.
        let mut v1 = v2[..v2.len() - 8].to_vec();
        v1[8..10].copy_from_slice(&1u16.to_le_bytes());
        let mut sink = MaterializeSink::new();
        decode_all(&v1, &mut sink).unwrap();
        assert_eq!(sink.into_trace().unwrap(), t);
    }

    #[test]
    fn byte_at_a_time_feeding_decodes_identically() {
        let t = sample();
        for bytes in [
            to_stream_bytes(&t, 2).unwrap(),
            to_stream_bytes(&t, 1000).unwrap(),
            to_bytes(&t),
        ] {
            let mut sink = MaterializeSink::new();
            let mut dec = StreamDecoder::new();
            for b in bytes.iter() {
                dec.feed(&[*b], &mut sink).unwrap();
            }
            dec.finish(&mut sink).unwrap();
            assert_eq!(sink.into_trace().unwrap(), t);
        }
    }

    #[test]
    fn truncation_yields_named_error_never_panic() {
        let t = sample();
        let bytes = to_stream_bytes(&t, 2).unwrap();
        for cut in 0..bytes.len() {
            let mut sink = MaterializeSink::new();
            let mut dec = StreamDecoder::new();
            let fed = dec.feed(&bytes[..cut], &mut sink);
            let finished = fed.and_then(|()| dec.finish(&mut sink));
            assert!(finished.is_err(), "truncation at {cut} was accepted");
        }
    }

    #[test]
    fn trailing_bytes_after_end_are_rejected() {
        let t = sample();
        let mut bytes = to_stream_bytes(&t, 4).unwrap().to_vec();
        bytes.push(0);
        let mut sink = MaterializeSink::new();
        assert!(decode_all(&bytes, &mut sink).is_err());

        // Also when the surplus arrives in a later feed.
        let good = to_stream_bytes(&t, 4).unwrap();
        let mut sink = MaterializeSink::new();
        let mut dec = StreamDecoder::new();
        dec.feed(&good, &mut sink).unwrap();
        assert!(dec.feed(&[0], &mut sink).is_err());
    }

    #[test]
    fn corrupted_stream_is_rejected() {
        let t = sample();
        let bytes = to_stream_bytes(&t, 3).unwrap();
        for i in 10..bytes.len() {
            let mut corrupt = bytes.to_vec();
            corrupt[i] ^= 0x40;
            let mut sink = MaterializeSink::new();
            assert!(
                decode_all(&corrupt, &mut sink).is_err(),
                "flip at byte {i} was accepted"
            );
        }
    }

    #[test]
    fn event_total_mismatch_is_named() {
        let t = sample();
        let mut enc = StreamEncoder::new();
        let mut out = Vec::new();
        out.extend_from_slice(&enc.header(t.processors(), t.region_names()).unwrap());
        out.extend_from_slice(&enc.frame(t.events()));
        enc.events += 1; // lie about the total
        out.extend_from_slice(&enc.finish());
        let mut sink = MaterializeSink::new();
        let err = decode_all(&out, &mut sink).unwrap_err().to_string();
        assert!(err.contains("declares"), "{err}");
    }

    #[test]
    fn hostile_counts_are_rejected() {
        // Oversized processor count.
        let mut enc = StreamEncoder::new();
        assert!(enc.header(MAX_PROCESSORS + 1, &[]).is_err());

        // Oversized region count in the raw header.
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC);
        raw.extend_from_slice(&STREAM_VERSION.to_le_bytes());
        raw.extend_from_slice(&1u32.to_le_bytes());
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut sink = MaterializeSink::new();
        let mut dec = StreamDecoder::new();
        let err = dec.feed(&raw, &mut sink).unwrap_err().to_string();
        assert!(err.contains("region count"), "{err}");

        // Oversized region name length.
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC);
        raw.extend_from_slice(&STREAM_VERSION.to_le_bytes());
        raw.extend_from_slice(&1u32.to_le_bytes());
        raw.extend_from_slice(&1u32.to_le_bytes());
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut sink = MaterializeSink::new();
        let mut dec = StreamDecoder::new();
        let err = dec.feed(&raw, &mut sink).unwrap_err().to_string();
        assert!(err.contains("region name"), "{err}");
    }

    #[test]
    fn scan_matches_materialized_preambles() {
        let t = sample();
        let mut scan = ScanSink::new();
        stream_trace(&t, 3, &mut scan);
        let scan = scan.into_scan().unwrap();
        let makespan = t.events().iter().map(|e| e.time).fold(0.0f64, f64::max);
        assert_eq!(scan.makespan.to_bits(), makespan.to_bits());
        assert_eq!(scan.events, t.events().len() as u64);
        assert_eq!(
            scan.activities.as_slice(),
            reduce(&t).unwrap().measurements.activities().as_slice()
        );
    }

    #[test]
    fn reduce_sink_is_bit_identical_to_batch() {
        let t = sample();
        let batch = reduce_well_formed(&t).unwrap();
        for frame in [1, 2, 5, 100] {
            let mut scan = ScanSink::new();
            stream_trace(&t, frame, &mut scan);
            let scan = scan.into_scan().unwrap();
            let mut fold = ReduceSink::new(scan.activities.clone());
            stream_trace(&t, frame, &mut fold);
            let streamed = fold.into_reduced().unwrap();
            assert_eq!(streamed.measurements, batch.measurements);
            assert_eq!(streamed.counts, batch.counts);
        }
    }

    #[test]
    fn window_sink_is_bit_identical_to_batch() {
        let t = sample();
        for windows in [1, 2, 3, 7] {
            let batch = reduce_windows(&t, windows).unwrap();
            let mut scan = ScanSink::new();
            stream_trace(&t, 3, &mut scan);
            let scan = scan.into_scan().unwrap();
            let mut fold =
                WindowSink::new(windows, scan.makespan, scan.activities.clone()).unwrap();
            stream_trace(&t, 3, &mut fold);
            let streamed = fold.into_windows().unwrap();
            assert_eq!(streamed.len(), batch.len());
            for (s, b) in streamed.iter().zip(&batch) {
                assert_eq!(s.measurements, b.measurements);
                assert_eq!(s.counts, b.counts);
            }
        }
    }

    #[test]
    fn salvage_sink_matches_batch_on_truncated_streams() {
        // Rank 1 crashes mid-activity; rank 0 completes.
        let mut b = TraceBuilder::new(2);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::leave(4.0, 0, r));
        b.push(Event::enter(0.0, 1, r));
        b.push(Event::begin_activity(2.0, 1, ActivityKind::Collective));
        b.push(Event::message_send(2.5, 1, 0, 128));
        let t = b.build();
        let batch = reduce_checked(&t).unwrap();
        for frame in [1, 2, 100] {
            let mut scan = ScanSink::new();
            stream_trace(&t, frame, &mut scan);
            let scan = scan.into_scan().unwrap();
            let mut fold = SalvageSink::new(scan.activities.clone());
            stream_trace(&t, frame, &mut fold);
            let streamed = fold.into_salvaged().unwrap();
            assert_eq!(streamed.coverage, batch.coverage);
            assert_eq!(streamed.reduced.measurements, batch.reduced.measurements);
            assert_eq!(streamed.reduced.counts, batch.reduced.counts);
        }
    }

    #[test]
    fn salvage_sink_names_malformed_events() {
        let mut b = TraceBuilder::new(2);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::leave(1.0, 0, r));
        b.push(Event::leave(1.0, 1, r));
        let t = b.build();
        let mut scan = ScanSink::new();
        stream_trace(&t, 10, &mut scan);
        let mut fold = SalvageSink::new(scan.into_scan().unwrap().activities);
        fold.begin(t.processors(), t.region_names()).unwrap();
        let err = fold.events(t.events()).unwrap_err();
        match err {
            TraceError::MalformedEvent { proc, index, .. } => {
                assert_eq!(proc, 1);
                assert_eq!(index, 2);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn folds_reject_backwards_rank_clocks() {
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(2.0, 0, r));
        b.push(Event::leave(1.0, 0, r));
        let t = b.build();
        let mut fold = SalvageSink::new(ActivitySet::standard());
        fold.begin(t.processors(), t.region_names()).unwrap();
        assert!(matches!(
            fold.events(t.events()),
            Err(TraceError::NonMonotoneTime { proc: 0, .. })
        ));
    }

    #[test]
    fn tee_sink_feeds_both() {
        let t = sample();
        let mut a = MaterializeSink::new();
        let mut b = MaterializeSink::new();
        {
            let mut tee = TeeSink::new(&mut a, &mut b);
            stream_trace(&t, 4, &mut tee);
        }
        assert_eq!(a.into_trace().unwrap(), t);
        assert_eq!(b.into_trace().unwrap(), t);
    }

    #[test]
    fn window_sink_rejects_degenerate_requests() {
        assert!(WindowSink::new(0, 1.0, ActivitySet::standard()).is_err());
        assert!(WindowSink::new(2, 0.0, ActivitySet::standard()).is_err());
    }

    #[test]
    fn salvage_single_rank_stream_closes_out() {
        let mut b = TraceBuilder::new(1);
        let r = b.add_region("r");
        b.push(Event::enter(0.0, 0, r));
        b.push(Event::leave(2.0, 0, r));
        let t = b.build();
        let batch = reduce_checked(&t).unwrap();
        let mut fold = SalvageSink::new(ActivitySet::standard());
        stream_trace(&t, 1, &mut fold);
        let streamed = fold.into_salvaged().unwrap();
        assert!(streamed.is_complete());
        assert_eq!(
            streamed
                .reduced
                .measurements
                .time(r, ActivityKind::Computation, ProcessorId::new(0)),
            batch
                .reduced
                .measurements
                .time(r, ActivityKind::Computation, ProcessorId::new(0)),
        );
    }
}
