//! Compact binary codec for traces.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8 bytes  "LIMBATRC"
//! version  u16      1
//! procs    u32
//! nregions u32
//! regions  nregions × (u32 length, utf-8 bytes)
//! nevents  u64
//! events   nevents × (f64 time, u32 proc, u8 op, operands)
//! ```
//!
//! Operands by op code: `0` enter / `1` leave → `u32` region; `2` begin /
//! `3` end → `u8` activity index; `4` send / `5` recv → `u32` peer +
//! `u64` bytes.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use limba_model::ActivityKind;

use crate::{Event, EventPayload, Trace, TraceBuilder, TraceError};

const MAGIC: &[u8; 8] = b"LIMBATRC";
const VERSION: u16 = 1;

fn malformed(detail: impl Into<String>) -> TraceError {
    TraceError::Malformed {
        detail: detail.into(),
    }
}

/// Encodes `trace` into a byte buffer.
pub fn to_bytes(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + trace.events().len() * 24);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(trace.processors() as u32);
    buf.put_u32_le(trace.region_names().len() as u32);
    for name in trace.region_names() {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
    }
    buf.put_u64_le(trace.events().len() as u64);
    for e in trace.events() {
        buf.put_f64_le(e.time);
        buf.put_u32_le(e.proc);
        match e.payload {
            EventPayload::EnterRegion { region } => {
                buf.put_u8(0);
                buf.put_u32_le(region as u32);
            }
            EventPayload::LeaveRegion { region } => {
                buf.put_u8(1);
                buf.put_u32_le(region as u32);
            }
            EventPayload::BeginActivity { kind } => {
                buf.put_u8(2);
                buf.put_u8(kind.index() as u8);
            }
            EventPayload::EndActivity { kind } => {
                buf.put_u8(3);
                buf.put_u8(kind.index() as u8);
            }
            EventPayload::MessageSend { peer, bytes } => {
                buf.put_u8(4);
                buf.put_u32_le(peer);
                buf.put_u64_le(bytes);
            }
            EventPayload::MessageRecv { peer, bytes } => {
                buf.put_u8(5);
                buf.put_u32_le(peer);
                buf.put_u64_le(bytes);
            }
        }
    }
    buf.freeze()
}

/// Writes the binary encoding of `trace` to `writer`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write<W: Write>(trace: &Trace, mut writer: W) -> Result<(), TraceError> {
    writer.write_all(&to_bytes(trace))?;
    Ok(())
}

macro_rules! need {
    ($buf:expr, $n:expr, $what:expr) => {
        if $buf.remaining() < $n {
            return Err(malformed(concat!("truncated while reading ", $what)));
        }
    };
}

/// Decodes a trace from a byte slice.
///
/// # Errors
///
/// Returns [`TraceError::Malformed`] for bad magic, version, truncation,
/// or invalid activity indices. The decoded trace is not validated.
pub fn from_bytes(mut buf: &[u8]) -> Result<Trace, TraceError> {
    need!(buf, 8 + 2 + 4 + 4, "header");
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(malformed("bad magic"));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(malformed(format!("unsupported version {version}")));
    }
    let processors = buf.get_u32_le() as usize;
    let nregions = buf.get_u32_le() as usize;
    let mut builder = TraceBuilder::new(processors);
    for _ in 0..nregions {
        need!(buf, 4, "region name length");
        let len = buf.get_u32_le() as usize;
        need!(buf, len, "region name");
        let mut name = vec![0u8; len];
        buf.copy_to_slice(&mut name);
        let name = String::from_utf8(name)
            .map_err(|e| malformed(format!("region name not utf-8: {e}")))?;
        builder.add_region(name);
    }
    need!(buf, 8, "event count");
    let nevents = buf.get_u64_le();
    for _ in 0..nevents {
        need!(buf, 8 + 4 + 1, "event header");
        let time = buf.get_f64_le();
        let proc = buf.get_u32_le();
        let op = buf.get_u8();
        let payload = match op {
            0 | 1 => {
                need!(buf, 4, "region operand");
                let region = buf.get_u32_le() as usize;
                if op == 0 {
                    EventPayload::EnterRegion { region }
                } else {
                    EventPayload::LeaveRegion { region }
                }
            }
            2 | 3 => {
                need!(buf, 1, "activity operand");
                let idx = buf.get_u8() as usize;
                let kind = ActivityKind::from_index(idx)
                    .ok_or_else(|| malformed(format!("bad activity index {idx}")))?;
                if op == 2 {
                    EventPayload::BeginActivity { kind }
                } else {
                    EventPayload::EndActivity { kind }
                }
            }
            4 | 5 => {
                need!(buf, 12, "message operand");
                let peer = buf.get_u32_le();
                let bytes = buf.get_u64_le();
                if op == 4 {
                    EventPayload::MessageSend { peer, bytes }
                } else {
                    EventPayload::MessageRecv { peer, bytes }
                }
            }
            other => return Err(malformed(format!("unknown op code {other}"))),
        };
        builder.push(Event {
            time,
            proc,
            payload,
        });
    }
    if buf.has_remaining() {
        return Err(malformed(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(builder.build())
}

/// Reads a binary trace from `reader` (consumes to end of stream).
///
/// # Errors
///
/// Same conditions as [`from_bytes`], plus I/O failures.
pub fn read<R: Read>(mut reader: R) -> Result<Trace, TraceError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(3);
        let r0 = b.add_region("solver");
        let r1 = b.add_region("exchange");
        b.push(Event::enter(0.0, 0, r0));
        b.push(Event::begin_activity(0.5, 0, ActivityKind::Synchronization));
        b.push(Event::end_activity(0.75, 0, ActivityKind::Synchronization));
        b.push(Event::leave(1.0, 0, r0));
        b.push(Event::enter(0.0, 2, r1));
        b.push(Event::message_send(0.25, 2, 1, u64::MAX));
        b.push(Event::message_recv(0.5, 2, 1, 0));
        b.push(Event::leave(1.0, 2, r1));
        b.build()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn read_write_through_io() {
        let t = sample();
        let mut buf = Vec::new();
        write(&t, &mut buf).unwrap();
        let back = read(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = to_bytes(&sample());
        for cut in 0..bytes.len() {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} was accepted"
            );
        }
    }

    #[test]
    fn bad_magic_version_op_are_rejected() {
        let mut bytes = to_bytes(&sample()).to_vec();
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());

        let mut bytes = to_bytes(&sample()).to_vec();
        bytes[8] = 99; // version
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&sample()).to_vec();
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TraceBuilder::new(1).build();
        assert_eq!(from_bytes(&to_bytes(&t)).unwrap(), t);
    }

    #[test]
    fn binary_is_smaller_than_text_for_large_traces() {
        let mut b = TraceBuilder::new(4);
        let r = b.add_region("r");
        for i in 0..1000 {
            b.push(Event::enter(i as f64, (i % 4) as u32, r));
            b.push(Event::leave(i as f64 + 0.5, (i % 4) as u32, r));
        }
        let t = b.build();
        let bin = to_bytes(&t).len();
        let txt = crate::text::to_string(&t).len();
        assert!(bin < txt, "binary {bin} >= text {txt}");
    }
}
