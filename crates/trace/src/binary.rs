//! Compact binary codec for traces.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    8 bytes  "LIMBATRC"
//! version  u16      2
//! procs    u32
//! nregions u32
//! regions  nregions × (u32 length, utf-8 bytes)
//! nevents  u64
//! events   nevents × (f64 time, u32 proc, u8 op, operands)
//! checksum u64      FNV-1a of every preceding byte (version 2 only)
//! ```
//!
//! Operands by op code: `0` enter / `1` leave → `u32` region; `2` begin /
//! `3` end → `u8` activity index; `4` send / `5` recv → `u32` peer +
//! `u64` bytes.
//!
//! Version 2 appends an FNV-1a content checksum so silent corruption
//! (bit rot, torn copies) surfaces as
//! [`TraceError::ChecksumMismatch`] instead of a confusing structural
//! error — or worse, a plausible-but-wrong trace. Version 1 files,
//! which carry no checksum, remain readable.
//!
//! The decoder is hardened against hostile input: every count field
//! (region count, name length, event count) is bounded against the
//! bytes actually remaining before anything is allocated, so a
//! corrupted header claiming four billion events is rejected in O(1)
//! with a named error rather than attempted.

use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use limba_model::ActivityKind;

use crate::{Event, EventPayload, Trace, TraceBuilder, TraceError};

const MAGIC: &[u8; 8] = b"LIMBATRC";
const VERSION: u16 = 2;
/// Oldest version [`from_bytes`] still decodes.
const MIN_VERSION: u16 = 1;
/// Smallest possible encoding of one region table entry (empty name).
const MIN_REGION_BYTES: usize = 4;
/// Smallest possible encoding of one event (begin/end activity).
const MIN_EVENT_BYTES: usize = 8 + 4 + 1 + 1;
/// Largest processor count a decoded header may declare (4Mi — 40×
/// headroom over the 100k-rank simulation target). The count is a bare
/// scalar with no per-entry bytes behind it, so the
/// remaining-bytes bound that caps the region and event counts cannot
/// touch it — yet downstream consumers size per-processor tables from
/// it ([`Trace::events_partitioned`], salvage), which a hostile 4-byte
/// header could otherwise turn into a multi-GB allocation.
pub(crate) const MAX_PROCESSORS: usize = 1 << 22;

fn malformed(detail: impl Into<String>) -> TraceError {
    TraceError::Malformed {
        detail: detail.into(),
    }
}

/// Incremental FNV-1a state: feed bytes in any chunking, the digest is
/// a pure function of the concatenated stream. The one-shot [`fnv1a`]
/// and the streaming codec ([`crate::stream`]) both fold through this,
/// so a checksum computed over a materialized buffer and one computed
/// frame-by-frame agree by construction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn update(&mut self, data: &[u8]) {
        for &byte in data {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn digest(self) -> u64 {
        self.0
    }
}

/// FNV-1a over arbitrary bytes — same function as
/// `limba_core::snapshot::fnv1a`, duplicated here because this crate
/// sits below `limba-core` in the dependency graph.
fn fnv1a(data: &[u8]) -> u64 {
    let mut fnv = Fnv::new();
    fnv.update(data);
    fnv.digest()
}

/// Appends the wire encoding of one event to `buf` — the record layout
/// shared by the materialized format (versions 1–2) and the streamed
/// chunk format (version 3, [`crate::stream`]).
pub(crate) fn put_event(buf: &mut BytesMut, e: &Event) {
    buf.put_f64_le(e.time);
    buf.put_u32_le(e.proc);
    match e.payload {
        EventPayload::EnterRegion { region } => {
            buf.put_u8(0);
            buf.put_u32_le(region as u32);
        }
        EventPayload::LeaveRegion { region } => {
            buf.put_u8(1);
            buf.put_u32_le(region as u32);
        }
        EventPayload::BeginActivity { kind } => {
            buf.put_u8(2);
            buf.put_u8(kind.index() as u8);
        }
        EventPayload::EndActivity { kind } => {
            buf.put_u8(3);
            buf.put_u8(kind.index() as u8);
        }
        EventPayload::MessageSend { peer, bytes } => {
            buf.put_u8(4);
            buf.put_u32_le(peer);
            buf.put_u64_le(bytes);
        }
        EventPayload::MessageRecv { peer, bytes } => {
            buf.put_u8(5);
            buf.put_u32_le(peer);
            buf.put_u64_le(bytes);
        }
    }
}

/// Decodes one event record from the front of `buf` if a complete one
/// is present: `Ok(Some((event, consumed)))` on success, `Ok(None)`
/// when more bytes are needed (an incomplete record is not an error for
/// a stream — the rest may still arrive), and a named error for
/// structurally impossible bytes (unknown op code, bad activity index),
/// which no amount of further input can repair.
pub(crate) fn try_event(buf: &[u8]) -> Result<Option<(Event, usize)>, TraceError> {
    if buf.len() < 13 {
        return Ok(None);
    }
    let time = f64::from_le_bytes(buf[0..8].try_into().expect("8-byte time slice"));
    if !time.is_finite() {
        // No writer emits non-finite timestamps; downstream folds (the
        // online detector's window binning in particular) rely on this.
        return Err(malformed(format!("non-finite event timestamp {time}")));
    }
    let proc = u32::from_le_bytes(buf[8..12].try_into().expect("4-byte proc slice"));
    let op = buf[12];
    let rest = &buf[13..];
    let (payload, operand_len) = match op {
        0 | 1 => {
            if rest.len() < 4 {
                return Ok(None);
            }
            let region =
                u32::from_le_bytes(rest[..4].try_into().expect("4-byte region slice")) as usize;
            let payload = if op == 0 {
                EventPayload::EnterRegion { region }
            } else {
                EventPayload::LeaveRegion { region }
            };
            (payload, 4)
        }
        2 | 3 => {
            if rest.is_empty() {
                return Ok(None);
            }
            let idx = rest[0] as usize;
            let kind = ActivityKind::from_index(idx)
                .ok_or_else(|| malformed(format!("bad activity index {idx}")))?;
            let payload = if op == 2 {
                EventPayload::BeginActivity { kind }
            } else {
                EventPayload::EndActivity { kind }
            };
            (payload, 1)
        }
        4 | 5 => {
            if rest.len() < 12 {
                return Ok(None);
            }
            let peer = u32::from_le_bytes(rest[..4].try_into().expect("4-byte peer slice"));
            let bytes = u64::from_le_bytes(rest[4..12].try_into().expect("8-byte bytes slice"));
            let payload = if op == 4 {
                EventPayload::MessageSend { peer, bytes }
            } else {
                EventPayload::MessageRecv { peer, bytes }
            };
            (payload, 12)
        }
        other => return Err(malformed(format!("unknown op code {other}"))),
    };
    Ok(Some((
        Event {
            time,
            proc,
            payload,
        },
        13 + operand_len,
    )))
}

/// Encodes `trace` into a byte buffer.
pub fn to_bytes(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + trace.events().len() * 24);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(trace.processors() as u32);
    buf.put_u32_le(trace.region_names().len() as u32);
    for name in trace.region_names() {
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name.as_bytes());
    }
    buf.put_u64_le(trace.events().len() as u64);
    for e in trace.events() {
        put_event(&mut buf, e);
    }
    let checksum = fnv1a(buf.as_ref());
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Writes the binary encoding of `trace` to `writer`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write<W: Write>(trace: &Trace, mut writer: W) -> Result<(), TraceError> {
    writer.write_all(&to_bytes(trace))?;
    Ok(())
}

macro_rules! need {
    ($buf:expr, $n:expr, $what:expr) => {
        if $buf.remaining() < $n {
            return Err(malformed(concat!("truncated while reading ", $what)));
        }
    };
}

/// Decodes a trace from a byte slice.
///
/// Reads the current version (2, with trailing content checksum) and
/// legacy version-1 files (no checksum).
///
/// # Errors
///
/// Returns [`TraceError::Malformed`] for bad magic, version, truncation,
/// count fields exceeding the remaining input, or invalid activity
/// indices, and [`TraceError::ChecksumMismatch`] when a version-2
/// payload does not hash to its recorded checksum. The decoded trace is
/// not validated.
pub fn from_bytes(buf: &[u8]) -> Result<Trace, TraceError> {
    let full = buf;
    let mut buf = buf;
    need!(buf, 8 + 2 + 4 + 4, "header");
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(malformed("bad magic"));
    }
    let version = buf.get_u16_le();
    if version == crate::stream::STREAM_VERSION {
        // A streamed (version-3) file: the chunked container the
        // streaming encoder writes. Decode it through the incremental
        // decoder into a materializing sink — readers of the
        // materialized path see streamed files transparently.
        return crate::stream::trace_from_stream_bytes(full);
    }
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(malformed(format!(
            "unsupported version {version} (this build reads {MIN_VERSION}..={VERSION} \
             and streamed version {})",
            crate::stream::STREAM_VERSION
        )));
    }
    let body_len = if version >= 2 {
        // Verify the whole payload before trusting any of its structure.
        need!(buf, 8, "content checksum");
        let body_len = full.len() - 8;
        let expected =
            u64::from_le_bytes(full[body_len..].try_into().expect("8-byte checksum slice"));
        let actual = fnv1a(&full[..body_len]);
        if expected != actual {
            return Err(TraceError::ChecksumMismatch { expected, actual });
        }
        body_len
    } else {
        full.len()
    };
    let mut buf = full
        .get(10..body_len)
        .ok_or_else(|| malformed("truncated while reading header"))?;
    need!(buf, 4 + 4, "header counts");
    let processors = buf.get_u32_le() as usize;
    if processors > MAX_PROCESSORS {
        return Err(malformed(format!(
            "processor count {processors} exceeds the supported maximum {MAX_PROCESSORS}"
        )));
    }
    let nregions = buf.get_u32_le() as usize;
    if nregions.saturating_mul(MIN_REGION_BYTES) > buf.remaining() {
        return Err(malformed(format!(
            "region count {nregions} exceeds what {} remaining bytes can hold",
            buf.remaining()
        )));
    }
    let mut builder = TraceBuilder::new(processors);
    for _ in 0..nregions {
        need!(buf, 4, "region name length");
        let len = buf.get_u32_le() as usize;
        need!(buf, len, "region name");
        let mut name = vec![0u8; len];
        buf.copy_to_slice(&mut name);
        let name = String::from_utf8(name)
            .map_err(|e| malformed(format!("region name not utf-8: {e}")))?;
        builder.add_region(name);
    }
    need!(buf, 8, "event count");
    let nevents = buf.get_u64_le();
    if nevents.saturating_mul(MIN_EVENT_BYTES as u64) > buf.remaining() as u64 {
        return Err(malformed(format!(
            "event count {nevents} exceeds what {} remaining bytes can hold",
            buf.remaining()
        )));
    }
    // Bounded above by remaining bytes, so this reserve is safe — and it
    // turns the event loop's growth into one up-front allocation.
    builder.reserve_events(nevents as usize);
    for _ in 0..nevents {
        need!(buf, 8 + 4 + 1, "event header");
        let time = buf.get_f64_le();
        let proc = buf.get_u32_le();
        let op = buf.get_u8();
        let payload = match op {
            0 | 1 => {
                need!(buf, 4, "region operand");
                let region = buf.get_u32_le() as usize;
                if op == 0 {
                    EventPayload::EnterRegion { region }
                } else {
                    EventPayload::LeaveRegion { region }
                }
            }
            2 | 3 => {
                need!(buf, 1, "activity operand");
                let idx = buf.get_u8() as usize;
                let kind = ActivityKind::from_index(idx)
                    .ok_or_else(|| malformed(format!("bad activity index {idx}")))?;
                if op == 2 {
                    EventPayload::BeginActivity { kind }
                } else {
                    EventPayload::EndActivity { kind }
                }
            }
            4 | 5 => {
                need!(buf, 12, "message operand");
                let peer = buf.get_u32_le();
                let bytes = buf.get_u64_le();
                if op == 4 {
                    EventPayload::MessageSend { peer, bytes }
                } else {
                    EventPayload::MessageRecv { peer, bytes }
                }
            }
            other => return Err(malformed(format!("unknown op code {other}"))),
        };
        builder.push(Event {
            time,
            proc,
            payload,
        });
    }
    if buf.has_remaining() {
        return Err(malformed(format!("{} trailing bytes", buf.remaining())));
    }
    Ok(builder.build())
}

/// Reads a binary trace from `reader` (consumes to end of stream).
///
/// # Errors
///
/// Same conditions as [`from_bytes`], plus I/O failures.
pub fn read<R: Read>(mut reader: R) -> Result<Trace, TraceError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(3);
        let r0 = b.add_region("solver");
        let r1 = b.add_region("exchange");
        b.push(Event::enter(0.0, 0, r0));
        b.push(Event::begin_activity(0.5, 0, ActivityKind::Synchronization));
        b.push(Event::end_activity(0.75, 0, ActivityKind::Synchronization));
        b.push(Event::leave(1.0, 0, r0));
        b.push(Event::enter(0.0, 2, r1));
        b.push(Event::message_send(0.25, 2, 1, u64::MAX));
        b.push(Event::message_recv(0.5, 2, 1, 0));
        b.push(Event::leave(1.0, 2, r1));
        b.build()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
    }

    /// Timestamps off the wire must be finite: NaN and ±inf are
    /// structurally invalid, not values for downstream folds to cope
    /// with.
    #[test]
    fn non_finite_timestamps_are_rejected() {
        for time in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut buf = BytesMut::with_capacity(24);
            put_event(
                &mut buf,
                &Event {
                    time,
                    proc: 0,
                    payload: EventPayload::EnterRegion { region: 0 },
                },
            );
            let err = try_event(buf.as_ref()).unwrap_err();
            assert!(err.to_string().contains("non-finite"), "{err}");
        }
    }

    #[test]
    fn read_write_through_io() {
        let t = sample();
        let mut buf = Vec::new();
        write(&t, &mut buf).unwrap();
        let back = read(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = to_bytes(&sample());
        for cut in 0..bytes.len() {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} was accepted"
            );
        }
    }

    #[test]
    fn bad_magic_version_op_are_rejected() {
        let mut bytes = to_bytes(&sample()).to_vec();
        bytes[0] = b'X';
        assert!(from_bytes(&bytes).is_err());

        let mut bytes = to_bytes(&sample()).to_vec();
        bytes[8] = 99; // version
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&sample()).to_vec();
        bytes.push(0);
        assert!(from_bytes(&bytes).is_err());
    }

    /// Rewrites current-version bytes as a version-1 file: version field
    /// patched to 1, trailing checksum stripped.
    fn as_v1(bytes: &[u8]) -> Vec<u8> {
        let mut v1 = bytes[..bytes.len() - 8].to_vec();
        v1[8..10].copy_from_slice(&1u16.to_le_bytes());
        v1
    }

    #[test]
    fn version_1_files_without_checksum_still_decode() {
        let t = sample();
        let v1 = as_v1(&to_bytes(&t));
        assert_eq!(from_bytes(&v1).unwrap(), t);
    }

    #[test]
    fn corrupted_payload_is_a_checksum_mismatch() {
        let bytes = to_bytes(&sample()).to_vec();
        // Flip one bit in every payload byte (skip magic and version,
        // which fail earlier with their own errors): each flip must be
        // caught, and as a checksum error, not a lucky structural one.
        for i in 10..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            match from_bytes(&corrupt) {
                Err(TraceError::ChecksumMismatch { expected, actual }) => {
                    assert_ne!(expected, actual, "byte {i}")
                }
                other => panic!("flip at byte {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn version_1_bit_flips_are_detected_or_decode_structurally() {
        // Without a checksum the best v1 can do is structural rejection;
        // this locks in that no flip panics or over-allocates.
        let v1 = as_v1(&to_bytes(&sample()));
        for i in 0..v1.len() {
            let mut corrupt = v1.clone();
            corrupt[i] ^= 0x01;
            let _ = from_bytes(&corrupt);
        }
    }

    #[test]
    fn hostile_count_fields_are_rejected_without_allocation() {
        // Processor count claiming u32::MAX: unlike regions and events,
        // no per-entry bytes exist to bound it against, so only the
        // explicit cap stands between the header and the multi-GB
        // per-processor tables downstream consumers allocate from it.
        let mut bytes = to_bytes(&TraceBuilder::new(1).build()).to_vec();
        bytes[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
        let v1 = as_v1(&bytes);
        match from_bytes(&v1) {
            Err(TraceError::Malformed { detail }) => {
                assert!(detail.contains("processor count"), "{detail}")
            }
            other => panic!("{other:?}"),
        }

        // The cap boundary itself: exactly MAX_PROCESSORS decodes.
        let mut bytes = to_bytes(&TraceBuilder::new(1).build()).to_vec();
        bytes[10..14].copy_from_slice(&(MAX_PROCESSORS as u32).to_le_bytes());
        assert!(from_bytes(&as_v1(&bytes)).is_ok());

        // Region count claiming u32::MAX entries in a near-empty file.
        let mut bytes = to_bytes(&TraceBuilder::new(1).build()).to_vec();
        bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        let v1 = as_v1(&bytes);
        match from_bytes(&v1) {
            Err(TraceError::Malformed { detail }) => {
                assert!(detail.contains("region count"), "{detail}")
            }
            other => panic!("{other:?}"),
        }

        // Event count claiming u64::MAX events.
        let mut bytes = to_bytes(&TraceBuilder::new(1).build()).to_vec();
        let nevents_at = bytes.len() - 8 - 8; // before checksum
        bytes[nevents_at..nevents_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let v1 = as_v1(&bytes);
        match from_bytes(&v1) {
            Err(TraceError::Malformed { detail }) => {
                assert!(detail.contains("event count"), "{detail}")
            }
            other => panic!("{other:?}"),
        }

        // A region name length larger than the rest of the file.
        let mut b = TraceBuilder::new(1);
        b.add_region("x");
        let mut bytes = to_bytes(&b.build()).to_vec();
        bytes[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
        let v1 = as_v1(&bytes);
        match from_bytes(&v1) {
            Err(TraceError::Malformed { detail }) => {
                assert!(detail.contains("region name"), "{detail}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TraceBuilder::new(1).build();
        assert_eq!(from_bytes(&to_bytes(&t)).unwrap(), t);
    }

    #[test]
    fn binary_is_smaller_than_text_for_large_traces() {
        let mut b = TraceBuilder::new(4);
        let r = b.add_region("r");
        for i in 0..1000 {
            b.push(Event::enter(i as f64, (i % 4) as u32, r));
            b.push(Event::leave(i as f64 + 0.5, (i % 4) as u32, r));
        }
        let t = b.build();
        let bin = to_bytes(&t).len();
        let txt = crate::text::to_string(&t).len();
        assert!(bin < txt, "binary {bin} >= text {txt}");
    }
}
