//! Event tracefiles for parallel programs.
//!
//! Tuning "typically rel\[ies\] on an experimental approach based on
//! instrumenting the program, monitoring its execution and analyzing the
//! performance measures either on the fly or post mortem". This crate is
//! the post-mortem half of that pipeline:
//!
//! * [`Event`] / [`Trace`] — a per-processor event model (region enter /
//!   leave, activity begin / end, message send / receive);
//! * [`binary`] and [`text`] — two on-disk codecs: a compact binary format
//!   built on [`bytes`] and a line-oriented text format for humans;
//! * [`validate`](Trace::validate) — structural checks (balanced nesting,
//!   monotone clocks, matched activities);
//! * [`reduce`] — the reduction of a trace into the
//!   [`Measurements`](limba_model::Measurements) matrix `t_ijp` (plus
//!   message [`CountMatrix`](limba_model::CountMatrix) counting
//!   parameters) that the analysis methodology consumes.
//!
//! Time inside a region that is not covered by an explicit activity
//! interval is attributed to `ActivityKind::Computation`, mirroring how
//! MPI profilers classify "time not spent inside the message-passing
//! library" as user computation.
//!
//! # Example
//!
//! ```
//! use limba_model::ActivityKind;
//! use limba_trace::{reduce, Event, TraceBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = TraceBuilder::new(1);
//! let solve = b.add_region("solve");
//! b.push(Event::enter(0.0, 0, solve));
//! b.push(Event::begin_activity(1.0, 0, ActivityKind::PointToPoint));
//! b.push(Event::end_activity(1.5, 0, ActivityKind::PointToPoint));
//! b.push(Event::leave(2.0, 0, solve));
//! let trace = b.build();
//! let reduced = reduce(&trace)?;
//! let m = reduced.measurements;
//! assert!((m.time(solve, ActivityKind::Computation, 0.into()) - 1.5).abs() < 1e-12);
//! assert!((m.time(solve, ActivityKind::PointToPoint, 0.into()) - 0.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod durable;
pub mod stream;
pub mod text;

mod event;
mod hierarchy;
mod reduce;
mod salvage;

pub use event::{Event, EventPayload, Trace, TraceBuilder};
pub use hierarchy::region_parents;
pub use reduce::{reduce, reduce_well_formed, reduce_windows, Attribution, ReducedTrace};
pub use salvage::{reduce_checked, RankCoverage, SalvageWalker, SalvagedTrace};
pub use durable::{DurableSink, SealScan, SealScanner};
pub use stream::{
    MaterializeSink, ReduceSink, SalvageSink, ScanSink, StreamDecoder, StreamEncoder, StreamScan,
    TeeSink, TraceSink, WindowSink, WriteSink,
};

mod error;
pub use error::TraceError;
