//! The trace event model.

use limba_model::{ActivityKind, RegionId};

use crate::TraceError;

/// What happened at one instant on one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventPayload {
    /// The processor entered a code region.
    EnterRegion {
        /// Dense region index.
        region: usize,
    },
    /// The processor left a code region.
    LeaveRegion {
        /// Dense region index.
        region: usize,
    },
    /// The processor started a non-computation activity (e.g. entered an
    /// `MPI_SEND`).
    BeginActivity {
        /// The activity being entered.
        kind: ActivityKind,
    },
    /// The processor finished the current non-computation activity.
    EndActivity {
        /// The activity being left; must match the matching begin.
        kind: ActivityKind,
    },
    /// A message left this processor (counting parameter only).
    MessageSend {
        /// Destination processor.
        peer: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A message arrived at this processor (counting parameter only).
    MessageRecv {
        /// Source processor.
        peer: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
}

/// One timestamped event of one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Wall-clock time in seconds since program start.
    pub time: f64,
    /// Processor the event occurred on.
    pub proc: u32,
    /// What happened.
    pub payload: EventPayload,
}

impl Event {
    /// Region-enter event.
    pub fn enter(time: f64, proc: u32, region: RegionId) -> Self {
        Event {
            time,
            proc,
            payload: EventPayload::EnterRegion {
                region: region.index(),
            },
        }
    }

    /// Region-leave event.
    pub fn leave(time: f64, proc: u32, region: RegionId) -> Self {
        Event {
            time,
            proc,
            payload: EventPayload::LeaveRegion {
                region: region.index(),
            },
        }
    }

    /// Activity-begin event.
    pub fn begin_activity(time: f64, proc: u32, kind: ActivityKind) -> Self {
        Event {
            time,
            proc,
            payload: EventPayload::BeginActivity { kind },
        }
    }

    /// Activity-end event.
    pub fn end_activity(time: f64, proc: u32, kind: ActivityKind) -> Self {
        Event {
            time,
            proc,
            payload: EventPayload::EndActivity { kind },
        }
    }

    /// Message-send event.
    pub fn message_send(time: f64, proc: u32, peer: u32, bytes: u64) -> Self {
        Event {
            time,
            proc,
            payload: EventPayload::MessageSend { peer, bytes },
        }
    }

    /// Message-receive event.
    pub fn message_recv(time: f64, proc: u32, peer: u32, bytes: u64) -> Self {
        Event {
            time,
            proc,
            payload: EventPayload::MessageRecv { peer, bytes },
        }
    }
}

/// A complete tracefile: the processor count, the region name table, and
/// the event stream.
///
/// Events may be appended in any order; [`Trace::events_by_processor`]
/// provides the per-processor, time-ordered view reduction needs, and
/// [`Trace::validate`] checks structural well-formedness.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    processors: usize,
    region_names: Vec<String>,
    events: Vec<Event>,
}

impl Trace {
    /// Number of processors the trace was recorded on.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Registered region names, indexed by region id.
    pub fn region_names(&self) -> &[String] {
        &self.region_names
    }

    /// All events in recording order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events of `proc` sorted by time (stable, so simultaneous events
    /// keep recording order).
    pub fn events_by_processor(&self, proc: u32) -> Vec<Event> {
        let mut evs: Vec<Event> = self
            .events
            .iter()
            .copied()
            .filter(|e| e.proc == proc)
            .collect();
        evs.sort_by(|a, b| a.time.total_cmp(&b.time));
        evs
    }

    /// All processors' time-sorted event lists in a single pass over the
    /// stream: element `p` equals [`Trace::events_by_processor`]`(p)`.
    /// Events naming an out-of-range processor are dropped (validation
    /// reports them separately). This is what reduction iterates over;
    /// the one-pass bucketing avoids the O(P · E) filter of calling
    /// `events_by_processor` once per processor.
    pub fn events_partitioned(&self) -> Vec<Vec<Event>> {
        let mut sizes = vec![0usize; self.processors];
        for e in &self.events {
            if let Some(s) = sizes.get_mut(e.proc as usize) {
                *s += 1;
            }
        }
        let mut parts: Vec<Vec<Event>> = sizes.into_iter().map(Vec::with_capacity).collect();
        for e in &self.events {
            if let Some(bucket) = parts.get_mut(e.proc as usize) {
                bucket.push(*e);
            }
        }
        for bucket in &mut parts {
            // Stable, like events_by_processor: simultaneous events keep
            // recording order, which reduction's attribution relies on.
            bucket.sort_by(|a, b| a.time.total_cmp(&b.time));
        }
        parts
    }

    /// Checks structural well-formedness: processor and region indices in
    /// range, per-processor monotone clocks, balanced region nesting, and
    /// matched activity begin/end pairs.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), TraceError> {
        for e in &self.events {
            if e.proc as usize >= self.processors {
                return Err(TraceError::UnknownProcessor { proc: e.proc });
            }
            match e.payload {
                EventPayload::EnterRegion { region } | EventPayload::LeaveRegion { region }
                    if region >= self.region_names.len() =>
                {
                    return Err(TraceError::UnknownRegion { region });
                }
                _ => {}
            }
        }
        for (proc, events) in (0u32..).zip(self.events_partitioned()) {
            let mut region_stack: Vec<usize> = Vec::new();
            let mut activity: Option<ActivityKind> = None;
            let mut last_time = f64::NEG_INFINITY;
            for e in events {
                if e.time < last_time {
                    return Err(TraceError::NonMonotoneTime {
                        proc,
                        before: last_time,
                        after: e.time,
                    });
                }
                last_time = e.time;
                match e.payload {
                    EventPayload::EnterRegion { region } => region_stack.push(region),
                    EventPayload::LeaveRegion { region } => match region_stack.pop() {
                        Some(top) if top == region => {}
                        Some(top) => {
                            return Err(TraceError::UnbalancedNesting {
                                proc,
                                detail: format!("left region {region} while inside {top}"),
                            })
                        }
                        None => {
                            return Err(TraceError::UnbalancedNesting {
                                proc,
                                detail: format!("left region {region} that was never entered"),
                            })
                        }
                    },
                    EventPayload::BeginActivity { kind } => {
                        if let Some(current) = activity {
                            return Err(TraceError::UnbalancedNesting {
                                proc,
                                detail: format!("began {kind} while {current} still active"),
                            });
                        }
                        if region_stack.is_empty() {
                            return Err(TraceError::UnbalancedNesting {
                                proc,
                                detail: format!("began {kind} outside any region"),
                            });
                        }
                        activity = Some(kind);
                    }
                    EventPayload::EndActivity { kind } => match activity.take() {
                        Some(current) if current == kind => {}
                        Some(current) => {
                            return Err(TraceError::UnbalancedNesting {
                                proc,
                                detail: format!("ended {kind} while {current} active"),
                            })
                        }
                        None => {
                            return Err(TraceError::UnbalancedNesting {
                                proc,
                                detail: format!("ended {kind} that never began"),
                            })
                        }
                    },
                    EventPayload::MessageSend { .. } | EventPayload::MessageRecv { .. } => {}
                }
            }
            if let Some(kind) = activity {
                return Err(TraceError::UnbalancedNesting {
                    proc,
                    detail: format!("activity {kind} still open at end of trace"),
                });
            }
            if let Some(region) = region_stack.pop() {
                return Err(TraceError::UnbalancedNesting {
                    proc,
                    detail: format!("region {region} still open at end of trace"),
                });
            }
        }
        Ok(())
    }
}

/// Builder assembling a [`Trace`].
///
/// # Example
///
/// ```
/// use limba_trace::{Event, TraceBuilder};
/// let mut b = TraceBuilder::new(2);
/// let r = b.add_region("main");
/// b.push(Event::enter(0.0, 0, r));
/// b.push(Event::leave(1.0, 0, r));
/// let trace = b.build();
/// assert_eq!(trace.processors(), 2);
/// assert_eq!(trace.events().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    processors: usize,
    region_names: Vec<String>,
    events: Vec<Event>,
}

impl TraceBuilder {
    /// Creates a builder for a trace of `processors` processors.
    pub fn new(processors: usize) -> Self {
        TraceBuilder {
            processors,
            region_names: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Registers a region name, returning its id.
    pub fn add_region(&mut self, name: impl Into<String>) -> RegionId {
        let id = RegionId::new(self.region_names.len());
        self.region_names.push(name.into());
        id
    }

    /// Appends an event.
    pub fn push(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Reserves room for at least `additional` more events, so callers
    /// that know their event count up front (the simulator derives it
    /// from op counts) avoid reallocations while recording.
    pub fn reserve_events(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// Appends a batch of events in order — equivalent to pushing each
    /// one, as a single bulk copy. The simulator's parallel engine uses
    /// this to splice precomputed event runs into the trace.
    pub fn extend_events(&mut self, events: &[Event]) {
        self.events.extend_from_slice(events);
    }

    /// Number of regions registered so far.
    pub fn region_count(&self) -> usize {
        self.region_names.len()
    }

    /// Number of events so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finalizes the trace (without validating; call
    /// [`Trace::validate`] separately when the source is untrusted).
    pub fn build(self) -> Trace {
        Trace {
            processors: self.processors,
            region_names: self.region_names,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: usize) -> RegionId {
        RegionId::new(i)
    }

    fn well_formed() -> Trace {
        let mut b = TraceBuilder::new(2);
        let main = b.add_region("main");
        let inner = b.add_region("inner");
        for p in 0..2 {
            b.push(Event::enter(0.0, p, main));
            b.push(Event::enter(0.5, p, inner));
            b.push(Event::begin_activity(0.6, p, ActivityKind::Collective));
            b.push(Event::end_activity(0.9, p, ActivityKind::Collective));
            b.push(Event::leave(1.0, p, inner));
            b.push(Event::leave(2.0, p, main));
        }
        b.build()
    }

    #[test]
    fn valid_trace_passes() {
        well_formed().validate().unwrap();
    }

    #[test]
    fn events_by_processor_sorted() {
        let mut b = TraceBuilder::new(1);
        let m = b.add_region("m");
        b.push(Event::leave(2.0, 0, m));
        b.push(Event::enter(1.0, 0, m));
        let t = b.build();
        let evs = t.events_by_processor(0);
        assert!(evs[0].time < evs[1].time);
    }

    #[test]
    fn detects_unknown_processor_and_region() {
        let mut b = TraceBuilder::new(1);
        let m = b.add_region("m");
        b.push(Event::enter(0.0, 5, m));
        assert!(matches!(
            b.build().validate(),
            Err(TraceError::UnknownProcessor { proc: 5 })
        ));

        let mut b = TraceBuilder::new(1);
        b.add_region("m");
        b.push(Event::enter(0.0, 0, r(3)));
        assert!(matches!(
            b.build().validate(),
            Err(TraceError::UnknownRegion { region: 3 })
        ));
    }

    #[test]
    fn detects_backwards_clock() {
        // Same-timestamp events are fine; strictly decreasing is not. We
        // need decreasing within sorted order, which cannot happen after
        // sorting — so monotonicity violations only arise via NaN-free
        // total order; craft equal times to confirm acceptance instead.
        let mut b = TraceBuilder::new(1);
        let m = b.add_region("m");
        b.push(Event::enter(1.0, 0, m));
        b.push(Event::leave(1.0, 0, m));
        b.build().validate().unwrap();
    }

    #[test]
    fn detects_cross_region_leave() {
        let mut b = TraceBuilder::new(1);
        let a = b.add_region("a");
        let c = b.add_region("b");
        b.push(Event::enter(0.0, 0, a));
        b.push(Event::leave(1.0, 0, c));
        assert!(matches!(
            b.build().validate(),
            Err(TraceError::UnbalancedNesting { .. })
        ));
    }

    #[test]
    fn detects_leave_without_enter_and_open_region() {
        let mut b = TraceBuilder::new(1);
        let a = b.add_region("a");
        b.push(Event::leave(1.0, 0, a));
        assert!(b.build().validate().is_err());

        let mut b = TraceBuilder::new(1);
        let a = b.add_region("a");
        b.push(Event::enter(1.0, 0, a));
        assert!(b.build().validate().is_err());
    }

    #[test]
    fn detects_activity_problems() {
        // Nested activities.
        let mut b = TraceBuilder::new(1);
        let a = b.add_region("a");
        b.push(Event::enter(0.0, 0, a));
        b.push(Event::begin_activity(0.1, 0, ActivityKind::PointToPoint));
        b.push(Event::begin_activity(0.2, 0, ActivityKind::Collective));
        assert!(b.build().validate().is_err());

        // Mismatched end.
        let mut b = TraceBuilder::new(1);
        let a = b.add_region("a");
        b.push(Event::enter(0.0, 0, a));
        b.push(Event::begin_activity(0.1, 0, ActivityKind::PointToPoint));
        b.push(Event::end_activity(0.2, 0, ActivityKind::Collective));
        assert!(b.build().validate().is_err());

        // End without begin.
        let mut b = TraceBuilder::new(1);
        let a = b.add_region("a");
        b.push(Event::enter(0.0, 0, a));
        b.push(Event::end_activity(0.2, 0, ActivityKind::Collective));
        assert!(b.build().validate().is_err());

        // Activity outside any region.
        let mut b = TraceBuilder::new(1);
        b.add_region("a");
        b.push(Event::begin_activity(0.1, 0, ActivityKind::PointToPoint));
        assert!(b.build().validate().is_err());

        // Activity left open.
        let mut b = TraceBuilder::new(1);
        let a = b.add_region("a");
        b.push(Event::enter(0.0, 0, a));
        b.push(Event::begin_activity(0.1, 0, ActivityKind::PointToPoint));
        b.push(Event::leave(0.2, 0, a));
        assert!(b.build().validate().is_err());
    }

    #[test]
    fn message_events_do_not_disturb_validation() {
        let mut b = TraceBuilder::new(2);
        let a = b.add_region("a");
        b.push(Event::enter(0.0, 0, a));
        b.push(Event::message_send(0.5, 0, 1, 1024));
        b.push(Event::leave(1.0, 0, a));
        b.push(Event::message_recv(0.7, 1, 0, 1024));
        b.build().validate().unwrap();
    }

    #[test]
    fn events_partitioned_matches_per_processor_view() {
        let t = well_formed();
        let parts = t.events_partitioned();
        assert_eq!(parts.len(), t.processors());
        for (p, part) in parts.iter().enumerate() {
            assert_eq!(part, &t.events_by_processor(p as u32));
        }

        // Out-of-range processors are dropped, not panicked on.
        let mut b = TraceBuilder::new(1);
        let m = b.add_region("m");
        b.push(Event::enter(0.0, 7, m));
        assert!(b.build().events_partitioned()[0].is_empty());
    }

    #[test]
    fn reserve_events_does_not_change_contents() {
        let mut b = TraceBuilder::new(1);
        let m = b.add_region("m");
        b.reserve_events(128);
        b.push(Event::enter(0.0, 0, m));
        b.push(Event::leave(1.0, 0, m));
        assert_eq!(b.len(), 2);
        b.build().validate().unwrap();
    }

    #[test]
    fn builder_len_and_empty() {
        let mut b = TraceBuilder::new(1);
        assert!(b.is_empty());
        let a = b.add_region("a");
        b.push(Event::enter(0.0, 0, a));
        assert_eq!(b.len(), 1);
    }
}
