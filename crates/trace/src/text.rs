//! Line-oriented text codec for traces.
//!
//! The format is self-describing and diff-friendly:
//!
//! ```text
//! limba-trace v1
//! processors 2
//! region 0 solver loop
//! region 1 halo exchange
//! event 0 0 enter 0
//! event 0.5 0 begin point-to-point
//! event 0.75 0 end point-to-point
//! event 1 0 leave 0
//! ```

use std::io::{BufRead, BufReader, Read, Write};

use limba_model::ActivityKind;

use crate::{Event, EventPayload, Trace, TraceBuilder, TraceError};

const HEADER: &str = "limba-trace v1";

/// Writes `trace` in the text format.
///
/// # Errors
///
/// Propagates I/O failures of `writer`. A `&mut Vec<u8>` works as a writer
/// for in-memory encoding.
pub fn write<W: Write>(trace: &Trace, mut writer: W) -> Result<(), TraceError> {
    writeln!(writer, "{HEADER}")?;
    writeln!(writer, "processors {}", trace.processors())?;
    for (i, name) in trace.region_names().iter().enumerate() {
        writeln!(writer, "region {i} {name}")?;
    }
    for e in trace.events() {
        match e.payload {
            EventPayload::EnterRegion { region } => {
                writeln!(writer, "event {} {} enter {region}", e.time, e.proc)?
            }
            EventPayload::LeaveRegion { region } => {
                writeln!(writer, "event {} {} leave {region}", e.time, e.proc)?
            }
            EventPayload::BeginActivity { kind } => {
                writeln!(writer, "event {} {} begin {}", e.time, e.proc, kind.label())?
            }
            EventPayload::EndActivity { kind } => {
                writeln!(writer, "event {} {} end {}", e.time, e.proc, kind.label())?
            }
            EventPayload::MessageSend { peer, bytes } => {
                writeln!(writer, "event {} {} send {peer} {bytes}", e.time, e.proc)?
            }
            EventPayload::MessageRecv { peer, bytes } => {
                writeln!(writer, "event {} {} recv {peer} {bytes}", e.time, e.proc)?
            }
        }
    }
    Ok(())
}

/// Encodes `trace` to a text `String`.
pub fn to_string(trace: &Trace) -> String {
    let mut buf = Vec::new();
    write(trace, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("codec emits utf-8")
}

fn malformed(detail: impl Into<String>) -> TraceError {
    TraceError::Malformed {
        detail: detail.into(),
    }
}

/// Reads a trace in the text format.
///
/// # Errors
///
/// Returns [`TraceError::Malformed`] on syntax errors and propagates I/O
/// failures. The decoded trace is *not* validated; call
/// [`Trace::validate`] on untrusted input.
pub fn read<R: Read>(reader: R) -> Result<Trace, TraceError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().ok_or_else(|| malformed("empty input"))??;
    if header.trim() != HEADER {
        return Err(malformed(format!("bad header {header:?}")));
    }
    let procs_line = lines
        .next()
        .ok_or_else(|| malformed("missing processors line"))??;
    let processors: usize = procs_line
        .strip_prefix("processors ")
        .ok_or_else(|| malformed("expected `processors N`"))?
        .trim()
        .parse()
        .map_err(|e| malformed(format!("bad processor count: {e}")))?;
    if processors > crate::binary::MAX_PROCESSORS {
        return Err(malformed(format!(
            "processor count {processors} exceeds the supported maximum {}",
            crate::binary::MAX_PROCESSORS
        )));
    }

    let mut builder = TraceBuilder::new(processors);
    for line in lines {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("region ") {
            let (idx, name) = rest
                .split_once(' ')
                .ok_or_else(|| malformed(format!("bad region line {line:?}")))?;
            let idx: usize = idx
                .parse()
                .map_err(|e| malformed(format!("bad region index: {e}")))?;
            if idx != builder.region_count() {
                return Err(malformed(format!(
                    "region indices must be dense, got {idx}"
                )));
            }
            builder.add_region(name);
        } else if let Some(rest) = line.strip_prefix("event ") {
            builder.push(parse_event(rest)?);
        } else {
            return Err(malformed(format!("unrecognized line {line:?}")));
        }
    }
    Ok(builder.build())
}

fn parse_event(rest: &str) -> Result<Event, TraceError> {
    let mut parts = rest.split_whitespace();
    let time: f64 = parts
        .next()
        .ok_or_else(|| malformed("event missing time"))?
        .parse()
        .map_err(|e| malformed(format!("bad time: {e}")))?;
    if !time.is_finite() {
        return Err(malformed(format!("non-finite event timestamp {time}")));
    }
    let proc: u32 = parts
        .next()
        .ok_or_else(|| malformed("event missing processor"))?
        .parse()
        .map_err(|e| malformed(format!("bad processor: {e}")))?;
    let op = parts.next().ok_or_else(|| malformed("event missing op"))?;
    let payload = match op {
        "enter" | "leave" => {
            let region: usize = parts
                .next()
                .ok_or_else(|| malformed("missing region"))?
                .parse()
                .map_err(|e| malformed(format!("bad region: {e}")))?;
            if op == "enter" {
                EventPayload::EnterRegion { region }
            } else {
                EventPayload::LeaveRegion { region }
            }
        }
        "begin" | "end" => {
            let label = parts.next().ok_or_else(|| malformed("missing activity"))?;
            let kind = ActivityKind::parse_label(label)
                .ok_or_else(|| malformed(format!("unknown activity {label:?}")))?;
            if op == "begin" {
                EventPayload::BeginActivity { kind }
            } else {
                EventPayload::EndActivity { kind }
            }
        }
        "send" | "recv" => {
            let peer: u32 = parts
                .next()
                .ok_or_else(|| malformed("missing peer"))?
                .parse()
                .map_err(|e| malformed(format!("bad peer: {e}")))?;
            let bytes: u64 = parts
                .next()
                .ok_or_else(|| malformed("missing bytes"))?
                .parse()
                .map_err(|e| malformed(format!("bad bytes: {e}")))?;
            if op == "send" {
                EventPayload::MessageSend { peer, bytes }
            } else {
                EventPayload::MessageRecv { peer, bytes }
            }
        }
        other => return Err(malformed(format!("unknown event op {other:?}"))),
    };
    if parts.next().is_some() {
        return Err(malformed(format!("trailing tokens after event {rest:?}")));
    }
    Ok(Event {
        time,
        proc,
        payload,
    })
}

/// Decodes a trace from a string.
///
/// # Errors
///
/// Same conditions as [`read`].
pub fn from_str(s: &str) -> Result<Trace, TraceError> {
    read(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::RegionId;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(2);
        let r0 = b.add_region("solver loop");
        let r1 = b.add_region("halo exchange");
        b.push(Event::enter(0.0, 0, r0));
        b.push(Event::begin_activity(0.25, 0, ActivityKind::Collective));
        b.push(Event::end_activity(0.5, 0, ActivityKind::Collective));
        b.push(Event::leave(1.0, 0, r0));
        b.push(Event::enter(0.0, 1, r1));
        b.push(Event::message_send(0.1, 1, 0, 4096));
        b.push(Event::message_recv(0.2, 1, 0, 2048));
        b.push(Event::leave(0.75, 1, r1));
        b.build()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample();
        let s = to_string(&t);
        let back = from_str(&s).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn region_names_with_spaces_survive() {
        let t = sample();
        let back = from_str(&to_string(&t)).unwrap();
        assert_eq!(back.region_names()[0], "solver loop");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let s = "limba-trace v1\nprocessors 1\nregion 0 r\n\n# comment\nevent 0 0 enter 0\nevent 1 0 leave 0\n";
        let t = from_str(s).unwrap();
        assert_eq!(t.events().len(), 2);
        t.validate().unwrap();
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(from_str("").is_err());
        assert!(from_str("wrong header\n").is_err());
        assert!(from_str("limba-trace v1\nnope\n").is_err());
        assert!(from_str("limba-trace v1\nprocessors 1\nregion 5 r\n").is_err());
        assert!(from_str("limba-trace v1\nprocessors 1\nevent x 0 enter 0\n").is_err());
        assert!(from_str("limba-trace v1\nprocessors 1\nevent 0 0 explode 0\n").is_err());
        assert!(from_str("limba-trace v1\nprocessors 1\nevent 0 0 begin warp\n").is_err());
        assert!(from_str("limba-trace v1\nprocessors 1\nevent 0 0 enter 0 junk\n").is_err());
        assert!(from_str("limba-trace v1\nprocessors 1\nmystery line\n").is_err());
    }

    #[test]
    fn scientific_notation_times_parse() {
        let s = "limba-trace v1\nprocessors 1\nregion 0 r\nevent 1e-3 0 enter 0\nevent 2e-3 0 leave 0\n";
        let t = from_str(s).unwrap();
        assert!((t.events()[0].time - 0.001).abs() < 1e-12);
        let _ = RegionId::new(0);
    }
}
