//! Imbalance shapes: how spread is distributed over processors.

use crate::CalibrateError;

/// The distribution family of an imbalanced cell.
///
/// A shape provides a mean-zero *direction* `d` over the processors; the
/// solver then scales it (`w_p = max(0, 1 + θ·d_p)`, renormalized to mean
/// one) until the Euclidean index of dispersion matches the target. The
/// positions are canonical (ascending); permutations applied afterwards
/// decide which processor takes which position.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// A linear ramp: positions are evenly spread between light and
    /// heavy. The generic choice when the paper says nothing about the
    /// distribution's form.
    Ramp,
    /// Two clusters: the top `high` positions share one (heavy) value,
    /// the rest another. Reproduces the paper's Figure 1 observations
    /// ("the times spent … by five out of 16 processors belong to the
    /// upper 15% interval").
    Bimodal {
        /// Number of heavy positions.
        high: usize,
    },
    /// An explicit mean-zero direction (advanced use).
    Custom(Vec<f64>),
}

impl Shape {
    /// The mean-zero direction of this shape for `n` processors,
    /// ascending (light positions first).
    ///
    /// # Errors
    ///
    /// Returns [`CalibrateError::InvalidShape`] when the shape is
    /// degenerate for `n` (e.g. `high` not in `1..n`, or a custom
    /// direction of the wrong length or with nonzero mean).
    pub fn direction(&self, n: usize) -> Result<Vec<f64>, CalibrateError> {
        if n == 0 {
            return Err(CalibrateError::InvalidInput {
                detail: "need at least one processor".into(),
            });
        }
        match self {
            Shape::Ramp => {
                let mid = (n as f64 - 1.0) / 2.0;
                Ok((0..n).map(|p| p as f64 - mid).collect())
            }
            Shape::Bimodal { high } => {
                if *high == 0 || *high >= n {
                    return Err(CalibrateError::InvalidShape {
                        detail: format!("bimodal high count {high} must be in 1..{n}"),
                    });
                }
                let low = n - high;
                // Heavy positions at +1, light at -high/low: mean zero.
                let light = -(*high as f64) / low as f64;
                Ok((0..n).map(|p| if p >= low { 1.0 } else { light }).collect())
            }
            Shape::Custom(d) => {
                if d.len() != n {
                    return Err(CalibrateError::InvalidShape {
                        detail: format!("custom direction has length {}, need {n}", d.len()),
                    });
                }
                let mean = d.iter().sum::<f64>() / n as f64;
                if mean.abs() > 1e-9 {
                    return Err(CalibrateError::InvalidShape {
                        detail: format!("custom direction must have zero mean, got {mean}"),
                    });
                }
                if d.iter().any(|v| !v.is_finite()) {
                    return Err(CalibrateError::InvalidShape {
                        detail: "custom direction must be finite".into(),
                    });
                }
                Ok(d.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_direction_is_mean_zero_ascending() {
        let d = Shape::Ramp.direction(4).unwrap();
        assert_eq!(d, vec![-1.5, -0.5, 0.5, 1.5]);
        assert!(d.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn bimodal_direction_splits_high_low() {
        let d = Shape::Bimodal { high: 1 }.direction(4).unwrap();
        assert_eq!(d, vec![-1.0 / 3.0, -1.0 / 3.0, -1.0 / 3.0, 1.0]);
        assert!(d.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn degenerate_shapes_rejected() {
        assert!(Shape::Bimodal { high: 0 }.direction(4).is_err());
        assert!(Shape::Bimodal { high: 4 }.direction(4).is_err());
        assert!(Shape::Ramp.direction(0).is_err());
        assert!(Shape::Custom(vec![1.0, 2.0]).direction(3).is_err());
        assert!(Shape::Custom(vec![1.0, 1.0]).direction(2).is_err()); // nonzero mean
        assert!(Shape::Custom(vec![f64::NAN, 0.0]).direction(2).is_err());
    }

    #[test]
    fn custom_direction_passes_through() {
        let d = Shape::Custom(vec![-1.0, 0.0, 1.0]).direction(3).unwrap();
        assert_eq!(d, vec![-1.0, 0.0, 1.0]);
    }
}
