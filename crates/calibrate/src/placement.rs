//! Position-to-processor placements.

use crate::CalibrateError;

/// Decides which processor takes which position of a solved (ascending)
/// weight profile.
///
/// [`solve_weights`](crate::solve_weights) returns weights in ascending
/// position order; a placement scatters them to processors. Placements
/// drive *who* the imbalanced processors are without touching the
/// dispersion (which is permutation invariant).
///
/// # Example
///
/// ```
/// use limba_calibrate::Placement;
/// let placed = Placement::outlier_high(4, 1).apply(&[1.0, 2.0, 3.0, 9.0]);
/// assert_eq!(placed[1], 9.0); // processor 1 got the heaviest position
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    pos_to_proc: Vec<usize>,
}

impl Placement {
    /// Position `k` goes to processor `k`.
    pub fn identity(n: usize) -> Self {
        Placement {
            pos_to_proc: (0..n).collect(),
        }
    }

    /// Position `k` goes to processor `(k + offset) % n`.
    pub fn rotated(n: usize, offset: usize) -> Self {
        Placement {
            pos_to_proc: (0..n).map(|k| (k + offset) % n).collect(),
        }
    }

    /// `proc` takes the lightest position; everyone else keeps index
    /// order over the remaining positions.
    ///
    /// # Panics
    ///
    /// Panics when `proc >= n`.
    pub fn outlier_low(n: usize, proc: usize) -> Self {
        assert!(proc < n, "outlier processor out of range");
        let mut pos_to_proc = vec![proc];
        pos_to_proc.extend((0..n).filter(|&p| p != proc));
        Placement { pos_to_proc }
    }

    /// `proc` takes the heaviest position.
    ///
    /// # Panics
    ///
    /// Panics when `proc >= n`.
    pub fn outlier_high(n: usize, proc: usize) -> Self {
        assert!(proc < n, "outlier processor out of range");
        let mut pos_to_proc: Vec<usize> = (0..n).filter(|&p| p != proc).collect();
        pos_to_proc.push(proc);
        Placement { pos_to_proc }
    }

    /// An explicit permutation: `pos_to_proc[k]` is the processor taking
    /// position `k`.
    ///
    /// # Errors
    ///
    /// Returns [`CalibrateError::InvalidShape`] when the vector is not a
    /// permutation of `0..n`.
    pub fn custom(pos_to_proc: Vec<usize>) -> Result<Self, CalibrateError> {
        let n = pos_to_proc.len();
        let mut seen = vec![false; n];
        for &p in &pos_to_proc {
            if p >= n || seen[p] {
                return Err(CalibrateError::InvalidShape {
                    detail: format!("placement {pos_to_proc:?} is not a permutation of 0..{n}"),
                });
            }
            seen[p] = true;
        }
        Ok(Placement { pos_to_proc })
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.pos_to_proc.len()
    }

    /// Returns `true` for the empty placement.
    pub fn is_empty(&self) -> bool {
        self.pos_to_proc.is_empty()
    }

    /// Scatters ascending weights to processors.
    ///
    /// # Panics
    ///
    /// Panics when `weights.len()` differs from the placement length.
    pub fn apply(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.pos_to_proc.len(), "length mismatch");
        let mut out = vec![0.0; weights.len()];
        for (k, &w) in weights.iter().enumerate() {
            out[self.pos_to_proc[k]] = w;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_rotation() {
        let w = [1.0, 2.0, 3.0];
        assert_eq!(Placement::identity(3).apply(&w), vec![1.0, 2.0, 3.0]);
        // rotated(1): position k → proc k+1; proc 0 gets position 2.
        assert_eq!(Placement::rotated(3, 1).apply(&w), vec![3.0, 1.0, 2.0]);
        assert_eq!(Placement::rotated(3, 3).apply(&w), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn outliers_take_extremes() {
        let w = [1.0, 2.0, 3.0, 9.0];
        let low = Placement::outlier_low(4, 2).apply(&w);
        assert_eq!(low[2], 1.0);
        let high = Placement::outlier_high(4, 0).apply(&w);
        assert_eq!(high[0], 9.0);
    }

    #[test]
    fn custom_validates_permutation() {
        assert!(Placement::custom(vec![2, 0, 1]).is_ok());
        assert!(Placement::custom(vec![0, 0, 1]).is_err());
        assert!(Placement::custom(vec![0, 3]).is_err());
        let p = Placement::custom(vec![1, 0]).unwrap();
        assert_eq!(p.apply(&[5.0, 7.0]), vec![7.0, 5.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn outlier_out_of_range_panics() {
        Placement::outlier_low(4, 9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_length_mismatch_panics() {
        Placement::identity(2).apply(&[1.0]);
    }
}
