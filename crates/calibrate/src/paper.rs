//! The paper's published case-study data and its reconstruction.
//!
//! Tables 1 and 2 of the paper are reproduced verbatim as constants. The
//! scaled indices of Tables 3 and 4 imply a whole-program wall-clock time
//! of [`PROGRAM_TOTAL`] ≈ 69.93 s — *larger* than the 64.754 s sum of the
//! seven measured loops, i.e. the program spent ≈ 5.18 s outside them.
//! [`paper_measurements_with_tail`] adds that remainder as a balanced
//! "rest of program" region, after which every `SID` value of Tables 3
//! and 4 is reproduced to ≈ 1e-5.
//!
//! Processor indices: the paper numbers processors 1–16; this crate's
//! [`ProcessorId`](limba_model::ProcessorId)s are 0-based, so the paper's
//! "processor 1" is id 0 and "processor 2" is id 1.

use limba_model::{
    ActivityKind, ActivitySet, Measurements, MeasurementsBuilder, RegionId, STANDARD_ACTIVITIES,
};

use crate::{solve_weights, CalibrateError, Placement, Shape};

/// Number of processors of the case study (an IBM SP2 partition).
pub const PROCESSORS: usize = 16;

/// Number of measured loops.
pub const LOOPS: usize = 7;

/// Loop display names, `loop 1` … `loop 7`.
pub const LOOP_NAMES: [&str; LOOPS] = [
    "loop 1", "loop 2", "loop 3", "loop 4", "loop 5", "loop 6", "loop 7",
];

/// Name of the synthetic remainder region added by
/// [`paper_measurements_with_tail`].
pub const TAIL_NAME: &str = "rest of program";

/// Table 1: wall-clock time `t_ij` in seconds per loop ×
/// (computation, point-to-point, collective, synchronization);
/// `0.0` marks the "-" cells (activity not performed).
pub const TABLE1: [[f64; 4]; LOOPS] = [
    [12.24, 0.0, 6.75, 0.061],
    [7.90, 0.0, 6.32, 0.0],
    [5.22, 5.68, 0.0, 0.0],
    [8.03, 2.51, 0.0, 0.0],
    [7.53, 0.07, 1.43, 0.011],
    [0.36, 0.33, 0.0, 0.002],
    [0.28, 0.0, 0.03, 0.0],
];

/// Table 1's "overall" column (the row sums).
pub const TABLE1_OVERALL: [f64; LOOPS] = [19.051, 14.22, 10.90, 10.54, 9.041, 0.692, 0.31];

/// Table 2: indices of dispersion `ID_ij` per loop × activity; `0.0`
/// marks the "-" cells.
pub const TABLE2: [[f64; 4]; LOOPS] = [
    [0.03674, 0.0, 0.06793, 0.12870],
    [0.01095, 0.0, 0.00318, 0.0],
    [0.00672, 0.02833, 0.0, 0.0],
    [0.01615, 0.10742, 0.0, 0.0],
    [0.00933, 0.08872, 0.04907, 0.30571],
    [0.05017, 0.23200, 0.0, 0.16163],
    [0.00719, 0.0, 0.01138, 0.0],
];

/// Table 3: `(activity, ID_A, SID_A)` in the paper's order.
pub const TABLE3: [(ActivityKind, f64, f64); 4] = [
    (ActivityKind::Computation, 0.01904, 0.01132),
    (ActivityKind::PointToPoint, 0.05973, 0.00734),
    (ActivityKind::Collective, 0.03781, 0.00786),
    (ActivityKind::Synchronization, 0.15559, 0.00016),
];

/// Table 4: `(ID_C, SID_C)` per loop.
pub const TABLE4: [(f64, f64); LOOPS] = [
    (0.04809, 0.01311),
    (0.00750, 0.00152),
    (0.01798, 0.00280),
    (0.03790, 0.00571),
    (0.01655, 0.00214),
    (0.13734, 0.00135),
    (0.00760, 0.00003),
];

/// Whole-program wall-clock time implied by the paper's scaled indices.
///
/// Every published `SID = (t/T)·ID` pair of Tables 3–4 solves to
/// `T ≈ 69.93 s` (median of the ten estimates), while the seven loops sum
/// to 64.754 s; the difference is program time outside the measured
/// loops.
pub const PROGRAM_TOTAL: f64 = 69.93;

/// In-text processor-view claims of Section 4.
pub mod claims {
    /// Paper's "processor 1" (0-based id): most frequently imbalanced —
    /// the largest `ID_P` on loops 3 and 7.
    pub const MOST_FREQUENT_PROC: usize = 0;
    /// 0-based regions on which processor 1 is the most imbalanced.
    pub const MOST_FREQUENT_LOOPS: [usize; 2] = [2, 6];
    /// Paper's "processor 2" (0-based id): imbalanced for the longest
    /// time, via loop 1.
    pub const LONGEST_PROC: usize = 1;
    /// 0-based region backing the longest-imbalanced claim.
    pub const LONGEST_LOOP: usize = 0;
    /// Published `ID_P` of processor 2 on loop 1.
    pub const LONGEST_ID: f64 = 0.25754;
    /// Published wall-clock time of processor 2 on loop 1, seconds.
    pub const LONGEST_WALL_CLOCK: f64 = 15.93;
    /// Figure 1: processors of loop 4 whose computation time lies in the
    /// upper 15 % interval.
    pub const FIG1_LOOP4_UPPER: usize = 5;
    /// Figure 1: processors of loop 6 whose computation time lies in the
    /// lower 15 % interval.
    pub const FIG1_LOOP6_LOWER: usize = 11;
}

/// Shape and placement of every performed cell of the case study.
///
/// The paper's processor-view findings pin down who the outliers are on
/// loops 1, 3, and 7; the remaining loops use rotations so that no
/// processor other than the claimed ones accumulates multiple argmax
/// wins.
fn cell_plan(loop_idx: usize, activity: ActivityKind) -> (Shape, Placement) {
    let n = PROCESSORS;
    use ActivityKind::*;
    match (loop_idx, activity) {
        // Loop 1: "processor 2" (id 1) computes little but carries the
        // heaviest collective/synchronization share → outlier mix.
        (0, Computation) => (Shape::Ramp, Placement::outlier_low(n, claims::LONGEST_PROC)),
        (0, Collective) => (
            Shape::Ramp,
            Placement::outlier_high(n, claims::LONGEST_PROC),
        ),
        (0, Synchronization) => (
            Shape::Ramp,
            Placement::outlier_high(n, claims::LONGEST_PROC),
        ),
        // Loop 3 and loop 7: "processor 1" (id 0) is the mix outlier.
        (2, Computation) => (
            Shape::Ramp,
            Placement::outlier_low(n, claims::MOST_FREQUENT_PROC),
        ),
        (2, PointToPoint) => (
            Shape::Ramp,
            Placement::outlier_high(n, claims::MOST_FREQUENT_PROC),
        ),
        (6, Computation) => (
            Shape::Ramp,
            Placement::outlier_low(n, claims::MOST_FREQUENT_PROC),
        ),
        (6, Collective) => (
            Shape::Ramp,
            Placement::outlier_high(n, claims::MOST_FREQUENT_PROC),
        ),
        // Loop 4: Figure 1 shows five processors in the upper 15 %
        // computation interval → bimodal 11 + 5.
        (3, Computation) => (Shape::Bimodal { high: 5 }, Placement::rotated(n, 8)),
        (3, PointToPoint) => (Shape::Ramp, Placement::rotated(n, 8)),
        // Loop 6: Figure 1 shows eleven processors in the lower 15 %
        // interval → the same bimodal family.
        (5, Computation) => (Shape::Bimodal { high: 5 }, Placement::rotated(n, 3)),
        (5, PointToPoint) => (Shape::Ramp, Placement::rotated(n, 3)),
        (5, Synchronization) => (Shape::Ramp, Placement::rotated(n, 3)),
        // Loop 2 and loop 5: plain rotated ramps keeping the argmax wins
        // away from processors 1 and 2.
        (1, _) => (Shape::Ramp, Placement::rotated(n, 5)),
        (4, _) => (Shape::Ramp, Placement::rotated(n, 11)),
        _ => (Shape::Ramp, Placement::identity(n)),
    }
}

/// Reconstructs the full `7 × 4 × 16` measurement matrix of the paper's
/// case study: cell means equal Table 1 and Euclidean indices of
/// dispersion equal Table 2 (to solver precision ~1e-9), with processor
/// placements matching the Section 4 processor-view findings and the
/// Figure 1 bin counts.
///
/// # Errors
///
/// Calibration errors cannot occur for the published values; they would
/// indicate a regression in the solver.
pub fn paper_measurements() -> Result<Measurements, CalibrateError> {
    build(false)
}

/// Like [`paper_measurements`], plus the balanced [`TAIL_NAME`] region
/// accounting for the ≈ 5.18 s the program spent outside the measured
/// loops, so the program total matches [`PROGRAM_TOTAL`] and the scaled
/// indices of Tables 3–4 come out exactly.
///
/// # Errors
///
/// Same conditions as [`paper_measurements`].
pub fn paper_measurements_with_tail() -> Result<Measurements, CalibrateError> {
    build(true)
}

fn build(with_tail: bool) -> Result<Measurements, CalibrateError> {
    let mut b =
        MeasurementsBuilder::with_activities(PROCESSORS, ActivitySet::new(STANDARD_ACTIVITIES));
    for (i, name) in LOOP_NAMES.iter().enumerate() {
        let region = b.add_region(*name);
        for (j, &kind) in STANDARD_ACTIVITIES.iter().enumerate() {
            let total = TABLE1[i][j];
            if total <= 0.0 {
                continue;
            }
            let target = TABLE2[i][j];
            let (shape, placement) = cell_plan(i, kind);
            let weights = solve_weights(&shape, PROCESSORS, target)?;
            let placed = placement.apply(&weights);
            for (p, w) in placed.iter().enumerate() {
                b.set(region, kind, p, total * w)?;
            }
        }
    }
    if with_tail {
        let measured: f64 = TABLE1_OVERALL.iter().sum();
        let tail = PROGRAM_TOTAL - measured;
        let region = b.add_region(TAIL_NAME);
        for p in 0..PROCESSORS {
            b.set(region, ActivityKind::Computation, p, tail)?;
        }
    }
    Ok(b.build()?)
}

/// The loop region ids of the reconstruction, `loop 1` … `loop 7`.
pub fn loop_ids() -> [RegionId; LOOPS] {
    [0, 1, 2, 3, 4, 5, 6].map(RegionId::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::ProcessorId;
    use limba_stats::dispersion::{DispersionIndex, EuclideanFromMean};

    #[test]
    fn table1_rows_sum_to_overall() {
        for (row, &overall) in TABLE1.iter().zip(&TABLE1_OVERALL) {
            let sum: f64 = row.iter().sum();
            assert!((sum - overall).abs() < 1e-9, "{sum} vs {overall}");
        }
    }

    #[test]
    fn reconstruction_matches_table1_means() {
        let m = paper_measurements().unwrap();
        for (i, r) in loop_ids().into_iter().enumerate() {
            for (j, &kind) in STANDARD_ACTIVITIES.iter().enumerate() {
                let t = m.region_activity_time(r, kind);
                assert!(
                    (t - TABLE1[i][j]).abs() < 1e-9,
                    "loop {} {kind}: {t} vs {}",
                    i + 1,
                    TABLE1[i][j]
                );
            }
            let overall = m.region_time(r);
            assert!((overall - TABLE1_OVERALL[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn reconstruction_matches_table2_dispersions() {
        let m = paper_measurements().unwrap();
        for (i, r) in loop_ids().into_iter().enumerate() {
            for (j, &kind) in STANDARD_ACTIVITIES.iter().enumerate() {
                if TABLE1[i][j] <= 0.0 {
                    assert!(!m.performs(r, kind));
                    continue;
                }
                let slice = m.processor_slice(r, kind).unwrap();
                let id = EuclideanFromMean.index(slice).unwrap();
                assert!(
                    (id - TABLE2[i][j]).abs() < 1e-8,
                    "loop {} {kind}: {id} vs {}",
                    i + 1,
                    TABLE2[i][j]
                );
            }
        }
    }

    #[test]
    fn tail_region_completes_program_total() {
        let m = paper_measurements_with_tail().unwrap();
        assert_eq!(m.regions(), LOOPS + 1);
        assert!((m.total_time() - PROGRAM_TOTAL).abs() < 1e-9);
        // The tail is perfectly balanced computation.
        let tail = RegionId::new(LOOPS);
        let slice = m.processor_slice(tail, ActivityKind::Computation).unwrap();
        assert!(slice.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        assert_eq!(m.region_info(tail).name(), TAIL_NAME);
    }

    #[test]
    fn figure1_bin_counts_are_reproduced() {
        let m = paper_measurements().unwrap();
        // Loop 4 computation: 5 of 16 in the upper 15 % interval.
        let l4 = m
            .processor_slice(RegionId::new(3), ActivityKind::Computation)
            .unwrap();
        let max = l4.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = l4.iter().copied().fold(f64::INFINITY, f64::min);
        let upper = l4
            .iter()
            .filter(|&&v| v >= min + 0.85 * (max - min))
            .count();
        assert_eq!(upper, claims::FIG1_LOOP4_UPPER);
        // Loop 6 computation: 11 of 16 in the lower 15 % interval.
        let l6 = m
            .processor_slice(RegionId::new(5), ActivityKind::Computation)
            .unwrap();
        let max = l6.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = l6.iter().copied().fold(f64::INFINITY, f64::min);
        let lower = l6
            .iter()
            .filter(|&&v| v <= min + 0.15 * (max - min))
            .count();
        assert_eq!(lower, claims::FIG1_LOOP6_LOWER);
    }

    #[test]
    fn loop1_outlier_is_processor_two() {
        let m = paper_measurements().unwrap();
        let r = RegionId::new(0);
        let p2 = ProcessorId::new(claims::LONGEST_PROC);
        // Processor 2 computes the least and synchronizes/collects most.
        let comp = m.processor_slice(r, ActivityKind::Computation).unwrap();
        assert_eq!(
            comp.iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0,
            claims::LONGEST_PROC
        );
        let coll = m.processor_slice(r, ActivityKind::Collective).unwrap();
        assert_eq!(
            coll.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0,
            claims::LONGEST_PROC
        );
        assert!(m.processor_region_time(r, p2) > 0.0);
    }
}
