//! Bisection solver matching a dispersion target.

use limba_stats::dispersion::{DispersionIndex, EuclideanFromMean};

use crate::{CalibrateError, Shape};

const THETA_MAX: f64 = 1e9;
const TOLERANCE: f64 = 1e-12;

fn weights_at(direction: &[f64], theta: f64) -> Vec<f64> {
    let raw: Vec<f64> = direction
        .iter()
        .map(|&d| (1.0 + theta * d).max(0.0))
        .collect();
    let mean = raw.iter().sum::<f64>() / raw.len() as f64;
    raw.into_iter().map(|w| w / mean).collect()
}

fn dispersion_at(direction: &[f64], theta: f64) -> f64 {
    EuclideanFromMean
        .index(&weights_at(direction, theta))
        .expect("weights are positive with mean one")
}

/// The largest Euclidean dispersion the shape can produce for `n`
/// processors (the `θ → ∞` limit, evaluated numerically).
///
/// # Errors
///
/// Propagates shape validation errors.
pub fn max_dispersion(shape: &Shape, n: usize) -> Result<f64, CalibrateError> {
    let direction = shape.direction(n)?;
    if n == 1 {
        return Ok(0.0);
    }
    Ok(dispersion_at(&direction, THETA_MAX))
}

/// Solves for per-processor weights with mean one whose Euclidean index
/// of dispersion equals `target`, distributed according to `shape` in
/// ascending position order.
///
/// Multiplying the returned weights by a cell total `t_ij` produces
/// per-processor times `t_ijp` whose mean is `t_ij` and whose dispersion
/// is `target` (the index is scale invariant).
///
/// # Errors
///
/// Returns [`CalibrateError::TargetUnreachable`] when `target` exceeds
/// the shape's maximum, [`CalibrateError::InvalidInput`] for a negative
/// or non-finite target, and shape validation errors.
pub fn solve_weights(shape: &Shape, n: usize, target: f64) -> Result<Vec<f64>, CalibrateError> {
    if !target.is_finite() || target < 0.0 {
        return Err(CalibrateError::InvalidInput {
            detail: format!("dispersion target must be finite and non-negative, got {target}"),
        });
    }
    let direction = shape.direction(n)?;
    if target == 0.0 {
        return Ok(vec![1.0; n]);
    }
    let max = dispersion_at(&direction, THETA_MAX);
    if target > max {
        return Err(CalibrateError::TargetUnreachable { target, max });
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while dispersion_at(&direction, hi) < target {
        hi *= 2.0;
        if hi > THETA_MAX {
            hi = THETA_MAX;
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if dispersion_at(&direction, mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < TOLERANCE * hi.max(1.0) {
            break;
        }
    }
    Ok(weights_at(&direction, 0.5 * (lo + hi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(shape: &Shape, n: usize, target: f64) {
        let w = solve_weights(shape, n, target).unwrap();
        let got = EuclideanFromMean.index(&w).unwrap();
        assert!(
            (got - target).abs() < 1e-9,
            "{shape:?} n={n}: wanted {target}, got {got}"
        );
        let mean = w.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn ramp_hits_all_paper_targets() {
        // Every ID_ij value of the paper's Table 2.
        for &t in &[
            0.03674, 0.06793, 0.12870, 0.01095, 0.00318, 0.00672, 0.02833, 0.01615, 0.10742,
            0.00933, 0.08872, 0.04907, 0.30571, 0.05017, 0.23200, 0.16163, 0.00719, 0.01138,
        ] {
            check(&Shape::Ramp, 16, t);
        }
    }

    #[test]
    fn bimodal_hits_targets_and_keeps_cluster_structure() {
        let w = solve_weights(&Shape::Bimodal { high: 5 }, 16, 0.01615).unwrap();
        let got = EuclideanFromMean.index(&w).unwrap();
        assert!((got - 0.01615).abs() < 1e-9);
        // 11 equal light positions, 5 equal heavy positions.
        for i in 0..11 {
            assert!((w[i] - w[0]).abs() < 1e-12);
        }
        for i in 11..16 {
            assert!((w[i] - w[15]).abs() < 1e-12);
        }
        assert!(w[15] > w[0]);
    }

    #[test]
    fn zero_target_gives_uniform_weights() {
        assert_eq!(solve_weights(&Shape::Ramp, 8, 0.0).unwrap(), vec![1.0; 8]);
    }

    #[test]
    fn unreachable_target_reports_maximum() {
        let err = solve_weights(&Shape::Ramp, 16, 0.9).unwrap_err();
        match err {
            CalibrateError::TargetUnreachable { target, max } => {
                assert_eq!(target, 0.9);
                // Ramp limit for P=16 is ≈ 0.3227.
                assert!((max - 0.3227).abs() < 0.01, "max = {max}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn invalid_targets_rejected() {
        assert!(solve_weights(&Shape::Ramp, 8, -0.1).is_err());
        assert!(solve_weights(&Shape::Ramp, 8, f64::NAN).is_err());
    }

    #[test]
    fn max_dispersion_ordering() {
        // Concentrating on fewer processors allows more spread.
        let ramp = max_dispersion(&Shape::Ramp, 16).unwrap();
        let bi5 = max_dispersion(&Shape::Bimodal { high: 5 }, 16).unwrap();
        let bi1 = max_dispersion(&Shape::Bimodal { high: 1 }, 16).unwrap();
        assert!(bi1 > bi5);
        assert!(bi5 > ramp);
        // Bimodal{high} limit is sqrt(1/high − 1/n).
        assert!((bi5 - (1.0f64 / 5.0 - 1.0 / 16.0).sqrt()).abs() < 1e-6);
        assert!((bi1 - (1.0f64 - 1.0 / 16.0).sqrt()).abs() < 1e-6);
        assert_eq!(max_dispersion(&Shape::Ramp, 1).unwrap(), 0.0);
    }

    #[test]
    fn weights_are_ascending_for_ramp() {
        let w = solve_weights(&Shape::Ramp, 16, 0.1).unwrap();
        for pair in w.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
    }
}
