//! Generic synthesis of measurement matrices from summary statistics.
//!
//! Beyond the paper's case study, the same inverse problem comes up
//! whenever only summary data is available: a report states per-region
//! times and imbalance levels, and one wants a concrete `t_ijp` matrix
//! with exactly those statistics (to test tools against, to replay
//! "what-if" scenarios, …). [`SyntheticCase`] is that builder.

use limba_model::{ActivityKind, ActivitySet, Measurements, MeasurementsBuilder};

use crate::{solve_weights, CalibrateError, Placement, Shape};

/// Specification of one `(region, activity)` cell.
#[derive(Debug, Clone)]
struct CellSpec {
    region: usize,
    kind: ActivityKind,
    total: f64,
    dispersion: f64,
    shape: Shape,
    placement: Placement,
}

/// Builder of measurement matrices with prescribed cell means and
/// dispersions.
///
/// # Example
///
/// ```
/// use limba_calibrate::{Shape, SyntheticCase};
/// use limba_model::ActivityKind;
/// use limba_stats::dispersion::{DispersionIndex, EuclideanFromMean};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut case = SyntheticCase::new(8);
/// let solver = case.add_region("solver");
/// case.set(solver, ActivityKind::Computation, 4.0, 0.12)?;
/// let m = case.build()?;
/// let slice = m.processor_slice(solver, ActivityKind::Computation).unwrap();
/// assert!((EuclideanFromMean.index(slice)? - 0.12).abs() < 1e-9);
/// assert!((m.region_activity_time(solver, ActivityKind::Computation) - 4.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCase {
    processors: usize,
    activities: ActivitySet,
    region_names: Vec<String>,
    cells: Vec<CellSpec>,
}

impl SyntheticCase {
    /// Creates a case for `processors` processors with the standard
    /// activity set.
    pub fn new(processors: usize) -> Self {
        SyntheticCase::with_activities(processors, ActivitySet::standard())
    }

    /// Creates a case with an explicit activity set.
    pub fn with_activities(processors: usize, activities: ActivitySet) -> Self {
        SyntheticCase {
            processors,
            activities,
            region_names: Vec::new(),
            cells: Vec::new(),
        }
    }

    /// Registers a region, returning its id.
    pub fn add_region(&mut self, name: impl Into<String>) -> limba_model::RegionId {
        let id = limba_model::RegionId::new(self.region_names.len());
        self.region_names.push(name.into());
        id
    }

    /// Prescribes a cell with the default ramp shape and identity
    /// placement.
    ///
    /// # Errors
    ///
    /// Same conditions as [`set_shaped`](Self::set_shaped).
    pub fn set(
        &mut self,
        region: limba_model::RegionId,
        kind: ActivityKind,
        total: f64,
        dispersion: f64,
    ) -> Result<&mut Self, CalibrateError> {
        let placement = Placement::identity(self.processors);
        self.set_shaped(region, kind, total, dispersion, Shape::Ramp, placement)
    }

    /// Prescribes a cell: mean time `total`, Euclidean dispersion
    /// `dispersion`, distributed per `shape` and scattered per
    /// `placement`.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown regions/activities, invalid totals,
    /// mismatched placement lengths, or unreachable dispersion targets
    /// (checked eagerly so mistakes surface at specification time).
    pub fn set_shaped(
        &mut self,
        region: limba_model::RegionId,
        kind: ActivityKind,
        total: f64,
        dispersion: f64,
        shape: Shape,
        placement: Placement,
    ) -> Result<&mut Self, CalibrateError> {
        if region.index() >= self.region_names.len() {
            return Err(CalibrateError::InvalidInput {
                detail: format!("unknown region {region}"),
            });
        }
        if self.activities.column(kind).is_none() {
            return Err(CalibrateError::InvalidInput {
                detail: format!("activity {kind} not in the case's activity set"),
            });
        }
        if !total.is_finite() || total <= 0.0 {
            return Err(CalibrateError::InvalidInput {
                detail: format!("cell total must be positive, got {total}"),
            });
        }
        if placement.len() != self.processors {
            return Err(CalibrateError::InvalidInput {
                detail: format!(
                    "placement covers {} positions but the case has {} processors",
                    placement.len(),
                    self.processors
                ),
            });
        }
        // Eager feasibility check: solve now, store the spec.
        solve_weights(&shape, self.processors, dispersion)?;
        self.cells.push(CellSpec {
            region: region.index(),
            kind,
            total,
            dispersion,
            shape,
            placement,
        });
        Ok(self)
    }

    /// Builds the measurements. Unspecified cells are zero (the activity
    /// is "not performed" there); respecifying a cell overwrites the
    /// earlier spec.
    ///
    /// # Errors
    ///
    /// Propagates solver and model errors.
    pub fn build(&self) -> Result<Measurements, CalibrateError> {
        let mut b = MeasurementsBuilder::with_activities(self.processors, self.activities.clone());
        for name in &self.region_names {
            b.add_region(name.clone());
        }
        for spec in &self.cells {
            let weights = solve_weights(&spec.shape, self.processors, spec.dispersion)?;
            let placed = spec.placement.apply(&weights);
            for (p, w) in placed.iter().enumerate() {
                b.set(
                    limba_model::RegionId::new(spec.region),
                    spec.kind,
                    p,
                    spec.total * w,
                )?;
            }
        }
        Ok(b.build()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::{ProcessorId, RegionId};
    use limba_stats::dispersion::{DispersionIndex, EuclideanFromMean};

    #[test]
    fn builds_matrix_with_prescribed_statistics() {
        let mut case = SyntheticCase::new(16);
        let a = case.add_region("a");
        let b = case.add_region("b");
        case.set(a, ActivityKind::Computation, 10.0, 0.05).unwrap();
        case.set(a, ActivityKind::Collective, 2.0, 0.2).unwrap();
        case.set(b, ActivityKind::PointToPoint, 1.0, 0.0).unwrap();
        let m = case.build().unwrap();
        for (r, kind, total, disp) in [
            (a, ActivityKind::Computation, 10.0, 0.05),
            (a, ActivityKind::Collective, 2.0, 0.2),
            (b, ActivityKind::PointToPoint, 1.0, 0.0),
        ] {
            assert!((m.region_activity_time(r, kind) - total).abs() < 1e-9);
            let id = EuclideanFromMean
                .index(m.processor_slice(r, kind).unwrap())
                .unwrap();
            assert!((id - disp).abs() < 1e-9, "{kind}: {id} vs {disp}");
        }
        assert!(!m.performs(b, ActivityKind::Computation));
    }

    #[test]
    fn placements_steer_the_outlier() {
        let mut case = SyntheticCase::new(8);
        let r = case.add_region("r");
        case.set_shaped(
            r,
            ActivityKind::Computation,
            4.0,
            0.15,
            Shape::Ramp,
            Placement::outlier_high(8, 2),
        )
        .unwrap();
        let m = case.build().unwrap();
        let slice = m.processor_slice(r, ActivityKind::Computation).unwrap();
        let argmax = slice
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax, 2);
        let _ = ProcessorId::new(2);
    }

    #[test]
    fn invalid_specs_fail_eagerly() {
        let mut case = SyntheticCase::new(4);
        let r = case.add_region("r");
        assert!(case
            .set(RegionId::new(9), ActivityKind::Computation, 1.0, 0.1)
            .is_err());
        assert!(case.set(r, ActivityKind::Io, 1.0, 0.1).is_err());
        assert!(case.set(r, ActivityKind::Computation, 0.0, 0.1).is_err());
        assert!(case.set(r, ActivityKind::Computation, 1.0, 0.95).is_err()); // unreachable
        assert!(case
            .set_shaped(
                r,
                ActivityKind::Computation,
                1.0,
                0.1,
                Shape::Ramp,
                Placement::identity(3), // wrong size
            )
            .is_err());
    }

    #[test]
    fn analysis_round_trips_the_specification() {
        // The full methodology applied to a synthesized matrix reads the
        // prescribed dispersions back out (Table-2 style).
        let mut case = SyntheticCase::new(16);
        let hot = case.add_region("hot");
        let cold = case.add_region("cold");
        case.set(hot, ActivityKind::Computation, 8.0, 0.25).unwrap();
        case.set(cold, ActivityKind::Computation, 8.0, 0.01)
            .unwrap();
        let m = case.build().unwrap();
        let report = limba_analysis::Analyzer::new().analyze(&m).unwrap();
        assert_eq!(report.findings.most_imbalanced_region.unwrap().0, hot);
        let id = report.activity_view.id[hot.index()][0].unwrap();
        assert!((id - 0.25).abs() < 1e-9);
    }
}
