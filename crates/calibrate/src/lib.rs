//! Inverse synthesis of measurement matrices from published marginals.
//!
//! The paper publishes the *marginals* of its case-study measurements —
//! the per-loop activity times `t_ij` (Table 1) and the indices of
//! dispersion `ID_ij` (Table 2) — but not the underlying
//! `7 × 4 × 16` matrix `t_ijp`. This crate solves the inverse problem:
//! construct per-processor times whose cell means equal the published
//! `t_ij` and whose Euclidean indices of dispersion equal the published
//! `ID_ij` to high precision.
//!
//! The construction picks a [`Shape`] (how the imbalance is distributed
//! over processors: a ramp, a bimodal split, …), then bisects the shape's
//! spread parameter until the resulting dispersion hits the target —
//! possible because the dispersion is monotone in the spread. A
//! permutation finally decides *which* processor takes which position,
//! which drives the paper's processor-view findings and the bin counts of
//! its pattern figures.
//!
//! [`paper`] contains the published data and the fully calibrated
//! reconstruction of the case study.
//!
//! # Example
//!
//! ```
//! use limba_calibrate::{solve_weights, Shape};
//! use limba_stats::dispersion::{DispersionIndex, EuclideanFromMean};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = solve_weights(&Shape::Ramp, 16, 0.1287)?;
//! let id = EuclideanFromMean.index(&w)?;
//! assert!((id - 0.1287).abs() < 1e-9);
//! // Weights have mean one, so scaling by t_ij preserves the marginal.
//! assert!((w.iter().sum::<f64>() / 16.0 - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper;

mod error;
mod placement;
mod shape;
mod solve;
mod synth;

pub use error::CalibrateError;
pub use placement::Placement;
pub use shape::Shape;
pub use solve::{max_dispersion, solve_weights};
pub use synth::SyntheticCase;
