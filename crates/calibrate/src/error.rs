//! Error type for calibration.

use std::error::Error;
use std::fmt;

use limba_model::ModelError;
use limba_stats::StatsError;

/// Error raised by the inverse-synthesis solver.
#[derive(Debug)]
pub enum CalibrateError {
    /// The requested dispersion exceeds what the shape can produce.
    TargetUnreachable {
        /// Requested index of dispersion.
        target: f64,
        /// Largest value the shape supports for this processor count.
        max: f64,
    },
    /// The shape or its parameters were invalid for the processor count.
    InvalidShape {
        /// What was wrong.
        detail: String,
    },
    /// A target or count input was invalid (negative, non-finite, zero
    /// processors).
    InvalidInput {
        /// What was wrong.
        detail: String,
    },
    /// Building the synthesized measurements failed.
    Model(ModelError),
    /// A statistical computation failed.
    Stats(StatsError),
}

impl fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrateError::TargetUnreachable { target, max } => write!(
                f,
                "dispersion target {target} exceeds the shape's maximum {max}"
            ),
            CalibrateError::InvalidShape { detail } => write!(f, "invalid shape: {detail}"),
            CalibrateError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
            CalibrateError::Model(e) => write!(f, "building measurements failed: {e}"),
            CalibrateError::Stats(e) => write!(f, "statistics failed: {e}"),
        }
    }
}

impl Error for CalibrateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CalibrateError::Model(e) => Some(e),
            CalibrateError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CalibrateError {
    fn from(e: ModelError) -> Self {
        CalibrateError::Model(e)
    }
}

impl From<StatsError> for CalibrateError {
    fn from(e: StatsError) -> Self {
        CalibrateError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_values() {
        let e = CalibrateError::TargetUnreachable {
            target: 0.5,
            max: 0.3,
        };
        assert!(e.to_string().contains("0.5"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CalibrateError>();
    }
}
