//! Supervised execution runtime for long-running limba sweeps.
//!
//! Everything else in the suite is built around one invariant: results
//! are a pure function of the inputs, never of scheduling. This crate
//! adds the operational half of that story — what happens when a sweep
//! is *interrupted* (deadline, Ctrl-C, crash) or a unit of work
//! *misbehaves* (panics, fails transiently) — without giving the
//! invariant up:
//!
//! * [`Supervisor`] runs a batch of independent units under a
//!   wall-clock deadline, a unit-count cap, and a cooperative
//!   [`CancelToken`](limba_par::CancelToken), isolating each unit with
//!   `catch_unwind` so a panicking unit becomes a structured
//!   [`JobFailure`] while the rest of the sweep completes, and retrying
//!   retryable failures with exponential backoff;
//! * [`Checkpoint`] is a versioned, checksummed, atomically-written
//!   store of completed unit payloads. The supervisor saves it after
//!   every completed unit, so a killed run leaves a valid file; a
//!   resumed run replays the stored payloads and executes only the
//!   remainder. Because cancellation changes *which* units ran and
//!   never *what* a unit produced, an interrupted-then-resumed sweep
//!   renders **byte-identically** to an uninterrupted one at any
//!   `--jobs` setting;
//! * [`RunManifest`] is the machine-readable account of a supervised
//!   run: completed / failed / skipped / cached counts, retry totals,
//!   and every failure with its unit index and reason, rendered as
//!   deterministic JSON;
//! * [`CheckpointVerifyCache`] plugs the checkpoint store into the
//!   advisor's [`VerifyCache`](limba_advisor::VerifyCache), making
//!   `limba advise` resumable at candidate-verification granularity.
//!
//! The crate itself never panics on untrusted input: corrupted
//! checkpoint files surface as named [`GuardError`] variants, poisoned
//! locks are recovered, and decode paths bound every allocation by the
//! bytes actually present.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::panic)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use std::fmt;

pub mod checkpoint;
pub mod codec;
pub mod job;
pub mod manifest;
pub mod supervisor;
pub mod verify_cache;

pub use checkpoint::Checkpoint;
pub use job::{FailureKind, JobError, JobFailure, RetryPolicy};
pub use manifest::{RunManifest, StopReason};
pub use supervisor::{PayloadCodec, SupervisedRun, Supervisor};
pub use verify_cache::{CheckpointVerifyCache, VERIFY_KIND};

/// Errors raised by the supervision and checkpointing layer.
#[derive(Debug)]
pub enum GuardError {
    /// An underlying I/O failure (reading, writing, or renaming a
    /// checkpoint file).
    Io {
        /// The file involved.
        path: String,
        /// The failure.
        source: std::io::Error,
    },
    /// A checkpoint file's bytes are not a checkpoint (bad magic,
    /// unsupported version, truncation, or a count field exceeding the
    /// remaining input).
    Corrupted {
        /// What was wrong.
        detail: String,
    },
    /// A checkpoint file's recorded checksum does not match its
    /// payload — it was damaged after being written.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum recomputed over the bytes actually read.
        actual: u64,
    },
    /// The checkpoint belongs to a different kind of run (e.g. a
    /// `suite` checkpoint passed to `simulate --resume`).
    KindMismatch {
        /// The kind this run expected.
        expected: String,
        /// The kind recorded in the file.
        found: String,
    },
    /// The checkpoint was written under a different configuration
    /// (different workload, seed, ranks, …), so its payloads do not
    /// belong to this run.
    FingerprintMismatch {
        /// The fingerprint this run expected.
        expected: u64,
        /// The fingerprint recorded in the file.
        found: u64,
    },
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GuardError::Io { path, source } => {
                write!(f, "checkpoint i/o failed for {path}: {source}")
            }
            GuardError::Corrupted { detail } => write!(f, "corrupted checkpoint: {detail}"),
            GuardError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checkpoint checksum mismatch: file records {expected:#018x}, \
                 bytes hash to {actual:#018x}"
            ),
            GuardError::KindMismatch { expected, found } => write!(
                f,
                "checkpoint kind mismatch: this run is {expected:?} but the file \
                 was written by {found:?}"
            ),
            GuardError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint mismatch: this run's configuration hashes \
                 to {expected:#018x} but the file was written under {found:#018x} \
                 (different workload, seed, or options)"
            ),
        }
    }
}

impl std::error::Error for GuardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GuardError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// FNV-1a over arbitrary bytes: the same stable digest the analysis
/// layer uses for fingerprints, duplicated here to keep this crate's
/// dependency footprint to `limba-par` + `limba-advisor`.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of a run configuration: FNV-1a over a canonical string
/// the caller assembles from every option that affects the output
/// (workload, ranks, seed, faults, …). Two runs with equal fingerprints
/// must produce identical unit payloads.
pub fn config_fingerprint(canonical: &str) -> u64 {
    fnv1a(canonical.as_bytes())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]

    use super::*;

    #[test]
    fn fnv1a_matches_published_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn errors_display_their_details() {
        let e = GuardError::KindMismatch {
            expected: "sweep".into(),
            found: "suite".into(),
        };
        assert!(e.to_string().contains("sweep"));
        assert!(e.to_string().contains("suite"));
        let e = GuardError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("mismatch"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GuardError>();
    }
}
