//! The supervised parallel runner: deadlines, unit caps, cooperative
//! cancellation, panic isolation, retry, and incremental checkpointing
//! over a batch of independent units.
//!
//! The determinism contract: a unit's payload depends only on its input
//! index — never on the thread count, scheduling, or which other units
//! ran. The supervisor may change *which* units run (deadline, cap,
//! cancellation), but every payload it does produce — and checkpoint —
//! is exactly what an unsupervised run would have produced. That is
//! why an interrupted run resumed from its checkpoint reaches output
//! byte-identical to an uninterrupted run, at any `jobs` setting.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use limba_par::{par_map_cancellable, CancelToken};

use crate::checkpoint::Checkpoint;
use crate::job::{run_with_retry, JobError, JobFailure, RetryPolicy};
use crate::manifest::{RunManifest, StopReason};
use crate::GuardError;

/// Bit-stable serialization of a unit payload, so completed units can
/// be checkpointed and replayed on resume.
///
/// The contract backing byte-identical resume: `decode(encode(p))`
/// must reconstruct `p` exactly — encode floats by bit pattern
/// (`f64::to_bits`), not by display rounding.
pub trait PayloadCodec<P> {
    /// Serializes a payload.
    fn encode(&self, payload: &P) -> Vec<u8>;
    /// Deserializes a payload; structural damage is a named
    /// [`GuardError::Corrupted`], never a panic.
    fn decode(&self, bytes: &[u8]) -> Result<P, GuardError>;
}

/// The outcome of a supervised run.
#[derive(Debug)]
pub struct SupervisedRun<P> {
    /// Per-unit outcomes in input order: `Some(Ok)` = payload (fresh or
    /// replayed from the checkpoint), `Some(Err)` = permanent failure,
    /// `None` = never started (interrupted first).
    pub results: Vec<Option<Result<P, JobFailure>>>,
    /// The machine-readable account of the run.
    pub manifest: RunManifest,
    /// Set when a checkpoint save failed mid-run. The results are
    /// still valid; only the resume file may be stale.
    pub checkpoint_error: Option<GuardError>,
}

/// What one worker produced for one claimed unit.
enum Outcome<P> {
    Done(P),
    Failed(JobFailure),
    /// Claimed but declined to run (deadline or cap tripped).
    Declined,
}

/// Supervised execution policy: how many workers, when to stop, how to
/// retry, and where to checkpoint.
#[derive(Debug, Clone)]
pub struct Supervisor {
    jobs: usize,
    deadline: Option<Duration>,
    max_units: Option<usize>,
    cancel: CancelToken,
    retry: RetryPolicy,
    checkpoint: Option<PathBuf>,
    resume: bool,
}

impl Supervisor {
    /// A supervisor with `jobs` workers (0 = one per CPU), no deadline,
    /// no unit cap, no retries, and no checkpointing.
    pub fn new(jobs: usize) -> Self {
        Supervisor {
            jobs,
            deadline: None,
            max_units: None,
            cancel: CancelToken::new(),
            retry: RetryPolicy::default(),
            checkpoint: None,
            resume: false,
        }
    }

    /// Stops claiming new units once `deadline` has elapsed since the
    /// run started. Units already in flight finish.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps how many units this invocation may *start* (claim
    /// tickets). With `jobs = 1` the cap is fully deterministic:
    /// exactly the first `max_units` pending units run — which is what
    /// the kill-resume tests use as a reproducible interruption.
    pub fn with_max_units(mut self, max_units: usize) -> Self {
        self.max_units = Some(max_units);
        self
    }

    /// Shares an external cancellation token (e.g. wired to Ctrl-C).
    /// The supervisor also trips this token itself when the deadline or
    /// unit cap is reached.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Sets the retry policy for retryable unit failures.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Checkpoints completed units to `path` after every success. With
    /// `resume`, an existing checkpoint is loaded first and its units
    /// replayed instead of executed; without it, any existing file is
    /// overwritten as the run progresses.
    pub fn with_checkpoint(mut self, path: &Path, resume: bool) -> Self {
        self.checkpoint = Some(path.to_path_buf());
        self.resume = resume;
        self
    }

    /// Runs `work` over every unit of `items` under this supervisor's
    /// policy.
    ///
    /// `kind` and `fingerprint` identify the run for checkpoint
    /// compatibility: resuming refuses a checkpoint written by a
    /// different kind or configuration with a named error.
    ///
    /// # Errors
    ///
    /// Only checkpoint *loading* problems abort the run
    /// ([`GuardError::Io`] / `Corrupted` / `ChecksumMismatch` /
    /// `KindMismatch` / `FingerprintMismatch`). Unit failures — panics
    /// included — never do; they come back as per-unit
    /// [`JobFailure`]s in [`SupervisedRun::results`].
    pub fn run<T, P, C, F>(
        &self,
        kind: &str,
        fingerprint: u64,
        items: &[T],
        codec: &C,
        work: F,
    ) -> Result<SupervisedRun<P>, GuardError>
    where
        T: Sync,
        P: Send,
        C: PayloadCodec<P> + Sync,
        F: Fn(usize, &T) -> Result<P, JobError> + Sync,
    {
        // Phase 1: replay the checkpoint.
        let mut checkpoint = match (&self.checkpoint, self.resume) {
            (Some(path), true) => Checkpoint::load_or_new(path, kind, fingerprint)?,
            _ => Checkpoint::new(kind, fingerprint),
        };
        // Drop stored units beyond this run's range (e.g. the sweep
        // was re-invoked with fewer replications).
        let stale: Vec<u64> = checkpoint
            .iter()
            .map(|(id, _)| id)
            .filter(|&id| id >= items.len() as u64)
            .collect();
        if !stale.is_empty() {
            let mut trimmed = Checkpoint::new(kind, fingerprint);
            for (id, payload) in checkpoint.iter() {
                if id < items.len() as u64 {
                    trimmed.insert(id, payload.to_vec());
                }
            }
            checkpoint = trimmed;
        }

        let mut results: Vec<Option<Result<P, JobFailure>>> =
            (0..items.len()).map(|_| None).collect();
        let mut cached = 0usize;
        for (id, payload) in checkpoint.iter() {
            let decoded = codec.decode(payload)?;
            results[id as usize] = Some(Ok(decoded));
            cached += 1;
        }
        let pending: Vec<usize> = (0..items.len()).filter(|&i| results[i].is_none()).collect();

        // Phase 2: run the pending units under supervision.
        let start = Instant::now();
        let claimed = AtomicUsize::new(0);
        let retries = AtomicU32::new(0);
        let stopped: Mutex<Option<StopReason>> = Mutex::new(None);
        let store: Mutex<(Checkpoint, Option<GuardError>)> = Mutex::new((checkpoint, None));
        let set_stopped = |reason: StopReason| {
            let mut guard = stopped.lock().unwrap_or_else(PoisonError::into_inner);
            if guard.is_none() {
                *guard = Some(reason);
            }
        };

        let outcomes = par_map_cancellable(self.jobs, &pending, &self.cancel, |_, &index| {
            if let Some(deadline) = self.deadline {
                if start.elapsed() >= deadline {
                    set_stopped(StopReason::DeadlineExpired);
                    self.cancel.cancel();
                    return Outcome::Declined;
                }
            }
            if let Some(cap) = self.max_units {
                let ticket = claimed.fetch_add(1, Ordering::SeqCst);
                if ticket >= cap {
                    set_stopped(StopReason::UnitCapReached);
                    self.cancel.cancel();
                    return Outcome::Declined;
                }
            }
            match run_with_retry(index, &self.retry, || work(index, &items[index])) {
                Ok((payload, attempts)) => {
                    retries.fetch_add(attempts - 1, Ordering::Relaxed);
                    if let Some(path) = &self.checkpoint {
                        let mut guard = store.lock().unwrap_or_else(PoisonError::into_inner);
                        let (ckpt, save_error) = &mut *guard;
                        ckpt.insert(index as u64, codec.encode(&payload));
                        if let Err(e) = ckpt.save_atomic(path) {
                            if save_error.is_none() {
                                *save_error = Some(e);
                            }
                        }
                    }
                    Outcome::Done(payload)
                }
                Err(failure) => {
                    retries.fetch_add(failure.attempts - 1, Ordering::Relaxed);
                    Outcome::Failed(failure)
                }
            }
        });

        // Phase 3: assemble results and the manifest.
        let mut completed = 0usize;
        let mut skipped = 0usize;
        let mut failures: Vec<JobFailure> = Vec::new();
        for (slot, &index) in outcomes.into_iter().zip(&pending) {
            match slot {
                Some(Outcome::Done(payload)) => {
                    completed += 1;
                    results[index] = Some(Ok(payload));
                }
                Some(Outcome::Failed(failure)) => {
                    failures.push(failure.clone());
                    results[index] = Some(Err(failure));
                }
                Some(Outcome::Declined) | None => skipped += 1,
            }
        }
        failures.sort_by_key(|f| f.unit);

        let mut stop_reason = stopped.into_inner().unwrap_or_else(PoisonError::into_inner);
        if stop_reason.is_none() && self.cancel.is_cancelled() {
            stop_reason = Some(StopReason::Cancelled);
        }
        let (_, checkpoint_error) = store.into_inner().unwrap_or_else(PoisonError::into_inner);

        let manifest = RunManifest {
            kind: kind.to_string(),
            fingerprint,
            total: items.len(),
            completed,
            cached,
            failures,
            skipped,
            retries: retries.into_inner(),
            stopped: stop_reason,
        };
        Ok(SupervisedRun {
            results,
            manifest,
            checkpoint_error,
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]

    use super::*;

    /// Payload codec for `u64` test payloads.
    struct U64Codec;
    impl PayloadCodec<u64> for U64Codec {
        fn encode(&self, payload: &u64) -> Vec<u8> {
            payload.to_le_bytes().to_vec()
        }
        fn decode(&self, bytes: &[u8]) -> Result<u64, GuardError> {
            let arr: [u8; 8] = bytes.try_into().map_err(|_| GuardError::Corrupted {
                detail: "u64 payload of wrong length".into(),
            })?;
            Ok(u64::from_le_bytes(arr))
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("limba-guard-sup-{name}.ckpt"))
    }

    #[test]
    fn unsupervised_run_completes_everything() {
        let items: Vec<u64> = (0..20).collect();
        let run = Supervisor::new(4)
            .run("test", 1, &items, &U64Codec, |_, &x| {
                Ok::<_, JobError>(x * x)
            })
            .unwrap();
        assert!(run.manifest.is_complete());
        assert_eq!(run.manifest.completed, 20);
        assert_eq!(run.manifest.cached, 0);
        for (i, slot) in run.results.iter().enumerate() {
            assert_eq!(
                slot.as_ref().unwrap().as_ref().unwrap(),
                &((i as u64) * (i as u64))
            );
        }
    }

    #[test]
    fn panicking_unit_is_isolated() {
        let items: Vec<u64> = (0..10).collect();
        let run = Supervisor::new(2)
            .run("test", 1, &items, &U64Codec, |_, &x| {
                if x == 4 {
                    panic!("unit four exploded");
                }
                Ok::<_, JobError>(x)
            })
            .unwrap();
        assert_eq!(run.manifest.completed, 9);
        assert_eq!(run.manifest.failures.len(), 1);
        let failure = &run.manifest.failures[0];
        assert_eq!(failure.unit, 4);
        assert!(failure.kind.message().contains("unit four exploded"));
        assert!(run.manifest.is_partial());
        assert!(!run.manifest.is_complete());
        // Every other unit still delivered its payload.
        assert!(run
            .results
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 4)
            .all(|(_, slot)| matches!(slot, Some(Ok(_)))));
    }

    #[test]
    fn unit_cap_interrupts_deterministically_at_one_job() {
        let items: Vec<u64> = (0..16).collect();
        let run = Supervisor::new(1)
            .with_max_units(5)
            .run("test", 1, &items, &U64Codec, |_, &x| {
                Ok::<_, JobError>(x + 100)
            })
            .unwrap();
        assert_eq!(run.manifest.completed, 5);
        assert_eq!(run.manifest.skipped, 11);
        assert_eq!(run.manifest.stopped, Some(StopReason::UnitCapReached));
        for (i, slot) in run.results.iter().enumerate() {
            if i < 5 {
                assert_eq!(slot.as_ref().unwrap().as_ref().unwrap(), &(i as u64 + 100));
            } else {
                assert!(slot.is_none());
            }
        }
    }

    #[test]
    fn interrupted_then_resumed_equals_uninterrupted() {
        let items: Vec<u64> = (0..12).collect();
        let work = |_: usize, x: &u64| Ok::<_, JobError>(x * 7);

        let uninterrupted = Supervisor::new(1)
            .run("test", 9, &items, &U64Codec, work)
            .unwrap();

        for jobs in [1usize, 4] {
            let path = temp_path(&format!("resume-{jobs}"));
            std::fs::remove_file(&path).ok();
            let first = Supervisor::new(1)
                .with_max_units(4)
                .with_checkpoint(&path, false)
                .run("test", 9, &items, &U64Codec, work)
                .unwrap();
            assert_eq!(first.manifest.completed, 4, "jobs={jobs}");
            assert!(first.checkpoint_error.is_none());

            let resumed = Supervisor::new(jobs)
                .with_checkpoint(&path, true)
                .run("test", 9, &items, &U64Codec, work)
                .unwrap();
            assert_eq!(resumed.manifest.cached, 4, "jobs={jobs}");
            assert_eq!(resumed.manifest.completed, 8, "jobs={jobs}");
            assert!(resumed.manifest.is_complete(), "jobs={jobs}");
            let a: Vec<u64> = uninterrupted
                .results
                .iter()
                .map(|s| *s.as_ref().unwrap().as_ref().unwrap())
                .collect();
            let b: Vec<u64> = resumed
                .results
                .iter()
                .map(|s| *s.as_ref().unwrap().as_ref().unwrap())
                .collect();
            assert_eq!(a, b, "jobs={jobs}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn resume_refuses_foreign_checkpoints() {
        let items: Vec<u64> = (0..4).collect();
        let path = temp_path("foreign");
        std::fs::remove_file(&path).ok();
        Supervisor::new(1)
            .with_checkpoint(&path, false)
            .run("test", 1, &items, &U64Codec, |_, &x| Ok::<_, JobError>(x))
            .unwrap();
        let err = Supervisor::new(1)
            .with_checkpoint(&path, true)
            .run("other", 1, &items, &U64Codec, |_, &x| Ok::<_, JobError>(x))
            .unwrap_err();
        assert!(matches!(err, GuardError::KindMismatch { .. }), "{err}");
        let err = Supervisor::new(1)
            .with_checkpoint(&path, true)
            .run("test", 2, &items, &U64Codec, |_, &x| Ok::<_, JobError>(x))
            .unwrap_err();
        assert!(
            matches!(err, GuardError::FingerprintMismatch { .. }),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shrunk_item_range_drops_stale_checkpoint_entries() {
        let items: Vec<u64> = (0..8).collect();
        let path = temp_path("shrink");
        std::fs::remove_file(&path).ok();
        Supervisor::new(1)
            .with_checkpoint(&path, false)
            .run("test", 1, &items, &U64Codec, |_, &x| Ok::<_, JobError>(x))
            .unwrap();
        let fewer: Vec<u64> = (0..3).collect();
        let resumed = Supervisor::new(1)
            .with_checkpoint(&path, true)
            .run("test", 1, &fewer, &U64Codec, |_, &x| Ok::<_, JobError>(x))
            .unwrap();
        assert_eq!(resumed.manifest.total, 3);
        assert_eq!(resumed.manifest.cached, 3);
        assert!(resumed.manifest.is_complete());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn external_cancellation_is_reported() {
        let items: Vec<u64> = (0..8).collect();
        let token = CancelToken::new();
        let run = Supervisor::new(1)
            .with_cancel(token.clone())
            .run("test", 1, &items, &U64Codec, |i, &x| {
                if i == 2 {
                    token.cancel();
                }
                Ok::<_, JobError>(x)
            })
            .unwrap();
        assert_eq!(run.manifest.stopped, Some(StopReason::Cancelled));
        assert_eq!(run.manifest.completed, 3);
        assert_eq!(run.manifest.skipped, 5);
    }

    #[test]
    fn zero_deadline_runs_nothing() {
        let items: Vec<u64> = (0..8).collect();
        let run = Supervisor::new(1)
            .with_deadline(Duration::ZERO)
            .run("test", 1, &items, &U64Codec, |_, &x| Ok::<_, JobError>(x))
            .unwrap();
        assert_eq!(run.manifest.completed, 0);
        assert_eq!(run.manifest.skipped, 8);
        assert_eq!(run.manifest.stopped, Some(StopReason::DeadlineExpired));
        assert!(!run.manifest.is_partial()); // nothing at all completed
    }

    #[test]
    fn retries_are_counted_in_the_manifest() {
        let items: Vec<u64> = (0..3).collect();
        let flaky = std::sync::atomic::AtomicU32::new(0);
        let policy = RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::ZERO,
        };
        let run = Supervisor::new(1)
            .with_retry(policy)
            .run("test", 1, &items, &U64Codec, |i, &x| {
                if i == 1 && flaky.fetch_add(1, Ordering::SeqCst) == 0 {
                    return Err(JobError::Retryable("transient".into()));
                }
                Ok(x)
            })
            .unwrap();
        assert!(run.manifest.is_complete());
        assert_eq!(run.manifest.retries, 1);
    }

    #[test]
    fn failed_units_are_not_checkpointed_and_rerun_on_resume() {
        let items: Vec<u64> = (0..6).collect();
        let path = temp_path("refail");
        std::fs::remove_file(&path).ok();
        let work = |_: usize, &x: &u64| {
            if x == 2 {
                Err(JobError::Fatal("deterministically bad".into()))
            } else {
                Ok(x)
            }
        };
        let first = Supervisor::new(1)
            .with_checkpoint(&path, false)
            .run("test", 1, &items, &U64Codec, work)
            .unwrap();
        assert_eq!(first.manifest.failures.len(), 1);
        let resumed = Supervisor::new(1)
            .with_checkpoint(&path, true)
            .run("test", 1, &items, &U64Codec, work)
            .unwrap();
        // The failure re-ran and re-failed; successes were cached.
        assert_eq!(resumed.manifest.cached, 5);
        assert_eq!(resumed.manifest.completed, 0);
        assert_eq!(resumed.manifest.failures.len(), 1);
        assert_eq!(resumed.manifest.failures[0].unit, 2);
        std::fs::remove_file(&path).ok();
    }
}
