//! Job-level failure handling: typed errors, panic capture, and
//! bounded retry.
//!
//! A supervised *unit* of work returns `Result<P, JobError>`. The
//! supervisor wraps each attempt in `catch_unwind`, so a panic inside a
//! unit becomes [`FailureKind::Panicked`] instead of tearing down the
//! whole sweep. Failures marked retryable are re-attempted under a
//! [`RetryPolicy`] with exponential backoff; panics and fatal errors
//! are never retried — a deterministic unit that panicked once will
//! panic again, and retrying it only burns the deadline.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// An error returned by one attempt of a unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The attempt failed for a reason that will not change on retry
    /// (bad input, deterministic simulation error).
    Fatal(String),
    /// The attempt failed for a reason that might clear on retry
    /// (contended file, transient resource exhaustion).
    Retryable(String),
}

impl JobError {
    /// Whether the supervisor may re-attempt the unit.
    pub fn is_retryable(&self) -> bool {
        matches!(self, JobError::Retryable(_))
    }

    /// The human-readable failure message.
    pub fn message(&self) -> &str {
        match self {
            JobError::Fatal(m) | JobError::Retryable(m) => m,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Fatal(m) => write!(f, "fatal: {m}"),
            JobError::Retryable(m) => write!(f, "retryable: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

/// How a unit ultimately failed, after retries were exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// The unit panicked; the payload is the captured panic message.
    Panicked {
        /// The panic payload, downcast to text when possible.
        message: String,
    },
    /// The unit returned an error on its final attempt.
    Failed {
        /// The final attempt's error message.
        message: String,
    },
}

impl FailureKind {
    /// The failure message regardless of kind.
    pub fn message(&self) -> &str {
        match self {
            FailureKind::Panicked { message } | FailureKind::Failed { message } => message,
        }
    }
}

/// The structured record of a unit that did not complete: which unit,
/// how many attempts were made, and how the last one ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Input index of the failed unit.
    pub unit: usize,
    /// Total attempts made (1 = no retries).
    pub attempts: u32,
    /// How the final attempt ended.
    pub kind: FailureKind,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match &self.kind {
            FailureKind::Panicked { .. } => "panicked",
            FailureKind::Failed { .. } => "failed",
        };
        write!(
            f,
            "unit {} {what} after {} attempt{}: {}",
            self.unit,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.kind.message()
        )
    }
}

/// Retry discipline for retryable failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Sleep before retry `n` (1-based) is `base_backoff × 2^(n-1)`.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_retries` re-attempts with the default
    /// 10 ms base backoff.
    pub fn with_max_retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before 1-based retry `n`, doubling each time and
    /// saturating instead of overflowing.
    pub fn backoff_before(&self, retry: u32) -> Duration {
        let factor = 2u32.saturating_pow(retry.saturating_sub(1));
        self.base_backoff.saturating_mul(factor)
    }
}

/// Runs one attempt of a unit with panic isolation: a panic inside
/// `work` is captured and returned as [`FailureKind::Panicked`] with
/// its message downcast to text when the payload is a `&str` or
/// `String` (the overwhelmingly common cases).
pub fn run_isolated<P>(
    work: impl FnOnce() -> Result<P, JobError>,
) -> Result<Result<P, JobError>, FailureKind> {
    // AssertUnwindSafe: the closure owns or shares-through-sync all its
    // state; a caught panic aborts the whole unit, so no partially
    // mutated state is observed afterwards.
    catch_unwind(AssertUnwindSafe(work)).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic payload of non-string type".to_string()
        };
        FailureKind::Panicked { message }
    })
}

/// Runs a unit to completion under `policy`: panic-isolated attempts,
/// retrying only retryable errors, sleeping the exponential backoff
/// between attempts. Returns the payload with the attempt count it
/// took, or the final failure tagged with `unit` and the attempt
/// count.
pub fn run_with_retry<P>(
    unit: usize,
    policy: &RetryPolicy,
    work: impl Fn() -> Result<P, JobError>,
) -> Result<(P, u32), JobFailure> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match run_isolated(&work) {
            Ok(Ok(payload)) => return Ok((payload, attempts)),
            Ok(Err(err)) => {
                let retries_used = attempts - 1;
                if err.is_retryable() && retries_used < policy.max_retries {
                    std::thread::sleep(policy.backoff_before(attempts));
                    continue;
                }
                return Err(JobFailure {
                    unit,
                    attempts,
                    kind: FailureKind::Failed {
                        message: err.message().to_string(),
                    },
                });
            }
            Err(kind) => {
                // Panics are never retried: the unit is deterministic,
                // so the same panic would recur.
                return Err(JobFailure {
                    unit,
                    attempts,
                    kind,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]

    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn success_passes_through() {
        let out = run_with_retry(0, &RetryPolicy::default(), || Ok::<_, JobError>(42));
        assert_eq!(out.unwrap(), (42, 1));
    }

    #[test]
    fn str_panic_message_is_captured() {
        let out = run_with_retry(3, &RetryPolicy::with_max_retries(5), || {
            if true {
                panic!("boom at unit three");
            }
            Ok::<u32, JobError>(0)
        });
        let failure = out.unwrap_err();
        assert_eq!(failure.unit, 3);
        // Panics are not retried even with retries available.
        assert_eq!(failure.attempts, 1);
        assert_eq!(
            failure.kind,
            FailureKind::Panicked {
                message: "boom at unit three".into()
            }
        );
        assert!(failure.to_string().contains("panicked after 1 attempt:"));
    }

    #[test]
    fn formatted_panic_message_is_captured() {
        let out: Result<(u32, u32), _> = run_with_retry(0, &RetryPolicy::default(), || {
            let n = 7;
            panic!("value {n} out of range");
        });
        assert_eq!(out.unwrap_err().kind.message(), "value 7 out of range");
    }

    #[test]
    fn fatal_errors_are_not_retried() {
        let calls = AtomicU32::new(0);
        let out: Result<(u32, u32), _> =
            run_with_retry(1, &RetryPolicy::with_max_retries(4), || {
                calls.fetch_add(1, Ordering::SeqCst);
                Err(JobError::Fatal("bad input".into()))
            });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        let failure = out.unwrap_err();
        assert_eq!(failure.attempts, 1);
        assert_eq!(
            failure.kind,
            FailureKind::Failed {
                message: "bad input".into()
            }
        );
    }

    #[test]
    fn retryable_errors_retry_up_to_the_cap() {
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(0),
        };
        let out: Result<(u32, u32), _> = run_with_retry(2, &policy, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(JobError::Retryable("resource busy".into()))
        });
        // 1 initial + 3 retries.
        assert_eq!(calls.load(Ordering::SeqCst), 4);
        assert_eq!(out.unwrap_err().attempts, 4);
    }

    #[test]
    fn retryable_error_that_clears_succeeds() {
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(0),
        };
        let out = run_with_retry(0, &policy, || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(JobError::Retryable("not yet".into()))
            } else {
                Ok(99u32)
            }
        });
        assert_eq!(out.unwrap(), (99, 3));
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(10),
        };
        assert_eq!(policy.backoff_before(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_before(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_before(3), Duration::from_millis(40));
        // No overflow panic at absurd retry counts.
        let _ = policy.backoff_before(u32::MAX);
    }
}
