//! Checkpoint-backed [`VerifyCache`]: makes `limba advise` resumable at
//! candidate-verification granularity.
//!
//! Verification is the expensive part of an advise run — each surviving
//! candidate costs two full simulations plus an analysis pass. This
//! cache persists every completed [`Verification`] to a guard
//! [`Checkpoint`] as it lands, so an interrupted run resumes by
//! replaying the stored verifications and simulating only the
//! remainder. Verification is deterministic, so a replayed entry is
//! bit-identical to a recomputation and the resumed advice renders
//! byte-identically.
//!
//! Entries are keyed by `fnv1a(signature)` with the full signature
//! stored inside the payload; a lookup whose stored signature differs
//! from the queried one (a hash collision, or a foreign file) is
//! treated as a miss, never returned wrong.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use limba_advisor::{Verification, VerifyCache};
use limba_par::CancelToken;

use crate::checkpoint::Checkpoint;
use crate::codec::{ByteReader, ByteWriter};
use crate::{fnv1a, GuardError};

/// The checkpoint kind this cache writes.
pub const VERIFY_KIND: &str = "advise-verify";

/// A [`VerifyCache`] that persists verifications to a checkpoint file.
///
/// Saves happen after every `put`; save failures are swallowed (the
/// cache keeps serving from memory) and surfaced out-of-band through
/// [`take_save_error`](Self::take_save_error), matching the trait's
/// contract that a failed `put` only costs a future hit.
#[derive(Debug)]
pub struct CheckpointVerifyCache {
    path: PathBuf,
    state: Mutex<CacheState>,
    hits: AtomicUsize,
    puts: AtomicUsize,
    /// Trip `interrupt.1` once `interrupt.0` fresh puts have landed —
    /// the deterministic interruption hook the kill-resume tests use.
    interrupt: Option<(usize, CancelToken)>,
}

#[derive(Debug)]
struct CacheState {
    checkpoint: Checkpoint,
    save_error: Option<GuardError>,
}

impl CheckpointVerifyCache {
    /// Opens (resuming) or creates the cache at `path` for a run whose
    /// configuration hashes to `fingerprint`.
    ///
    /// # Errors
    ///
    /// The usual checkpoint-loading errors: [`GuardError::Io`],
    /// `Corrupted`, `ChecksumMismatch`, `KindMismatch`,
    /// `FingerprintMismatch`.
    pub fn open(path: &Path, fingerprint: u64, resume: bool) -> Result<Self, GuardError> {
        let checkpoint = if resume {
            Checkpoint::load_or_new(path, VERIFY_KIND, fingerprint)?
        } else {
            Checkpoint::new(VERIFY_KIND, fingerprint)
        };
        Ok(CheckpointVerifyCache {
            path: path.to_path_buf(),
            state: Mutex::new(CacheState {
                checkpoint,
                save_error: None,
            }),
            hits: AtomicUsize::new(0),
            puts: AtomicUsize::new(0),
            interrupt: None,
        })
    }

    /// Trips `token` once `after` fresh verifications have been stored.
    /// Used by tests to interrupt an advise run at a deterministic
    /// point; the tripped token stops the advisor's verification stage
    /// cooperatively.
    pub fn with_interrupt_after(mut self, after: usize, token: CancelToken) -> Self {
        self.interrupt = Some((after, token));
        self
    }

    /// Number of verifications replayed from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of fresh verifications stored so far.
    pub fn puts(&self) -> usize {
        self.puts.load(Ordering::Relaxed)
    }

    /// Number of verifications currently stored.
    pub fn len(&self) -> usize {
        self.lock().checkpoint.len()
    }

    /// Whether no verifications are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first checkpoint save failure, if any, clearing it.
    pub fn take_save_error(&self) -> Option<GuardError> {
        self.lock().save_error.take()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Encodes a verification with its signature for collision detection.
fn encode_entry(signature: &str, v: &Verification) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(signature);
    w.put_f64(v.event_makespan);
    w.put_f64(v.polling_makespan);
    w.put_f64(v.measured_gain);
    w.put_u8(u8::from(v.within_bounds));
    w.put_u8(u8::from(v.mispredicted));
    match &v.heaviest_region {
        Some(name) => {
            w.put_u8(1);
            w.put_str(name);
        }
        None => w.put_u8(0),
    }
    w.into_bytes()
}

/// Decodes an entry, returning the stored signature alongside the
/// verification so the caller can reject collisions.
fn decode_entry(bytes: &[u8]) -> Result<(String, Verification), GuardError> {
    let mut r = ByteReader::new(bytes);
    let signature = r.get_str("verification signature")?;
    let event_makespan = r.get_f64("event makespan")?;
    let polling_makespan = r.get_f64("polling makespan")?;
    let measured_gain = r.get_f64("measured gain")?;
    let within_bounds = r.get_u8("within-bounds flag")? != 0;
    let mispredicted = r.get_u8("mispredicted flag")? != 0;
    let heaviest_region = match r.get_u8("heaviest-region tag")? {
        0 => None,
        1 => Some(r.get_str("heaviest region")?),
        tag => {
            return Err(GuardError::Corrupted {
                detail: format!("unknown heaviest-region tag {tag}"),
            })
        }
    };
    r.expect_end("verification entry")?;
    Ok((
        signature,
        Verification {
            event_makespan,
            polling_makespan,
            measured_gain,
            within_bounds,
            mispredicted,
            heaviest_region,
        },
    ))
}

impl VerifyCache for CheckpointVerifyCache {
    fn get(&self, signature: &str) -> Option<Verification> {
        let key = fnv1a(signature.as_bytes());
        let state = self.lock();
        let bytes = state.checkpoint.get(key)?;
        let (stored_signature, verification) = decode_entry(bytes).ok()?;
        if stored_signature != signature {
            // FNV collision: the stored entry belongs to a different
            // candidate. Treat as a miss rather than answer wrongly.
            return None;
        }
        drop(state);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(verification)
    }

    fn put(&self, signature: &str, verification: &Verification) {
        let key = fnv1a(signature.as_bytes());
        let bytes = encode_entry(signature, verification);
        let mut state = self.lock();
        state.checkpoint.insert(key, bytes);
        if let Err(e) = state.checkpoint.save_atomic(&self.path) {
            if state.save_error.is_none() {
                state.save_error = Some(e);
            }
        }
        drop(state);
        let stored = self.puts.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some((after, token)) = &self.interrupt {
            if stored >= *after {
                token.cancel();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn sample(gain: f64) -> Verification {
        Verification {
            event_makespan: 1.25,
            polling_makespan: 1.25,
            measured_gain: gain,
            within_bounds: true,
            mispredicted: false,
            heaviest_region: Some("loop 1".into()),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("limba-guard-vc-{name}.ckpt"))
    }

    #[test]
    fn round_trips_through_disk() {
        let path = temp_path("roundtrip");
        std::fs::remove_file(&path).ok();
        let cache = CheckpointVerifyCache::open(&path, 7, false).unwrap();
        assert!(cache.get("combo-a").is_none());
        cache.put("combo-a", &sample(0.5));
        cache.put("combo-b", &sample(-0.0)); // negative zero must survive
        assert_eq!(cache.puts(), 2);

        let reopened = CheckpointVerifyCache::open(&path, 7, true).unwrap();
        assert_eq!(reopened.len(), 2);
        let a = reopened.get("combo-a").unwrap();
        assert_eq!(a, sample(0.5));
        let b = reopened.get("combo-b").unwrap();
        assert_eq!(b.measured_gain.to_bits(), (-0.0f64).to_bits());
        assert_eq!(reopened.hits(), 2);
        assert!(reopened.get("combo-c").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fresh_open_ignores_existing_file() {
        let path = temp_path("fresh");
        std::fs::remove_file(&path).ok();
        let cache = CheckpointVerifyCache::open(&path, 7, false).unwrap();
        cache.put("combo-a", &sample(0.5));
        let fresh = CheckpointVerifyCache::open(&path, 7, false).unwrap();
        assert!(fresh.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_refuses_a_different_fingerprint() {
        let path = temp_path("fingerprint");
        std::fs::remove_file(&path).ok();
        let cache = CheckpointVerifyCache::open(&path, 7, false).unwrap();
        cache.put("combo-a", &sample(0.5));
        let err = CheckpointVerifyCache::open(&path, 8, true).unwrap_err();
        assert!(
            matches!(err, GuardError::FingerprintMismatch { .. }),
            "{err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn none_heaviest_region_round_trips() {
        let path = temp_path("none-region");
        std::fs::remove_file(&path).ok();
        let cache = CheckpointVerifyCache::open(&path, 1, false).unwrap();
        let mut v = sample(0.0);
        v.heaviest_region = None;
        cache.put("combo", &v);
        let reopened = CheckpointVerifyCache::open(&path, 1, true).unwrap();
        assert_eq!(reopened.get("combo").unwrap().heaviest_region, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn interrupt_hook_trips_after_n_puts() {
        let path = temp_path("interrupt");
        std::fs::remove_file(&path).ok();
        let token = CancelToken::new();
        let cache = CheckpointVerifyCache::open(&path, 1, false)
            .unwrap()
            .with_interrupt_after(2, token.clone());
        cache.put("a", &sample(0.1));
        assert!(!token.is_cancelled());
        cache.put("b", &sample(0.2));
        assert!(token.is_cancelled());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_errors_are_swallowed_and_reported_out_of_band() {
        // A path whose parent directory does not exist: every save fails.
        let path = std::env::temp_dir()
            .join("limba-guard-no-such-dir")
            .join("cache.ckpt");
        let cache = CheckpointVerifyCache::open(&path, 1, false).unwrap();
        cache.put("a", &sample(0.1));
        // The in-memory cache still serves the entry.
        assert!(cache.get("a").is_some());
        let err = cache.take_save_error().unwrap();
        assert!(matches!(err, GuardError::Io { .. }), "{err}");
        assert!(cache.take_save_error().is_none());
    }
}
