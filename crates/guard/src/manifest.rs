//! Machine-readable account of a supervised run.
//!
//! The manifest answers the operational questions an interrupted or
//! partially failed sweep raises: how much finished, what failed and
//! why, how much came from the checkpoint, and whether the run is
//! complete enough to trust. It renders as deterministic JSON — keys in
//! a fixed order, no timestamps — so two runs of the same work produce
//! byte-identical manifests.

use crate::job::{FailureKind, JobFailure};

/// Why a supervised run stopped before completing every unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline expired.
    DeadlineExpired,
    /// The configured unit cap was reached.
    UnitCapReached,
    /// The caller's cancel token tripped.
    Cancelled,
}

impl StopReason {
    /// The stable kebab-case name the manifest JSON uses.
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::DeadlineExpired => "deadline-expired",
            StopReason::UnitCapReached => "unit-cap-reached",
            StopReason::Cancelled => "cancelled",
        }
    }
}

/// Summary of one supervised run, suitable for rendering to a manifest
/// file next to the checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// The run kind (e.g. `"sweep"`, `"suite"`, `"advise-verify"`).
    pub kind: String,
    /// The configuration fingerprint the run executed under.
    pub fingerprint: u64,
    /// Total units in the run.
    pub total: usize,
    /// Units that completed this invocation (excludes cached).
    pub completed: usize,
    /// Units replayed from the checkpoint instead of executed.
    pub cached: usize,
    /// Units that failed permanently, in unit order.
    pub failures: Vec<JobFailure>,
    /// Units never started (interrupted before they were claimed).
    pub skipped: usize,
    /// Total retry attempts across all units.
    pub retries: u32,
    /// Why the run stopped early, if it did.
    pub stopped: Option<StopReason>,
}

impl RunManifest {
    /// Whether every unit produced a payload (cached or fresh).
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.skipped == 0
    }

    /// Whether some units produced payloads but not all — the state a
    /// partial-result exit code reports.
    pub fn is_partial(&self) -> bool {
        !self.is_complete() && (self.completed + self.cached) > 0
    }

    /// Renders the manifest as deterministic JSON: fixed key order, no
    /// wall-clock data, failures sorted by unit index.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"kind\": {},\n", json_string(&self.kind)));
        out.push_str(&format!(
            "  \"fingerprint\": \"{:#018x}\",\n",
            self.fingerprint
        ));
        out.push_str(&format!("  \"total\": {},\n", self.total));
        out.push_str(&format!("  \"completed\": {},\n", self.completed));
        out.push_str(&format!("  \"cached\": {},\n", self.cached));
        out.push_str(&format!("  \"skipped\": {},\n", self.skipped));
        out.push_str(&format!("  \"retries\": {},\n", self.retries));
        out.push_str(&format!("  \"complete\": {},\n", self.is_complete()));
        match &self.stopped {
            Some(reason) => out.push_str(&format!(
                "  \"stopped\": {},\n",
                json_string(reason.as_str())
            )),
            None => out.push_str("  \"stopped\": null,\n"),
        }
        out.push_str("  \"failures\": [");
        for (i, failure) in self.failures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let kind = match &failure.kind {
                FailureKind::Panicked { .. } => "panicked",
                FailureKind::Failed { .. } => "failed",
            };
            out.push_str(&format!(
                "\n    {{\"unit\": {}, \"attempts\": {}, \"kind\": {}, \"message\": {}}}",
                failure.unit,
                failure.attempts,
                json_string(kind),
                json_string(failure.kind.message())
            ));
        }
        if !self.failures.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]

    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            kind: "sweep".into(),
            fingerprint: 0xABCD,
            total: 10,
            completed: 6,
            cached: 2,
            failures: vec![JobFailure {
                unit: 4,
                attempts: 3,
                kind: FailureKind::Failed {
                    message: "replication diverged".into(),
                },
            }],
            skipped: 1,
            retries: 2,
            stopped: Some(StopReason::DeadlineExpired),
        }
    }

    #[test]
    fn completeness_flags() {
        let mut m = sample();
        assert!(!m.is_complete());
        assert!(m.is_partial());
        m.failures.clear();
        m.skipped = 0;
        m.stopped = None;
        assert!(m.is_complete());
        assert!(!m.is_partial());
    }

    #[test]
    fn json_is_deterministic_and_structured() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"kind\": \"sweep\""));
        assert!(a.contains("\"fingerprint\": \"0x000000000000abcd\""));
        assert!(a.contains("\"stopped\": \"deadline-expired\""));
        assert!(a.contains("\"unit\": 4"));
        assert!(a.contains("\"message\": \"replication diverged\""));
        // Balanced braces as a cheap well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn json_escapes_hostile_strings() {
        let mut m = sample();
        m.failures[0].kind = FailureKind::Panicked {
            message: "line1\n\"quoted\"\\x".into(),
        };
        let json = m.to_json();
        assert!(json.contains("line1\\n\\\"quoted\\\"\\\\x"));
    }

    #[test]
    fn empty_failures_render_as_empty_array() {
        let mut m = sample();
        m.failures.clear();
        assert!(m.to_json().contains("\"failures\": []"));
    }
}
