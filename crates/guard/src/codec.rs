//! Bounded little-endian byte encoding shared by checkpoint files and
//! unit payloads.
//!
//! [`PayloadCodec`](crate::supervisor::PayloadCodec) implementors are
//! expected to build on these types: the writer encodes floats by bit
//! pattern (resume stays byte-identical), and the reader never trusts
//! a length field — every read is checked against the bytes actually
//! remaining and fails with a named [`GuardError::Corrupted`] instead
//! of allocating or panicking.

use crate::GuardError;

/// Append-only byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` in little-endian order.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encodes an `f64` by its exact bit pattern — checkpointed floats
    /// round-trip bit-identically, which the byte-identical-resume
    /// guarantee depends on.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `u64` length prefix followed by the bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a string as length-prefixed utf-8 bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends bytes verbatim, with no length prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

fn corrupted(what: &str) -> GuardError {
    GuardError::Corrupted {
        detail: format!("truncated while reading {what}"),
    }
}

/// Checked reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], GuardError> {
        if self.buf.len() < n {
            return Err(corrupted(what));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &str) -> Result<u8, GuardError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, what: &str) -> Result<u32, GuardError> {
        let bytes = self.take(4, what)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64, GuardError> {
        let bytes = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads an `f64` by exact bit pattern.
    pub fn get_f64(&mut self, what: &str) -> Result<f64, GuardError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Reads a length-prefixed byte string; the length is bounded by
    /// the remaining input before anything is copied.
    pub fn get_bytes(&mut self, what: &str) -> Result<&'a [u8], GuardError> {
        let len = self.get_u64(what)?;
        if len > self.buf.len() as u64 {
            return Err(GuardError::Corrupted {
                detail: format!(
                    "{what} claims {len} bytes but only {} remain",
                    self.buf.len()
                ),
            });
        }
        self.take(len as usize, what)
    }

    /// Reads a length-prefixed utf-8 string.
    pub fn get_str(&mut self, what: &str) -> Result<String, GuardError> {
        let bytes = self.get_bytes(what)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| GuardError::Corrupted {
            detail: format!("{what} is not utf-8: {e}"),
        })
    }

    /// Requires every byte to have been consumed.
    pub fn expect_end(&self, what: &str) -> Result<(), GuardError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(GuardError::Corrupted {
                detail: format!("{} trailing bytes after {what}", self.buf.len()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]

    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f64(-0.0);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX);
        assert_eq!(r.get_f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_str("e").unwrap(), "héllo");
        assert_eq!(r.get_bytes("f").unwrap(), &[1, 2, 3]);
        r.expect_end("payload").unwrap();
    }

    #[test]
    fn hostile_lengths_are_rejected_without_allocation() {
        // A length claiming u64::MAX bytes.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let err = r.get_bytes("name").unwrap_err();
        assert!(err.to_string().contains("claims"), "{err}");
    }

    #[test]
    fn truncation_is_a_named_error() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.get_u64("count").is_err());
        let mut r = ByteReader::new(&[]);
        assert!(r.get_u8("tag").is_err());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_raw(&[9]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.get_u8("tag").unwrap();
        assert!(r.expect_end("payload").is_err());
        assert_eq!(r.remaining(), 1);
    }
}
