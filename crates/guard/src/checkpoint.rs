//! Versioned, checksummed, atomically-written checkpoint files.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic        8 bytes  "LIMBACKP"
//! version      u16      1
//! kind         u64 length + utf-8   which command wrote this file
//! fingerprint  u64      hash of the run configuration
//! nentries     u64
//! entries      nentries × (u64 unit id, u64 length + payload bytes,
//!                          u64 payload FNV-1a)
//! checksum     u64      FNV-1a of every preceding byte
//! ```
//!
//! Three independent integrity layers, each with its own named error:
//! the whole-file checksum catches torn writes and bit rot
//! ([`GuardError::ChecksumMismatch`]); per-entry checksums localize
//! damage when only part of a file survives; and the kind +
//! fingerprint pair refuses payloads that belong to a different run
//! ([`GuardError::KindMismatch`], [`GuardError::FingerprintMismatch`]).
//!
//! Writes are atomic *and durable*: the file is assembled in
//! `<path>.tmp`, fsynced, renamed over the destination, and the parent
//! directory is fsynced — so a kill or power cut mid-save leaves
//! either the previous valid checkpoint or the new one, never a
//! half-written, zero-length, or vanished file. The supervisor saves
//! after *every* completed unit.
//!
//! Every disk touch goes through a [`Vfs`], so the same code runs
//! against the real filesystem ([`save_atomic`](Checkpoint::save_atomic)
//! uses [`StdVfs`]) and against the in-memory crash model +
//! fault injector the crash-consistency harness drives.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use limba_vfs::{StdVfs, Vfs};

use crate::codec::{ByteReader, ByteWriter};
use crate::{fnv1a, GuardError};

const MAGIC: &[u8; 8] = b"LIMBACKP";
const VERSION: u16 = 1;
/// Smallest possible encoding of one entry (empty payload).
const MIN_ENTRY_BYTES: usize = 8 + 8 + 8;

fn io_error(path: &Path, source: std::io::Error) -> GuardError {
    GuardError::Io {
        path: path.display().to_string(),
        source,
    }
}

/// An in-memory checkpoint: completed unit payloads keyed by unit id,
/// tagged with the run kind and configuration fingerprint they belong
/// to. Entries iterate in unit-id order, so serialization is
/// deterministic.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    kind: String,
    fingerprint: u64,
    entries: BTreeMap<u64, Vec<u8>>,
}

impl Checkpoint {
    /// An empty checkpoint for a run of `kind` under `fingerprint`.
    pub fn new(kind: &str, fingerprint: u64) -> Self {
        Checkpoint {
            kind: kind.to_string(),
            fingerprint,
            entries: BTreeMap::new(),
        }
    }

    /// The run kind recorded in this checkpoint.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The configuration fingerprint recorded in this checkpoint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of completed units stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no units are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores (or replaces) the payload of unit `id`.
    pub fn insert(&mut self, id: u64, payload: Vec<u8>) {
        self.entries.insert(id, payload);
    }

    /// The stored payload of unit `id`, if any.
    pub fn get(&self, id: u64) -> Option<&[u8]> {
        self.entries.get(&id).map(Vec::as_slice)
    }

    /// Iterates stored `(unit id, payload)` pairs in unit-id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.entries.iter().map(|(&id, p)| (id, p.as_slice()))
    }

    /// Serializes the checkpoint to its on-disk byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_raw(MAGIC);
        w.put_raw(&VERSION.to_le_bytes());
        w.put_str(&self.kind);
        w.put_u64(self.fingerprint);
        w.put_u64(self.entries.len() as u64);
        for (&id, payload) in &self.entries {
            w.put_u64(id);
            w.put_bytes(payload);
            w.put_u64(fnv1a(payload));
        }
        let checksum = fnv1a(w.as_slice());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Decodes a checkpoint from its on-disk byte format.
    ///
    /// # Errors
    ///
    /// [`GuardError::Corrupted`] for structural damage (bad magic,
    /// version, truncation, oversized count or length fields) and
    /// [`GuardError::ChecksumMismatch`] when the whole-file or a
    /// per-entry checksum disagrees with the bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, GuardError> {
        if bytes.len() < MAGIC.len() + 2 + 8 {
            return Err(GuardError::Corrupted {
                detail: "file too short to be a checkpoint".into(),
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(GuardError::Corrupted {
                detail: "bad magic (not a limba checkpoint file)".into(),
            });
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != VERSION {
            return Err(GuardError::Corrupted {
                detail: format!("unsupported checkpoint version {version}"),
            });
        }
        // Verify the whole file before trusting any of its structure.
        let body_len = bytes.len() - 8;
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bytes[body_len..]);
        let expected = u64::from_le_bytes(tail);
        let actual = fnv1a(&bytes[..body_len]);
        if expected != actual {
            return Err(GuardError::ChecksumMismatch { expected, actual });
        }

        let mut r = ByteReader::new(&bytes[10..body_len]);
        let kind = r.get_str("checkpoint kind")?;
        let fingerprint = r.get_u64("fingerprint")?;
        let nentries = r.get_u64("entry count")?;
        if nentries.saturating_mul(MIN_ENTRY_BYTES as u64) > r.remaining() as u64 {
            return Err(GuardError::Corrupted {
                detail: format!(
                    "entry count {nentries} exceeds what {} remaining bytes can hold",
                    r.remaining()
                ),
            });
        }
        let mut entries = BTreeMap::new();
        for _ in 0..nentries {
            let id = r.get_u64("entry id")?;
            let payload = r.get_bytes("entry payload")?;
            let recorded = r.get_u64("entry checksum")?;
            let computed = fnv1a(payload);
            if recorded != computed {
                return Err(GuardError::ChecksumMismatch {
                    expected: recorded,
                    actual: computed,
                });
            }
            entries.insert(id, payload.to_vec());
        }
        r.expect_end("checkpoint entries")?;
        Ok(Checkpoint {
            kind,
            fingerprint,
            entries,
        })
    }

    /// Loads and validates a checkpoint file, additionally requiring it
    /// to belong to a run of `kind` under `fingerprint`.
    ///
    /// # Errors
    ///
    /// Everything [`from_bytes`](Self::from_bytes) raises, plus
    /// [`GuardError::Io`] for read failures, [`GuardError::KindMismatch`]
    /// and [`GuardError::FingerprintMismatch`] for files written by a
    /// different command or configuration.
    pub fn load(path: &Path, kind: &str, fingerprint: u64) -> Result<Checkpoint, GuardError> {
        Checkpoint::load_vfs(&StdVfs, path, kind, fingerprint)
    }

    /// [`load`](Self::load) against an explicit [`Vfs`] backend.
    ///
    /// # Errors
    ///
    /// Same as [`load`](Self::load).
    pub fn load_vfs(
        vfs: &dyn Vfs,
        path: &Path,
        kind: &str,
        fingerprint: u64,
    ) -> Result<Checkpoint, GuardError> {
        let bytes = vfs.read_all(path).map_err(|e| io_error(path, e))?;
        let checkpoint = Checkpoint::from_bytes(&bytes)?;
        if checkpoint.kind != kind {
            return Err(GuardError::KindMismatch {
                expected: kind.to_string(),
                found: checkpoint.kind,
            });
        }
        if checkpoint.fingerprint != fingerprint {
            return Err(GuardError::FingerprintMismatch {
                expected: fingerprint,
                found: checkpoint.fingerprint,
            });
        }
        Ok(checkpoint)
    }

    /// Like [`load`](Self::load), but a missing file is a fresh start:
    /// returns an empty checkpoint instead of an error.
    pub fn load_or_new(
        path: &Path,
        kind: &str,
        fingerprint: u64,
    ) -> Result<Checkpoint, GuardError> {
        Checkpoint::load_or_new_vfs(&StdVfs, path, kind, fingerprint)
    }

    /// [`load_or_new`](Self::load_or_new) against an explicit [`Vfs`]
    /// backend.
    ///
    /// # Errors
    ///
    /// Same as [`load`](Self::load).
    pub fn load_or_new_vfs(
        vfs: &dyn Vfs,
        path: &Path,
        kind: &str,
        fingerprint: u64,
    ) -> Result<Checkpoint, GuardError> {
        if vfs.exists(path) {
            Checkpoint::load_vfs(vfs, path, kind, fingerprint)
        } else {
            Ok(Checkpoint::new(kind, fingerprint))
        }
    }

    /// Writes the checkpoint atomically and durably: the bytes are
    /// assembled in a sibling `<path>.tmp` file, **fsynced**, renamed
    /// over `path`, and the parent directory is fsynced. An
    /// interrupted save — even a power cut — leaves either the
    /// previous checkpoint or the new one, never a torn or
    /// zero-length file (a rename is only guaranteed durable once the
    /// tmp content and the directory entry both reached disk).
    ///
    /// # Errors
    ///
    /// [`GuardError::Io`] for write, sync, or rename failures.
    pub fn save_atomic(&self, path: &Path) -> Result<(), GuardError> {
        self.save_atomic_vfs(&StdVfs, path)
    }

    /// [`save_atomic`](Self::save_atomic) against an explicit [`Vfs`]
    /// backend.
    ///
    /// # Errors
    ///
    /// Same as [`save_atomic`](Self::save_atomic).
    pub fn save_atomic_vfs(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), GuardError> {
        let tmp: PathBuf = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".tmp");
            os.into()
        };
        {
            let mut file = vfs.create(&tmp).map_err(|e| io_error(&tmp, e))?;
            file.append(&self.to_bytes()).map_err(|e| io_error(&tmp, e))?;
            // Sync the tmp file *before* the rename: a rename can
            // reach disk ahead of the data it points at, leaving a
            // zero-length or torn checkpoint after power loss.
            file.sync().map_err(|e| io_error(&tmp, e))?;
        }
        vfs.rename(&tmp, path).map_err(|e| io_error(path, e))?;
        // And sync the directory so the rename itself is durable.
        vfs.sync_dir(parent_dir(path))
            .map_err(|e| io_error(path, e))
    }
}

/// The directory whose entry must be synced for `path` to be durable
/// (`.` for bare relative filenames).
fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::panic)]

    use super::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new("sweep", 0xABCD);
        c.insert(0, b"alpha".to_vec());
        c.insert(3, b"".to_vec());
        c.insert(7, vec![0xFF; 100]);
        c
    }

    #[test]
    fn round_trips_through_bytes() {
        let c = sample();
        let back = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.kind(), "sweep");
        assert_eq!(back.fingerprint(), 0xABCD);
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(0), Some(&b"alpha"[..]));
        assert_eq!(back.get(3), Some(&b""[..]));
        assert_eq!(back.get(7), Some(&[0xFF; 100][..]));
        assert_eq!(back.get(1), None);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} was accepted"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_with_a_named_error() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            match Checkpoint::from_bytes(&corrupt) {
                Err(GuardError::Corrupted { .. } | GuardError::ChecksumMismatch { .. }) => {}
                other => panic!("flip at byte {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_entry_count_is_rejected_quickly() {
        // Patch the entry count to u64::MAX and recompute the file
        // checksum so only the count bound can reject it.
        let c = Checkpoint::new("sweep", 1);
        let mut bytes = c.to_bytes();
        let body_len = bytes.len() - 8;
        // Layout: magic(8) version(2) kind len(8)+5 fingerprint(8) count(8).
        let count_at = 8 + 2 + 8 + 5 + 8;
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        match Checkpoint::from_bytes(&bytes) {
            Err(GuardError::Corrupted { detail }) => {
                assert!(detail.contains("entry count"), "{detail}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn load_enforces_kind_and_fingerprint() {
        let dir = std::env::temp_dir();
        let path = dir.join("limba-guard-ckpt-test.ckpt");
        sample().save_atomic(&path).unwrap();
        assert!(Checkpoint::load(&path, "sweep", 0xABCD).is_ok());
        assert!(matches!(
            Checkpoint::load(&path, "suite", 0xABCD),
            Err(GuardError::KindMismatch { .. })
        ));
        assert!(matches!(
            Checkpoint::load(&path, "sweep", 0x1234),
            Err(GuardError::FingerprintMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    /// A power cut at *every* operation of the save sequence leaves
    /// the previous checkpoint loadable with its old content — the
    /// atomic-replace discipline (sync tmp, rename, sync dir) has no
    /// window where the old file is gone and the new one not durable.
    #[test]
    fn power_cut_at_every_save_operation_preserves_the_old_checkpoint() {
        use limba_vfs::{FaultKind, FaultPlan, FaultVfs, MemVfs};
        use std::sync::Arc;

        let path = Path::new("/ckpt/state.ckpt");
        // Count the operations one full save performs.
        let probe = FaultVfs::new(
            Arc::new(MemVfs::new()),
            FaultPlan::new(FaultKind::Eio).at_op(u64::MAX),
        );
        sample().save_atomic_vfs(&probe, path).unwrap();
        let ops = probe.ops();
        assert!(ops >= 5, "save should create+append+sync+rename+syncdir");

        for cut in 0..ops {
            let mem = MemVfs::new();
            // A durable first checkpoint.
            let old = sample();
            old.save_atomic_vfs(&mem, path).unwrap();
            // Power cut at operation `cut` of the second save.
            let faulty = FaultVfs::new(
                Arc::new(mem.clone()),
                FaultPlan::new(FaultKind::PowerCut).at_op(cut),
            );
            let mut newer = sample();
            newer.insert(99, b"late".to_vec());
            assert!(newer.save_atomic_vfs(&faulty, path).is_err());
            mem.crash();
            let back = Checkpoint::load_vfs(&mem, path, "sweep", 0xABCD)
                .unwrap_or_else(|e| panic!("cut at op {cut}: {e}"));
            // Either the old or the new checkpoint — never torn.
            assert!(
                back.to_bytes() == old.to_bytes() || back.to_bytes() == newer.to_bytes(),
                "cut at op {cut} left a third state"
            );
        }
    }

    #[test]
    fn load_or_new_treats_missing_file_as_fresh() {
        let path = std::env::temp_dir().join("limba-guard-ckpt-missing.ckpt");
        std::fs::remove_file(&path).ok();
        let c = Checkpoint::load_or_new(&path, "sweep", 9).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn atomic_save_replaces_previous_content() {
        let path = std::env::temp_dir().join("limba-guard-ckpt-atomic.ckpt");
        let mut c = Checkpoint::new("sweep", 5);
        c.insert(1, b"one".to_vec());
        c.save_atomic(&path).unwrap();
        c.insert(2, b"two".to_vec());
        c.save_atomic(&path).unwrap();
        let back = Checkpoint::load(&path, "sweep", 5).unwrap();
        assert_eq!(back.len(), 2);
        // No stray temp file left behind.
        let tmp = path.with_extension("ckpt.tmp");
        assert!(!tmp.exists());
        std::fs::remove_file(&path).ok();
    }
}
