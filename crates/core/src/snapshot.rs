//! Canonical report serialization and digests.
//!
//! The determinism guarantees of the parallel execution layer are stated
//! in terms of *bytes*: the same input analyzed with any `--jobs` count
//! must serialize to the same byte sequence. This module provides that
//! canonical byte form, plus cheap digests over it for cache keys and
//! golden-snapshot tests.
//!
//! The canonical form is the pretty `Debug` rendering of the [`Report`]
//! wrapped in a version header. Every field of every component is a
//! `Vec`, scalar, or `String` — no hash maps — so `Debug` output is a
//! deterministic function of the value, and Rust's float formatting is
//! shortest-round-trip, so distinct bit patterns render distinctly.

use crate::Report;

/// Version tag embedded in [`canonical`] output; bump when the report
/// structure changes incompatibly so stale snapshots fail loudly.
pub const CANONICAL_VERSION: u32 = 1;

/// The canonical byte-comparable serialization of a report.
pub fn canonical(report: &Report) -> String {
    format!("limba-report v{CANONICAL_VERSION}\n{report:#?}\n")
}

/// FNV-1a over arbitrary bytes: small, dependency-free, and stable
/// across platforms. Used for cache keys and snapshot digests — not for
/// anything adversarial.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of a report's canonical form.
pub fn report_digest(report: &Report) -> u64 {
    fnv1a(canonical(report).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use limba_model::{ActivityKind, MeasurementsBuilder};

    fn report() -> Report {
        let mut b = MeasurementsBuilder::new(4);
        let r = b.add_region("solver");
        for p in 0..4 {
            b.record(r, ActivityKind::Computation, p, 1.0 + p as f64)
                .unwrap();
        }
        Analyzer::new()
            .with_cluster_k(1)
            .analyze(&b.build().unwrap())
            .unwrap()
    }

    #[test]
    fn canonical_is_versioned_and_reproducible() {
        let a = canonical(&report());
        let b = canonical(&report());
        assert!(a.starts_with("limba-report v1\n"));
        assert_eq!(a, b);
        assert_eq!(report_digest(&report()), report_digest(&report()));
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn different_reports_have_different_digests() {
        let base = report();
        let mut b = MeasurementsBuilder::new(4);
        let r = b.add_region("solver");
        for p in 0..4 {
            b.record(r, ActivityKind::Computation, p, 2.0 + p as f64)
                .unwrap();
        }
        let other = Analyzer::new()
            .with_cluster_k(1)
            .analyze(&b.build().unwrap())
            .unwrap();
        assert_ne!(report_digest(&base), report_digest(&other));
    }
}
