//! The load-imbalance analysis methodology.
//!
//! This crate implements the methodology of *"Load Imbalance in Parallel
//! Programs"* (Calzarossa, Massari, Tessera — PACT 2003) on top of the
//! [`limba_model`] measurement model:
//!
//! 1. **Coarse grain** ([`coarse`]): break the program wall-clock time
//!    down by activity and by code region; identify the *dominant*
//!    activity, the *heaviest* region, and the worst/best region per
//!    activity; group regions with homogeneous behaviour by k-means
//!    clustering ([`cluster_regions`]).
//! 2. **Fine grain** ([`views`]): standardize the per-processor times and
//!    compute indices of dispersion along three complementary views —
//!    *processor* (`ID_P_ip`), *activity* (`ID_ij`, `ID_A_j`, `SID_A_j`),
//!    and *code region* (`ID_C_i`, `SID_C_i`) — then rank them to locate
//!    the processors, activities, and regions with the largest
//!    dissimilarities ([`findings`]).
//!
//! [`patterns`] reproduces the qualitative pattern diagrams (Figures 1
//! and 2 of the paper): per-processor times binned into max / min /
//! upper-15 % / lower-15 % classes.
//!
//! The [`Analyzer`] ties the steps into one configurable pipeline
//! producing a [`Report`].
//!
//! The pipeline is agnostic to how its measurement matrix was
//! produced. Complete traces reduce strictly; truncated ones — a
//! crashed or interrupted rank under the simulator's fault-injection
//! layer — are salvaged upstream by `limba_trace::reduce_checked`,
//! which closes each cut stream at its last event and reports per-rank
//! coverage. The renderer surfaces that coverage next to the report
//! (`limba_viz::report::render_with_coverage`), so a flagged rank's
//! measurements read as lower bounds rather than silently passing for
//! complete data.
//!
//! # Example
//!
//! ```
//! use limba_analysis::Analyzer;
//! use limba_model::{ActivityKind, MeasurementsBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = MeasurementsBuilder::new(4);
//! let r = b.add_region("solver");
//! for p in 0..4 {
//!     b.record(r, ActivityKind::Computation, p, 1.0 + p as f64)?;
//! }
//! let report = Analyzer::new().with_cluster_k(1).analyze(&b.build()?)?;
//! assert_eq!(report.coarse.dominant_activity, ActivityKind::Computation);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cluster_regions;
pub mod coarse;
pub mod compare;
pub mod count_views;
pub mod criteria;
pub mod evolution;
pub mod findings;
pub mod hierarchy;
pub mod patterns;
pub mod snapshot;
pub mod views;

mod error;
mod pipeline;

pub use batch::{BatchAnalyzer, ReportCache};
pub use error::AnalysisError;
pub use pipeline::{Analyzer, Report};
