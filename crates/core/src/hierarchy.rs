//! Hierarchical region analysis and automated drill-down.
//!
//! The paper's code regions span granularities — "loops, routines, code
//! statements" — and its related work (Paradyn's Performance Consultant,
//! Deep Start) searches such hierarchies automatically. This module
//! provides both pieces on the limba substrate:
//!
//! * [`RegionTree`] — the static nesting of regions (recovered from a
//!   trace by `limba_trace::region_parents` or declared directly);
//! * [`inclusive_times`] — roll-up of the innermost-attributed
//!   measurements so each region also carries its descendants' time;
//! * [`drilldown`] — a top-down search that starts at the program level,
//!   repeatedly descends into the child with the largest scaled index of
//!   dispersion, and stops when further refinement no longer localizes
//!   the imbalance.

use limba_model::{Measurements, RegionId};
use limba_stats::dispersion::DispersionKind;

use crate::views::{activity_view, region_view};
use crate::AnalysisError;

/// The static nesting of code regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionTree {
    parents: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

impl RegionTree {
    /// Builds a tree from per-region parents (as returned by
    /// `limba_trace::region_parents`).
    ///
    /// # Errors
    ///
    /// Returns an error when a parent index is out of range or the
    /// structure contains a cycle.
    pub fn from_parents(parents: Vec<Option<usize>>) -> Result<Self, AnalysisError> {
        let n = parents.len();
        let mut children = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (r, parent) in parents.iter().enumerate() {
            match parent {
                Some(p) => {
                    if *p >= n {
                        return Err(AnalysisError::Stats(
                            limba_stats::StatsError::InvalidValue { value: *p as f64 },
                        ));
                    }
                    children[*p].push(r);
                }
                None => roots.push(r),
            }
        }
        // Cycle check: every region must reach a root.
        for start in 0..n {
            let mut hops = 0;
            let mut cur = start;
            while let Some(p) = parents[cur] {
                cur = p;
                hops += 1;
                if hops > n {
                    return Err(AnalysisError::Stats(
                        limba_stats::StatsError::InvalidValue {
                            value: start as f64,
                        },
                    ));
                }
            }
        }
        Ok(RegionTree {
            parents,
            children,
            roots,
        })
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Returns `true` for the empty tree.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Parent of `region`, `None` at top level.
    pub fn parent(&self, region: RegionId) -> Option<RegionId> {
        self.parents[region.index()].map(RegionId::new)
    }

    /// Direct children of `region`.
    pub fn children(&self, region: RegionId) -> Vec<RegionId> {
        self.children[region.index()]
            .iter()
            .map(|&r| RegionId::new(r))
            .collect()
    }

    /// Top-level regions.
    pub fn roots(&self) -> Vec<RegionId> {
        self.roots.iter().map(|&r| RegionId::new(r)).collect()
    }

    /// All regions of the subtree rooted at `region` (including it), in
    /// depth-first order.
    pub fn subtree(&self, region: RegionId) -> Vec<RegionId> {
        let mut out = Vec::new();
        let mut stack = vec![region.index()];
        while let Some(r) = stack.pop() {
            out.push(RegionId::new(r));
            stack.extend(self.children[r].iter().copied());
        }
        out
    }
}

/// Rolls the innermost-attributed (exclusive) measurements up the tree:
/// the returned matrix has, for every region, the time of its whole
/// subtree — the *inclusive* time a profiler would report for the region.
///
/// # Errors
///
/// Propagates model errors; the tree must describe the same region set.
pub fn inclusive_times(
    measurements: &Measurements,
    tree: &RegionTree,
) -> Result<Measurements, AnalysisError> {
    assert_eq!(
        measurements.regions(),
        tree.len(),
        "tree and measurements disagree on the region count"
    );
    let mut b = limba_model::MeasurementsBuilder::with_activities(
        measurements.processors(),
        measurements.activities().clone(),
    );
    for r in measurements.region_ids() {
        b.add_region(measurements.region_info(r).name().to_string());
    }
    for r in measurements.region_ids() {
        for member in tree.subtree(r) {
            for kind in measurements.activities().iter() {
                for p in measurements.processor_ids() {
                    let t = measurements.time(member, kind, p);
                    if t > 0.0 {
                        b.record(r, kind, p.index(), t).map_err(trace_model_error)?;
                    }
                }
            }
        }
    }
    b.build().map_err(trace_model_error)
}

fn trace_model_error(_e: limba_model::ModelError) -> AnalysisError {
    // Model errors here can only arise from invalid values already
    // rejected upstream; map them to a stats error for simplicity.
    AnalysisError::Stats(limba_stats::StatsError::InvalidValue { value: f64::NAN })
}

/// One step of the drill-down search.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillStep {
    /// The region examined at this depth.
    pub region: RegionId,
    /// Region display name.
    pub name: String,
    /// Inclusive scaled index `SID_C` of the region.
    pub sid: f64,
    /// Inclusive raw index `ID_C`.
    pub id: f64,
    /// Inclusive fraction of the program's wall-clock time.
    pub fraction_of_program: f64,
}

/// Result of the automated drill-down.
#[derive(Debug, Clone, PartialEq)]
pub struct Drilldown {
    /// The path from the top-level culprit down to the most specific
    /// region that still concentrates the imbalance.
    pub path: Vec<DrillStep>,
}

impl Drilldown {
    /// The final (most specific) localization, if the search found any
    /// imbalanced region at all.
    pub fn culprit(&self) -> Option<&DrillStep> {
        self.path.last()
    }
}

/// Automated top-down localization: compute inclusive scaled indices,
/// start from the worst top-level region, and keep descending into the
/// worst child while it still accounts for at least `keep_fraction` of
/// its parent's scaled index (Paradyn-style refinement with a simple
/// pruning rule).
///
/// # Errors
///
/// Propagates view computation errors ([`AnalysisError::EmptyProgram`]
/// for all-zero measurements).
pub fn drilldown(
    measurements: &Measurements,
    tree: &RegionTree,
    dispersion: DispersionKind,
    keep_fraction: f64,
) -> Result<Drilldown, AnalysisError> {
    let inclusive = inclusive_times(measurements, tree)?;
    let av = activity_view(&inclusive, dispersion)?;
    let rv = region_view(&inclusive, &av)?;
    // The inclusive matrix double-counts nested time in its grand total,
    // so fractions and scaled indices are taken against the *exclusive*
    // program time: a root's inclusive fraction is then ~1, as expected.
    let program_total = measurements.total_time();
    let score = |r: RegionId| {
        rv.summary_of(r).map(|s| {
            let fraction = if program_total > 0.0 {
                s.seconds / program_total
            } else {
                0.0
            };
            (fraction * s.id, s.id, fraction)
        })
    };

    let mut path = Vec::new();
    let mut candidates = tree.roots();
    loop {
        let best = candidates
            .iter()
            .filter_map(|&r| score(r).map(|s| (r, s)))
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0));
        let Some((region, (sid, id, fraction))) = best else {
            break;
        };
        if let Some(last) = path.last() {
            let last: &DrillStep = last;
            // Stop when the child no longer concentrates the parent's
            // imbalance.
            if sid < keep_fraction * last.sid {
                break;
            }
        } else if sid <= 0.0 {
            break;
        }
        path.push(DrillStep {
            region,
            name: inclusive.region_info(region).name().to_string(),
            sid,
            id,
            fraction_of_program: fraction,
        });
        candidates = tree.children(region);
        if candidates.is_empty() {
            break;
        }
    }
    Ok(Drilldown { path })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::{ActivityKind, MeasurementsBuilder, ProcessorId};

    /// step → {solve → {flux, update}, io}; the imbalance hides in flux.
    fn nested_case() -> (Measurements, RegionTree) {
        let mut b = MeasurementsBuilder::new(4);
        let step = b.add_region("step");
        let solve = b.add_region("solve");
        let flux = b.add_region("flux");
        let update = b.add_region("update");
        let io = b.add_region("io");
        for p in 0..4 {
            // Exclusive times: parents carry a little glue time.
            b.record(step, ActivityKind::Computation, p, 0.1).unwrap();
            b.record(solve, ActivityKind::Computation, p, 0.2).unwrap();
            // flux: heavily imbalanced; update/io balanced.
            b.record(
                flux,
                ActivityKind::Computation,
                p,
                if p == 3 { 4.0 } else { 1.0 },
            )
            .unwrap();
            b.record(update, ActivityKind::Computation, p, 1.0).unwrap();
            b.record(io, ActivityKind::Io, p, 0.5).ok(); // Io not in standard set
            b.record(io, ActivityKind::Computation, p, 0.5).unwrap();
        }
        let tree = RegionTree::from_parents(vec![
            None,
            Some(step.index()),
            Some(solve.index()),
            Some(solve.index()),
            Some(step.index()),
        ])
        .unwrap();
        (b.build().unwrap(), tree)
    }

    #[test]
    fn tree_navigation() {
        let (_, tree) = nested_case();
        assert_eq!(tree.roots(), vec![RegionId::new(0)]);
        assert_eq!(tree.parent(RegionId::new(2)), Some(RegionId::new(1)));
        assert_eq!(tree.children(RegionId::new(0)).len(), 2);
        let mut subtree = tree.subtree(RegionId::new(1));
        subtree.sort();
        assert_eq!(
            subtree,
            vec![RegionId::new(1), RegionId::new(2), RegionId::new(3)]
        );
        assert_eq!(tree.len(), 5);
        assert!(!tree.is_empty());
    }

    #[test]
    fn invalid_trees_rejected() {
        assert!(RegionTree::from_parents(vec![Some(5)]).is_err());
        // Cycle: 0 → 1 → 0.
        assert!(RegionTree::from_parents(vec![Some(1), Some(0)]).is_err());
        // Self-loop.
        assert!(RegionTree::from_parents(vec![Some(0)]).is_err());
    }

    #[test]
    fn inclusive_roll_up_sums_subtrees() {
        let (m, tree) = nested_case();
        let inc = inclusive_times(&m, &tree).unwrap();
        let p0 = ProcessorId::new(0);
        // flux is a leaf: unchanged.
        assert_eq!(
            inc.time(RegionId::new(2), ActivityKind::Computation, p0),
            1.0
        );
        // solve = own 0.2 + flux 1.0 + update 1.0.
        assert!((inc.time(RegionId::new(1), ActivityKind::Computation, p0) - 2.2).abs() < 1e-12);
        // step = everything.
        assert!((inc.time(RegionId::new(0), ActivityKind::Computation, p0) - 2.8).abs() < 1e-12);
        // The roll-up preserves the per-processor skew.
        let p3 = ProcessorId::new(3);
        assert!((inc.time(RegionId::new(0), ActivityKind::Computation, p3) - 5.8).abs() < 1e-12);
    }

    #[test]
    fn drilldown_finds_the_buried_leaf() {
        let (m, tree) = nested_case();
        let dd = drilldown(&m, &tree, DispersionKind::Euclidean, 0.5).unwrap();
        let names: Vec<&str> = dd.path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["step", "solve", "flux"]);
        let culprit = dd.culprit().unwrap();
        assert_eq!(culprit.name, "flux");
        assert!(culprit.sid > 0.0);
        // Scores grow sharper (or at worst comparable) while descending.
        assert!(dd.path[2].id >= dd.path[0].id);
    }

    #[test]
    fn drilldown_stops_at_balanced_programs() {
        let mut b = MeasurementsBuilder::new(2);
        let r = b.add_region("r");
        for p in 0..2 {
            b.record(r, ActivityKind::Computation, p, 1.0).unwrap();
        }
        let m = b.build().unwrap();
        let tree = RegionTree::from_parents(vec![None]).unwrap();
        let dd = drilldown(&m, &tree, DispersionKind::Euclidean, 0.5).unwrap();
        assert!(dd.path.is_empty());
        assert!(dd.culprit().is_none());
    }

    #[test]
    fn drilldown_does_not_descend_into_diluted_children() {
        // Parent imbalanced through its own exclusive time; children
        // balanced → the path stops at the parent.
        let mut b = MeasurementsBuilder::new(2);
        let parent = b.add_region("parent");
        let child = b.add_region("child");
        b.record(parent, ActivityKind::Computation, 0, 5.0).unwrap();
        b.record(parent, ActivityKind::Computation, 1, 1.0).unwrap();
        for p in 0..2 {
            b.record(child, ActivityKind::Computation, p, 1.0).unwrap();
        }
        let m = b.build().unwrap();
        let tree = RegionTree::from_parents(vec![None, Some(0)]).unwrap();
        let dd = drilldown(&m, &tree, DispersionKind::Euclidean, 0.5).unwrap();
        let names: Vec<&str> = dd.path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["parent"]);
    }
}
