//! Coarse-grain characterization of the program.
//!
//! "A preliminary characterization of the performance of a parallel
//! program is based on the breakdown of its wall clock time T into the
//! times T_j spent in the various activities. The activity with the
//! maximum T_j is defined as the dominant … activity of the program. …
//! The region with the maximum wall clock time, i.e., the heaviest
//! region, might correspond to an inefficient portion of the program or
//! to its core."

use limba_model::{ActivityKind, Measurements, ProgramProfile, RegionId};

use crate::AnalysisError;

/// Worst and best region for one activity.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityExtremes {
    /// The activity.
    pub kind: ActivityKind,
    /// Region with the maximum `t_ij` among regions performing the
    /// activity, with that time.
    pub worst: (RegionId, String, f64),
    /// Region with the minimum `t_ij` among regions performing the
    /// activity, with that time.
    pub best: (RegionId, String, f64),
}

/// Result of the coarse-grain analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseAnalysis {
    /// `T`: program wall-clock time.
    pub total_seconds: f64,
    /// The dominant activity (maximum `T_j`).
    pub dominant_activity: ActivityKind,
    /// `T_j` of the dominant activity.
    pub dominant_activity_seconds: f64,
    /// The heaviest region (maximum `t_i`).
    pub heaviest_region: RegionId,
    /// Name of the heaviest region.
    pub heaviest_region_name: String,
    /// `t_i / T` of the heaviest region.
    pub heaviest_region_fraction: f64,
    /// Region with the maximum time in the dominant activity.
    pub heaviest_in_dominant: RegionId,
    /// Worst/best regions per performed activity, in activity order.
    pub extremes: Vec<ActivityExtremes>,
}

/// Runs the coarse-grain analysis on a profile.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyProgram`] when the program's total
/// wall-clock time is zero.
pub fn coarse_analysis(
    measurements: &Measurements,
    profile: &ProgramProfile,
) -> Result<CoarseAnalysis, AnalysisError> {
    if profile.total_seconds <= 0.0 {
        return Err(AnalysisError::EmptyProgram);
    }
    let (dominant_activity, dominant_activity_seconds) = profile
        .dominant_activity()
        .expect("non-empty program has activities");
    let heaviest = profile
        .heaviest_region()
        .expect("non-empty program has regions");
    let heaviest_in_dominant = profile
        .worst_region_for(dominant_activity)
        .expect("dominant activity is performed somewhere")
        .region;
    let extremes = measurements
        .activities()
        .iter()
        .filter_map(|kind| {
            let worst = profile.worst_region_for(kind)?;
            let best = profile.best_region_for(kind)?;
            Some(ActivityExtremes {
                kind,
                worst: (
                    worst.region,
                    worst.name.clone(),
                    worst.activity_seconds(kind),
                ),
                best: (best.region, best.name.clone(), best.activity_seconds(kind)),
            })
        })
        .collect();
    Ok(CoarseAnalysis {
        total_seconds: profile.total_seconds,
        dominant_activity,
        dominant_activity_seconds,
        heaviest_region: heaviest.region,
        heaviest_region_name: heaviest.name.clone(),
        heaviest_region_fraction: heaviest.fraction_of_program,
        heaviest_in_dominant,
        extremes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::MeasurementsBuilder;

    fn sample() -> Measurements {
        let mut b = MeasurementsBuilder::new(2);
        let core = b.add_region("core");
        let halo = b.add_region("halo");
        for p in 0..2 {
            b.record(core, ActivityKind::Computation, p, 10.0).unwrap();
            b.record(core, ActivityKind::Collective, p, 2.0).unwrap();
            b.record(halo, ActivityKind::Computation, p, 1.0).unwrap();
            b.record(halo, ActivityKind::PointToPoint, p, 4.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn identifies_dominant_activity_and_heaviest_region() {
        let m = sample();
        let profile = ProgramProfile::from_measurements(&m);
        let c = coarse_analysis(&m, &profile).unwrap();
        assert_eq!(c.dominant_activity, ActivityKind::Computation);
        assert!((c.dominant_activity_seconds - 11.0).abs() < 1e-12);
        assert_eq!(c.heaviest_region_name, "core");
        assert!((c.heaviest_region_fraction - 12.0 / 17.0).abs() < 1e-12);
        assert_eq!(c.heaviest_in_dominant.index(), 0);
    }

    #[test]
    fn extremes_cover_only_performed_activities() {
        let m = sample();
        let profile = ProgramProfile::from_measurements(&m);
        let c = coarse_analysis(&m, &profile).unwrap();
        let kinds: Vec<ActivityKind> = c.extremes.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ActivityKind::Computation,
                ActivityKind::PointToPoint,
                ActivityKind::Collective
            ]
        );
        let comp = &c.extremes[0];
        assert_eq!(comp.worst.1, "core");
        assert_eq!(comp.best.1, "halo");
        assert_eq!(comp.worst.2, 10.0);
    }

    #[test]
    fn empty_program_is_rejected() {
        let mut b = MeasurementsBuilder::new(1);
        b.add_region("r");
        let m = b.build().unwrap();
        let profile = ProgramProfile::from_measurements(&m);
        assert!(matches!(
            coarse_analysis(&m, &profile),
            Err(AnalysisError::EmptyProgram)
        ));
    }
}
