//! Qualitative pattern diagrams (Figures 1 and 2 of the paper).
//!
//! "The four colors used in the figures refer to the maximum and minimum
//! values of the wall clock times of the loop and to values belonging to
//! the lower and upper 15% intervals of the range of the wall clock
//! times, respectively."

use limba_model::{ActivityKind, Measurements, RegionId};

/// Classification of one processor's time within a (region, activity) row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternBin {
    /// Equal to the row maximum.
    Max,
    /// In the upper 15 % of the range, but not the maximum.
    UpperTail,
    /// In the middle 70 % of the range.
    Mid,
    /// In the lower 15 % of the range, but not the minimum.
    LowerTail,
    /// Equal to the row minimum.
    Min,
}

impl PatternBin {
    /// One-character glyph used by text renderings.
    pub fn glyph(self) -> char {
        match self {
            PatternBin::Max => 'M',
            PatternBin::UpperTail => '+',
            PatternBin::Mid => '.',
            PatternBin::LowerTail => '-',
            PatternBin::Min => 'm',
        }
    }
}

/// Classifies each value of `row` against the row's own range.
///
/// When all values are equal (range zero) every value is both the maximum
/// and the minimum; the whole row is classified [`PatternBin::Mid`] to
/// signal perfect balance.
pub fn classify_row(row: &[f64]) -> Vec<PatternBin> {
    if row.is_empty() {
        return Vec::new();
    }
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = row.iter().copied().fold(f64::INFINITY, f64::min);
    let range = max - min;
    if range <= 0.0 {
        return vec![PatternBin::Mid; row.len()];
    }
    row.iter()
        .map(|&v| {
            if v == max {
                PatternBin::Max
            } else if v == min {
                PatternBin::Min
            } else if v >= min + 0.85 * range {
                PatternBin::UpperTail
            } else if v <= min + 0.15 * range {
                PatternBin::LowerTail
            } else {
                PatternBin::Mid
            }
        })
        .collect()
}

/// One row of a pattern diagram: a region's per-processor bins for one
/// activity.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternRow {
    /// The region this row describes.
    pub region: RegionId,
    /// Region display name.
    pub name: String,
    /// Per-processor bins.
    pub bins: Vec<PatternBin>,
}

impl PatternRow {
    /// Number of processors in the given bin.
    pub fn count(&self, bin: PatternBin) -> usize {
        self.bins.iter().filter(|&&b| b == bin).count()
    }

    /// Number of processors at or above the upper 15 % boundary
    /// (maximum included) — how the paper counts "times … belong\[ing\] to
    /// the upper 15% interval".
    pub fn upper_tail_count(&self) -> usize {
        self.count(PatternBin::Max) + self.count(PatternBin::UpperTail)
    }

    /// Number of processors at or below the lower 15 % boundary
    /// (minimum included).
    pub fn lower_tail_count(&self) -> usize {
        self.count(PatternBin::Min) + self.count(PatternBin::LowerTail)
    }
}

/// A pattern diagram for one activity: one row per region performing it
/// (the paper's "the diagrams plot only the loops performing the
/// activity").
#[derive(Debug, Clone, PartialEq)]
pub struct PatternGrid {
    /// The activity the diagram shows.
    pub activity: ActivityKind,
    /// Rows in region order.
    pub rows: Vec<PatternRow>,
}

/// Builds the pattern diagram of `activity` from `measurements`.
pub fn pattern_grid(measurements: &Measurements, activity: ActivityKind) -> PatternGrid {
    let rows = measurements
        .region_ids()
        .filter(|&r| measurements.performs(r, activity))
        .map(|r| {
            let slice = measurements
                .processor_slice(r, activity)
                .expect("performed activity has a slice");
            PatternRow {
                region: r,
                name: measurements.region_info(r).name().to_string(),
                bins: classify_row(slice),
            }
        })
        .collect();
    PatternGrid { activity, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::MeasurementsBuilder;

    #[test]
    fn classify_identifies_extremes_and_tails() {
        // Range [0, 100]: 0 → Min, 100 → Max, 10 → LowerTail, 90 →
        // UpperTail, 50 → Mid.
        let bins = classify_row(&[0.0, 100.0, 10.0, 90.0, 50.0]);
        assert_eq!(
            bins,
            vec![
                PatternBin::Min,
                PatternBin::Max,
                PatternBin::LowerTail,
                PatternBin::UpperTail,
                PatternBin::Mid
            ]
        );
    }

    #[test]
    fn boundaries_are_inclusive() {
        // 15 and 85 are exactly on the 15 % boundaries of [0, 100].
        let bins = classify_row(&[0.0, 100.0, 15.0, 85.0]);
        assert_eq!(bins[2], PatternBin::LowerTail);
        assert_eq!(bins[3], PatternBin::UpperTail);
    }

    #[test]
    fn equal_values_are_all_mid() {
        assert_eq!(classify_row(&[3.0; 5]), vec![PatternBin::Mid; 5]);
        assert!(classify_row(&[]).is_empty());
    }

    #[test]
    fn tied_extremes_all_classified() {
        let bins = classify_row(&[5.0, 5.0, 1.0, 1.0, 3.0]);
        assert_eq!(bins[0], PatternBin::Max);
        assert_eq!(bins[1], PatternBin::Max);
        assert_eq!(bins[2], PatternBin::Min);
        assert_eq!(bins[3], PatternBin::Min);
        assert_eq!(bins[4], PatternBin::Mid);
    }

    #[test]
    fn grid_includes_only_performing_regions() {
        let mut b = MeasurementsBuilder::new(2);
        let r0 = b.add_region("with p2p");
        let _r1 = b.add_region("without p2p");
        b.record(r0, ActivityKind::PointToPoint, 0, 1.0).unwrap();
        b.record(r0, ActivityKind::PointToPoint, 1, 2.0).unwrap();
        let m = b.build().unwrap();
        let grid = pattern_grid(&m, ActivityKind::PointToPoint);
        assert_eq!(grid.rows.len(), 1);
        assert_eq!(grid.rows[0].name, "with p2p");
        assert_eq!(grid.rows[0].bins, vec![PatternBin::Min, PatternBin::Max]);
    }

    #[test]
    fn tail_counts_include_extremes() {
        let row = PatternRow {
            region: RegionId::new(0),
            name: "r".into(),
            bins: classify_row(&[0.0, 1.0, 99.0, 100.0, 100.0]),
        };
        assert_eq!(row.upper_tail_count(), 3); // 99 + two 100s
        assert_eq!(row.lower_tail_count(), 2); // 0 + 1
        assert_eq!(row.count(PatternBin::Max), 2);
    }

    #[test]
    fn glyphs_are_distinct() {
        let glyphs = [
            PatternBin::Max.glyph(),
            PatternBin::UpperTail.glyph(),
            PatternBin::Mid.glyph(),
            PatternBin::LowerTail.glyph(),
            PatternBin::Min.glyph(),
        ];
        let mut sorted = glyphs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), glyphs.len());
    }
}
