//! The activity view: `ID_ij`, `ID_A_j`, `SID_A_j`.
//!
//! "Activity view analyzes dissimilarities within the activities
//! performed by the processors across all the code regions with the
//! objective of identifying the most imbalanced activity."

use limba_model::{ActivityKind, Measurements, RegionId};
use limba_stats::dispersion::{DispersionIndex, DispersionKind};

use crate::AnalysisError;

/// Per-activity summary: the weighted average `ID_A_j` and its scaled
/// counterpart `SID_A_j`.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySummary {
    /// The activity.
    pub kind: ActivityKind,
    /// `T_j`: program-wide wall-clock time of the activity.
    pub seconds: f64,
    /// `T_j / T`.
    pub fraction_of_program: f64,
    /// `ID_A_j = Σ_i (t_ij / T_j) · ID_ij`.
    pub id: f64,
    /// `SID_A_j = (T_j / T) · ID_A_j`.
    pub sid: f64,
}

/// The complete activity view.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityView {
    /// `ID_ij` per `[region][activity column]`; `None` where the region
    /// does not perform the activity (the "-" cells of Table 2).
    pub id: Vec<Vec<Option<f64>>>,
    /// One summary per *performed* activity, in activity-column order
    /// (Table 3).
    pub summaries: Vec<ActivitySummary>,
}

impl ActivityView {
    /// `ID_ij` of one cell, `None` when not performed.
    pub fn id_of(&self, region: RegionId, column: usize) -> Option<f64> {
        self.id
            .get(region.index())
            .and_then(|row| row.get(column).copied().flatten())
    }

    /// The most imbalanced activity by raw `ID_A_j`.
    pub fn most_imbalanced(&self) -> Option<&ActivitySummary> {
        self.summaries.iter().max_by(|a, b| a.id.total_cmp(&b.id))
    }

    /// The most imbalanced activity by scaled `SID_A_j` — the paper's
    /// criterion for *tuning-relevant* imbalance.
    pub fn most_imbalanced_scaled(&self) -> Option<&ActivitySummary> {
        self.summaries.iter().max_by(|a, b| a.sid.total_cmp(&b.sid))
    }
}

/// Computes the activity view of `measurements` with the given index of
/// dispersion.
///
/// For each cell where region `i` performs activity `j`, the times of the
/// processors are standardized to sum one and their dispersion around the
/// balanced point is `ID_ij`. The per-activity summaries weight the
/// `ID_ij` by `t_ij / T_j` and scale by `T_j / T`.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyProgram`] when the total time is zero;
/// propagates statistical errors (which indicate invalid measurements).
pub fn activity_view(
    measurements: &Measurements,
    dispersion: DispersionKind,
) -> Result<ActivityView, AnalysisError> {
    let total = measurements.total_time();
    if total <= 0.0 {
        return Err(AnalysisError::EmptyProgram);
    }
    let k = measurements.activities().len();
    let mut id: Vec<Vec<Option<f64>>> = Vec::with_capacity(measurements.regions());
    for r in measurements.region_ids() {
        let mut row = Vec::with_capacity(k);
        for kind in measurements.activities().iter() {
            if measurements.performs(r, kind) {
                let slice = measurements
                    .processor_slice(r, kind)
                    .expect("performed activity has a slice");
                row.push(Some(dispersion.index(slice)?));
            } else {
                row.push(None);
            }
        }
        id.push(row);
    }

    let mut summaries = Vec::new();
    for (col, kind) in measurements.activities().iter().enumerate() {
        let t_j = measurements.activity_time(kind);
        if t_j <= 0.0 {
            continue;
        }
        let mut weighted = 0.0;
        for r in measurements.region_ids() {
            if let Some(d) = id[r.index()][col] {
                let t_ij = measurements.region_activity_time(r, kind);
                weighted += t_ij / t_j * d;
            }
        }
        summaries.push(ActivitySummary {
            kind,
            seconds: t_j,
            fraction_of_program: t_j / total,
            id: weighted,
            sid: t_j / total * weighted,
        });
    }
    Ok(ActivityView { id, summaries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::MeasurementsBuilder;

    /// Two regions, two processors. Region 0: computation [1, 3] (spread),
    /// collective [1, 1] (balanced). Region 1: computation [2, 2].
    fn sample() -> Measurements {
        let mut b = MeasurementsBuilder::new(2);
        let r0 = b.add_region("a");
        let r1 = b.add_region("b");
        b.record(r0, ActivityKind::Computation, 0, 1.0).unwrap();
        b.record(r0, ActivityKind::Computation, 1, 3.0).unwrap();
        b.record(r0, ActivityKind::Collective, 0, 1.0).unwrap();
        b.record(r0, ActivityKind::Collective, 1, 1.0).unwrap();
        b.record(r1, ActivityKind::Computation, 0, 2.0).unwrap();
        b.record(r1, ActivityKind::Computation, 1, 2.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn id_matrix_matches_hand_computation() {
        let v = activity_view(&sample(), DispersionKind::Euclidean).unwrap();
        // Region 0 computation: standardized [0.25, 0.75], mean 0.5 →
        // sqrt(2 · 0.25²) = 0.3535…
        let expected = (2.0f64 * 0.25 * 0.25).sqrt();
        assert!((v.id[0][0].unwrap() - expected).abs() < 1e-12);
        // Balanced cells are zero.
        assert_eq!(v.id[0][2], Some(0.0));
        assert_eq!(v.id[1][0], Some(0.0));
        // Not-performed cells are None.
        assert_eq!(v.id[0][1], None);
        assert_eq!(v.id[1][3], None);
    }

    #[test]
    fn summaries_weight_by_time_share() {
        let v = activity_view(&sample(), DispersionKind::Euclidean).unwrap();
        // Computation: T_comp = 2 + 2 = 4 (means). ID_A = (2/4)·0.3535 + (2/4)·0 .
        let comp = &v.summaries[0];
        assert_eq!(comp.kind, ActivityKind::Computation);
        let id0 = (2.0f64 * 0.25 * 0.25).sqrt();
        assert!((comp.id - 0.5 * id0).abs() < 1e-12);
        // T = 5 (4 comp + 1 collective), so SID = 4/5 · ID.
        assert!((comp.sid - 0.8 * comp.id).abs() < 1e-12);
        assert!((comp.fraction_of_program - 0.8).abs() < 1e-12);
    }

    #[test]
    fn unperformed_activities_have_no_summary() {
        let v = activity_view(&sample(), DispersionKind::Euclidean).unwrap();
        let kinds: Vec<ActivityKind> = v.summaries.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![ActivityKind::Computation, ActivityKind::Collective]
        );
    }

    #[test]
    fn most_imbalanced_selectors() {
        let v = activity_view(&sample(), DispersionKind::Euclidean).unwrap();
        assert_eq!(v.most_imbalanced().unwrap().kind, ActivityKind::Computation);
        assert_eq!(
            v.most_imbalanced_scaled().unwrap().kind,
            ActivityKind::Computation
        );
    }

    #[test]
    fn id_of_accessor() {
        let v = activity_view(&sample(), DispersionKind::Euclidean).unwrap();
        assert!(v.id_of(RegionId::new(0), 0).is_some());
        assert!(v.id_of(RegionId::new(0), 1).is_none());
        assert!(v.id_of(RegionId::new(9), 0).is_none());
    }

    #[test]
    fn empty_program_rejected() {
        let mut b = MeasurementsBuilder::new(1);
        b.add_region("r");
        let m = b.build().unwrap();
        assert!(matches!(
            activity_view(&m, DispersionKind::Euclidean),
            Err(AnalysisError::EmptyProgram)
        ));
    }

    #[test]
    fn alternative_dispersion_indices_work() {
        for kind in DispersionKind::ALL {
            let v = activity_view(&sample(), kind).unwrap();
            assert!(v.id[0][0].unwrap() > 0.0, "{kind} gave zero on spread data");
            assert!(v.id[1][0].unwrap().abs() < 1e-12);
        }
    }
}
