//! The code-region view: `ID_C_i`, `SID_C_i`.
//!
//! "Code region view analyzes the dissimilarities with respect to the
//! various activities performed by the processors within each region
//! with the objective of identifying the most imbalanced region."

use limba_model::{Measurements, RegionId};

use crate::views::ActivityView;
use crate::AnalysisError;

/// Per-region summary: the weighted average `ID_C_i` and its scaled
/// counterpart `SID_C_i` (Table 4).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSummary {
    /// The region.
    pub region: RegionId,
    /// Region display name.
    pub name: String,
    /// `t_i`: region wall-clock time.
    pub seconds: f64,
    /// `t_i / T`.
    pub fraction_of_program: f64,
    /// `ID_C_i = Σ_j (t_ij / t_i) · ID_ij`.
    pub id: f64,
    /// `SID_C_i = (t_i / T) · ID_C_i`.
    pub sid: f64,
}

/// The complete code-region view.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionView {
    /// One summary per region with nonzero time, in region order.
    pub summaries: Vec<RegionSummary>,
}

impl RegionView {
    /// The most imbalanced region by raw `ID_C_i`.
    pub fn most_imbalanced(&self) -> Option<&RegionSummary> {
        self.summaries.iter().max_by(|a, b| a.id.total_cmp(&b.id))
    }

    /// The most imbalanced region by scaled `SID_C_i`.
    pub fn most_imbalanced_scaled(&self) -> Option<&RegionSummary> {
        self.summaries.iter().max_by(|a, b| a.sid.total_cmp(&b.sid))
    }

    /// Summary of one region, if it has nonzero time.
    pub fn summary_of(&self, region: RegionId) -> Option<&RegionSummary> {
        self.summaries.iter().find(|s| s.region == region)
    }
}

/// Computes the code-region view from the `ID_ij` matrix of an already
/// computed [`ActivityView`].
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyProgram`] when the total time is zero.
pub fn region_view(
    measurements: &Measurements,
    activity_view: &ActivityView,
) -> Result<RegionView, AnalysisError> {
    let total = measurements.total_time();
    if total <= 0.0 {
        return Err(AnalysisError::EmptyProgram);
    }
    let mut summaries = Vec::new();
    for r in measurements.region_ids() {
        let t_i = measurements.region_time(r);
        if t_i <= 0.0 {
            continue;
        }
        let mut weighted = 0.0;
        for (col, kind) in measurements.activities().iter().enumerate() {
            if let Some(d) = activity_view.id[r.index()][col] {
                let t_ij = measurements.region_activity_time(r, kind);
                weighted += t_ij / t_i * d;
            }
        }
        summaries.push(RegionSummary {
            region: r,
            name: measurements.region_info(r).name().to_string(),
            seconds: t_i,
            fraction_of_program: t_i / total,
            id: weighted,
            sid: t_i / total * weighted,
        });
    }
    Ok(RegionView { summaries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::activity_view as compute_activity_view;
    use limba_model::{ActivityKind, MeasurementsBuilder};
    use limba_stats::dispersion::DispersionKind;

    /// Region 0: comp [1,3] (ID = 0.3535), coll [1,1] (ID = 0).
    /// Region 1: comp [2,2] (ID = 0).
    fn sample() -> Measurements {
        let mut b = MeasurementsBuilder::new(2);
        let r0 = b.add_region("a");
        let r1 = b.add_region("b");
        b.record(r0, ActivityKind::Computation, 0, 1.0).unwrap();
        b.record(r0, ActivityKind::Computation, 1, 3.0).unwrap();
        b.record(r0, ActivityKind::Collective, 0, 1.0).unwrap();
        b.record(r0, ActivityKind::Collective, 1, 1.0).unwrap();
        b.record(r1, ActivityKind::Computation, 0, 2.0).unwrap();
        b.record(r1, ActivityKind::Computation, 1, 2.0).unwrap();
        b.build().unwrap()
    }

    fn views(m: &Measurements) -> (ActivityView, RegionView) {
        let av = compute_activity_view(m, DispersionKind::Euclidean).unwrap();
        let rv = region_view(m, &av).unwrap();
        (av, rv)
    }

    #[test]
    fn region_summary_matches_hand_computation() {
        let m = sample();
        let (_, rv) = views(&m);
        // Region 0: t_0 = 2 + 1 = 3; ID_C = (2/3)·0.3535 + (1/3)·0.
        let id0 = (2.0f64 * 0.25 * 0.25).sqrt();
        let s0 = &rv.summaries[0];
        assert!((s0.id - 2.0 / 3.0 * id0).abs() < 1e-12);
        // T = 5 → SID = 3/5 · ID.
        assert!((s0.sid - 0.6 * s0.id).abs() < 1e-12);
        assert!((s0.fraction_of_program - 0.6).abs() < 1e-12);
        // Region 1 perfectly balanced.
        assert_eq!(rv.summaries[1].id, 0.0);
    }

    #[test]
    fn most_imbalanced_selectors() {
        let m = sample();
        let (_, rv) = views(&m);
        assert_eq!(rv.most_imbalanced().unwrap().name, "a");
        assert_eq!(rv.most_imbalanced_scaled().unwrap().name, "a");
        assert!(rv.summary_of(RegionId::new(1)).is_some());
        assert!(rv.summary_of(RegionId::new(7)).is_none());
    }

    #[test]
    fn zero_time_regions_are_skipped() {
        let mut b = MeasurementsBuilder::new(2);
        let r0 = b.add_region("busy");
        let _empty = b.add_region("empty");
        b.record(r0, ActivityKind::Computation, 0, 1.0).unwrap();
        b.record(r0, ActivityKind::Computation, 1, 1.0).unwrap();
        let m = b.build().unwrap();
        let (_, rv) = views(&m);
        assert_eq!(rv.summaries.len(), 1);
        assert_eq!(rv.summaries[0].name, "busy");
    }
}
