//! The three complementary views of processor dissimilarities.
//!
//! "our analysis focuses on three different views, namely, processor,
//! activity, and code region. These views provide complementary insights
//! into the behavior of the processors as they correspond to the
//! different perspectives used to characterize a parallel program."

mod activity;
mod processor;
mod region;

pub use activity::{activity_view, ActivitySummary, ActivityView};
pub use processor::{processor_view, ProcessorView};
pub use region::{region_view, RegionSummary, RegionView};
