//! The processor view: `ID_P_ip`.
//!
//! "Processor view is aimed at analyzing the behavior of the processors
//! across the activities performed within each code region with the
//! objective of identifying the most frequently imbalanced processor. …
//! These indices are computed as the Euclidean distance between the times
//! spent by processor p on the various activities performed within code
//! region i and the average time of these activities over all
//! processors", after standardizing each processor's activity vector over
//! its own sum within the region.

use limba_model::{Measurements, ProcessorId, RegionId};
use limba_stats::dispersion::euclidean_distance;
use limba_stats::standardize::to_unit_sum;

use crate::AnalysisError;

/// The complete processor view.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorView {
    /// `ID_P_ip` per `[region][processor]`; `None` when the processor
    /// spent no time in the region.
    pub id: Vec<Vec<Option<f64>>>,
    /// Per region, the most imbalanced processor (argmax of `ID_P_ip`)
    /// with its index value and its wall-clock time in the region; `None`
    /// for regions with no comparable processors.
    pub most_imbalanced_per_region: Vec<Option<(ProcessorId, f64, f64)>>,
}

impl ProcessorView {
    /// `ID_P_ip` of one cell.
    pub fn id_of(&self, region: RegionId, proc: ProcessorId) -> Option<f64> {
        self.id
            .get(region.index())
            .and_then(|row| row.get(proc.index()).copied().flatten())
    }

    /// How many regions each processor is the most imbalanced of — the
    /// paper's "most frequently imbalanced" count.
    pub fn imbalance_counts(&self, processors: usize) -> Vec<usize> {
        let mut counts = vec![0usize; processors];
        for entry in self.most_imbalanced_per_region.iter().flatten() {
            counts[entry.0.index()] += 1;
        }
        counts
    }

    /// Total wall-clock time each processor spent in the regions it is
    /// the most imbalanced of — the paper's "imbalanced for the longest
    /// time" measure.
    pub fn imbalance_durations(&self, processors: usize) -> Vec<f64> {
        let mut durations = vec![0.0; processors];
        for entry in self.most_imbalanced_per_region.iter().flatten() {
            durations[entry.0.index()] += entry.2;
        }
        durations
    }
}

/// Computes the processor view of `measurements`.
///
/// For each region `i` and processor `p`, the times of `p` across the
/// activities are standardized over their sum (`t̂_ijp = t_ijp / Σ_j
/// t_ijp`), and `ID_P_ip` is the Euclidean distance between `p`'s
/// standardized activity mix and the mean mix over all processors of the
/// region.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyProgram`] when the total time is zero.
pub fn processor_view(measurements: &Measurements) -> Result<ProcessorView, AnalysisError> {
    if measurements.total_time() <= 0.0 {
        return Err(AnalysisError::EmptyProgram);
    }
    let p = measurements.processors();
    let k = measurements.activities().len();
    let mut id = Vec::with_capacity(measurements.regions());
    let mut most = Vec::with_capacity(measurements.regions());
    for r in measurements.region_ids() {
        // Standardized activity mix per processor (None for idle procs).
        let mixes: Vec<Option<Vec<f64>>> = (0..p)
            .map(|pi| {
                let v = measurements.activity_vector(r, ProcessorId::new(pi));
                to_unit_sum(&v).ok()
            })
            .collect();
        let participating: Vec<&Vec<f64>> = mixes.iter().flatten().collect();
        if participating.is_empty() {
            id.push(vec![None; p]);
            most.push(None);
            continue;
        }
        // Mean standardized mix over participating processors.
        let mut mean = vec![0.0; k];
        for mix in &participating {
            for (m, &v) in mean.iter_mut().zip(mix.iter()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= participating.len() as f64;
        }
        let row: Vec<Option<f64>> = mixes
            .iter()
            .map(|mix| {
                mix.as_ref().map(|mix| {
                    euclidean_distance(mix, &mean).expect("equal lengths by construction")
                })
            })
            .collect();
        // Argmax with ties toward the smaller processor index.
        let argmax = row
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|d| (i, d)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)));
        most.push(argmax.map(|(i, d)| {
            let proc = ProcessorId::new(i);
            (proc, d, measurements.processor_region_time(r, proc))
        }));
        id.push(row);
    }
    Ok(ProcessorView {
        id,
        most_imbalanced_per_region: most,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::{ActivityKind, MeasurementsBuilder};

    /// Three processors in one region. Processors 0 and 1 have the same
    /// 50/50 computation/communication mix; processor 2 is all
    /// computation.
    fn sample() -> Measurements {
        let mut b = MeasurementsBuilder::new(3);
        let r = b.add_region("r");
        for p in 0..2 {
            b.record(r, ActivityKind::Computation, p, 2.0).unwrap();
            b.record(r, ActivityKind::PointToPoint, p, 2.0).unwrap();
        }
        b.record(r, ActivityKind::Computation, 2, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn outlier_mix_has_largest_index() {
        let v = processor_view(&sample()).unwrap();
        let r = RegionId::new(0);
        let d0 = v.id_of(r, ProcessorId::new(0)).unwrap();
        let d2 = v.id_of(r, ProcessorId::new(2)).unwrap();
        assert!(d2 > d0);
        // Hand computation: mixes are (.5,.5,0,0) ×2 and (1,0,0,0);
        // mean = (2/3, 1/3, 0, 0); d2 = sqrt((1/3)² + (1/3)²).
        let expected = (2.0f64 / 9.0).sqrt();
        assert!((d2 - expected).abs() < 1e-12);
        let expected0 = (2.0f64 * (1.0 / 6.0) * (1.0 / 6.0)).sqrt();
        assert!((d0 - expected0).abs() < 1e-12);
        assert_eq!(
            v.most_imbalanced_per_region[0].as_ref().unwrap().0,
            ProcessorId::new(2)
        );
    }

    #[test]
    fn identical_mixes_give_zero_indices() {
        let mut b = MeasurementsBuilder::new(4);
        let r = b.add_region("r");
        for p in 0..4 {
            // Different magnitudes but identical mixes.
            let scale = 1.0 + p as f64;
            b.record(r, ActivityKind::Computation, p, 3.0 * scale)
                .unwrap();
            b.record(r, ActivityKind::Collective, p, 1.0 * scale)
                .unwrap();
        }
        let m = b.build().unwrap();
        let v = processor_view(&m).unwrap();
        for p in 0..4 {
            let d = v.id_of(RegionId::new(0), ProcessorId::new(p)).unwrap();
            assert!(d.abs() < 1e-12, "proc {p} has nonzero index {d}");
        }
    }

    #[test]
    fn idle_processor_has_no_index() {
        let mut b = MeasurementsBuilder::new(2);
        let r = b.add_region("r");
        b.record(r, ActivityKind::Computation, 0, 1.0).unwrap();
        let m = b.build().unwrap();
        let v = processor_view(&m).unwrap();
        assert!(v.id_of(RegionId::new(0), ProcessorId::new(0)).is_some());
        assert!(v.id_of(RegionId::new(0), ProcessorId::new(1)).is_none());
    }

    #[test]
    fn counts_and_durations_aggregate_across_regions() {
        // Two regions; processor 1 is the outlier in both.
        let mut b = MeasurementsBuilder::new(2);
        let r0 = b.add_region("a");
        let r1 = b.add_region("b");
        for r in [r0, r1] {
            b.record(r, ActivityKind::Computation, 0, 1.0).unwrap();
            b.record(r, ActivityKind::PointToPoint, 0, 1.0).unwrap();
            b.record(r, ActivityKind::Computation, 1, 2.0).unwrap();
        }
        let m = b.build().unwrap();
        let v = processor_view(&m).unwrap();
        // Both processors deviate symmetrically from the mean mix, so the
        // tie goes to processor 0; durations follow.
        let counts = v.imbalance_counts(2);
        assert_eq!(counts.iter().sum::<usize>(), 2);
        let durations = v.imbalance_durations(2);
        assert!(durations.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn region_with_no_time_yields_none_row() {
        let mut b = MeasurementsBuilder::new(2);
        let r0 = b.add_region("busy");
        let _r1 = b.add_region("idle");
        b.record(r0, ActivityKind::Computation, 0, 1.0).unwrap();
        b.record(r0, ActivityKind::Computation, 1, 1.0).unwrap();
        let m = b.build().unwrap();
        let v = processor_view(&m).unwrap();
        assert_eq!(v.id[1], vec![None, None]);
        assert!(v.most_imbalanced_per_region[1].is_none());
    }
}
