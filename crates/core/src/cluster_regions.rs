//! Clustering of code regions by their activity time vectors.
//!
//! "Each code region i is described by its wall clock times t_ij and is
//! represented in a K-dimensional space. Clustering partitions this space
//! into groups of code regions with homogeneous characteristics."

use limba_cluster::{KMeans, KMeansConfig, Standardizer};
use limba_model::{Measurements, RegionId};

use crate::AnalysisError;

/// How region feature vectors are scaled before clustering.
///
/// With raw `t_ij` features the heavy activities dominate the distances;
/// z-scoring gives every activity equal voice. The paper's reported
/// partition of its case study (loops {1, 2} vs. the rest) is the k-means
/// optimum under z-scored features, which is therefore the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FeatureScaling {
    /// Cluster the raw `t_ij` vectors.
    Raw,
    /// Z-score each activity column first (default).
    #[default]
    ZScore,
}

/// Result of clustering the code regions.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionClustering {
    /// Number of clusters.
    pub k: usize,
    /// Cluster label of each region, in region order.
    pub assignments: Vec<usize>,
    /// Regions of each cluster, ordered by decreasing total cluster time
    /// (group 0 holds the heaviest regions).
    pub groups: Vec<Vec<RegionId>>,
    /// Within-cluster sum of squares of the fit.
    pub wcss: f64,
}

impl RegionClustering {
    /// The cluster label of `region`.
    pub fn label_of(&self, region: RegionId) -> usize {
        self.assignments[region.index()]
    }

    /// Returns `true` when the two regions ended up in the same group.
    pub fn same_group(&self, a: RegionId, b: RegionId) -> bool {
        self.label_of(a) == self.label_of(b)
    }
}

/// Clusters the regions of `measurements` into `k` groups by k-means on
/// their `t_ij` vectors, with a deterministic seed and the given feature
/// scaling.
///
/// # Errors
///
/// Propagates [`limba_cluster::ClusterError`] (e.g. `k` larger than the
/// number of regions).
pub fn cluster_regions(
    measurements: &Measurements,
    k: usize,
    seed: u64,
    scaling: FeatureScaling,
) -> Result<RegionClustering, AnalysisError> {
    let points: Vec<Vec<f64>> = measurements
        .region_ids()
        .map(|r| {
            measurements
                .activities()
                .iter()
                .map(|kind| measurements.region_activity_time(r, kind))
                .collect()
        })
        .collect();
    let points = match scaling {
        FeatureScaling::Raw => points,
        FeatureScaling::ZScore => Standardizer::fit(&points)?.transform(&points),
    };
    let result =
        KMeans::new(KMeansConfig::new(k).with_seed(seed).with_restarts(32)).fit(&points)?;

    // Order groups by decreasing total time so "group 0" is the heavy one.
    let mut groups: Vec<(f64, Vec<RegionId>)> = vec![(0.0, Vec::new()); result.k()];
    for (i, &label) in result.assignments.iter().enumerate() {
        let r = RegionId::new(i);
        groups[label].0 += measurements.region_time(r);
        groups[label].1.push(r);
    }
    let mut order: Vec<usize> = (0..result.k()).collect();
    order.sort_by(|&a, &b| groups[b].0.total_cmp(&groups[a].0));
    let relabel: Vec<usize> = {
        let mut relabel = vec![0; result.k()];
        for (new, &old) in order.iter().enumerate() {
            relabel[old] = new;
        }
        relabel
    };
    let assignments: Vec<usize> = result.assignments.iter().map(|&a| relabel[a]).collect();
    let groups: Vec<Vec<RegionId>> = order.into_iter().map(|old| groups[old].1.clone()).collect();

    Ok(RegionClustering {
        k: result.k(),
        assignments,
        groups,
        wcss: result.wcss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::{ActivityKind, MeasurementsBuilder};

    /// Two heavy regions and three light ones.
    fn sample() -> Measurements {
        let mut b = MeasurementsBuilder::new(2);
        let weights = [10.0, 9.0, 1.0, 0.8, 0.5];
        for (i, w) in weights.iter().enumerate() {
            let r = b.add_region(format!("loop {}", i + 1));
            for p in 0..2 {
                b.record(r, ActivityKind::Computation, p, *w).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn heavy_regions_form_their_own_group() {
        let m = sample();
        let c = cluster_regions(&m, 2, 0, FeatureScaling::Raw).unwrap();
        assert!(c.same_group(RegionId::new(0), RegionId::new(1)));
        assert!(c.same_group(RegionId::new(2), RegionId::new(3)));
        assert!(!c.same_group(RegionId::new(0), RegionId::new(2)));
        // Group 0 holds the heavy regions.
        assert_eq!(c.assignments[0], 0);
        assert_eq!(c.assignments[2], 1);
        assert_eq!(c.groups[0].len(), 2);
        assert_eq!(c.groups[1].len(), 3);
    }

    #[test]
    fn k_larger_than_regions_fails() {
        let m = sample();
        assert!(cluster_regions(&m, 10, 0, FeatureScaling::default()).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m = sample();
        let a = cluster_regions(&m, 2, 1, FeatureScaling::ZScore).unwrap();
        let b = cluster_regions(&m, 2, 1, FeatureScaling::ZScore).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_cluster_contains_everything() {
        let m = sample();
        let c = cluster_regions(&m, 1, 0, FeatureScaling::ZScore).unwrap();
        assert_eq!(c.groups.len(), 1);
        assert_eq!(c.groups[0].len(), 5);
    }
}
