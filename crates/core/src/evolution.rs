//! Temporal evolution of load imbalance.
//!
//! The paper analyzes one aggregate matrix per run; a natural extension
//! (in the spirit of its "new criteria" future work and of on-line tools
//! like Paradyn) is to track how the indices of dispersion *evolve* over
//! the execution: a growing index points at progressive imbalance (e.g.
//! particles clustering), a stable one at a structural decomposition
//! problem. The per-window matrices come from
//! `limba_trace::reduce_windows`-style slicing; this module fits the
//! trend.

use limba_model::{ActivityKind, Measurements};
use limba_stats::describe::least_squares_slope;
use limba_stats::dispersion::{DispersionIndex, DispersionKind};

use crate::AnalysisError;

/// Direction of an imbalance trend over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trend {
    /// The index grows by more than the tolerance over the run.
    Growing,
    /// The index shrinks by more than the tolerance over the run.
    Shrinking,
    /// No significant drift.
    Stable,
}

/// Evolution of one activity's program-wide dispersion across windows.
#[derive(Debug, Clone, PartialEq)]
pub struct ImbalanceSeries {
    /// The activity tracked.
    pub activity: ActivityKind,
    /// One weighted dispersion value per window (`ID_A_j` of the window);
    /// `None` for windows where the activity has no time.
    pub values: Vec<Option<f64>>,
    /// Least-squares slope per window step over the defined values.
    pub slope: f64,
    /// Trend classification of the slope.
    pub trend: Trend,
}

/// Evolution report over all activities.
#[derive(Debug, Clone, PartialEq)]
pub struct Evolution {
    /// One series per activity with any time in any window.
    pub series: Vec<ImbalanceSeries>,
}

impl Evolution {
    /// The series of one activity, if present.
    pub fn series_of(&self, activity: ActivityKind) -> Option<&ImbalanceSeries> {
        self.series.iter().find(|s| s.activity == activity)
    }

    /// Activities with a growing imbalance trend.
    pub fn growing(&self) -> Vec<ActivityKind> {
        self.series
            .iter()
            .filter(|s| s.trend == Trend::Growing)
            .map(|s| s.activity)
            .collect()
    }
}

/// Computes the weighted dispersion `ID_A_j` of one activity within one
/// window's measurements, or `None` if the activity has no time there.
fn window_activity_id(
    m: &Measurements,
    kind: ActivityKind,
    dispersion: DispersionKind,
) -> Result<Option<f64>, AnalysisError> {
    let t_j = m.activity_time(kind);
    if t_j <= 0.0 {
        return Ok(None);
    }
    let mut weighted = 0.0;
    for r in m.region_ids() {
        if m.performs(r, kind) {
            let slice = m.processor_slice(r, kind).expect("performed");
            let id = dispersion.index(slice)?;
            weighted += m.region_activity_time(r, kind) / t_j * id;
        }
    }
    Ok(Some(weighted))
}

/// Tracks how each activity's weighted dispersion evolves across the
/// per-window measurement matrices.
///
/// `tolerance` is the minimum total drift (slope × window count) that
/// counts as a trend; `0.02` is a reasonable default for the Euclidean
/// index.
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyProgram`] when no windows are given;
/// propagates statistical errors.
pub fn imbalance_evolution(
    windows: &[Measurements],
    dispersion: DispersionKind,
    tolerance: f64,
) -> Result<Evolution, AnalysisError> {
    let first = windows.first().ok_or(AnalysisError::EmptyProgram)?;
    let mut series = Vec::new();
    for kind in first.activities().iter() {
        let mut values = Vec::with_capacity(windows.len());
        for w in windows {
            values.push(window_activity_id(w, kind, dispersion)?);
        }
        if values.iter().all(|v| v.is_none()) {
            continue;
        }
        let points: Vec<(f64, f64)> = values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (i as f64, v)))
            .collect();
        let slope = least_squares_slope(&points);
        let drift = slope * windows.len() as f64;
        let trend = if drift > tolerance {
            Trend::Growing
        } else if drift < -tolerance {
            Trend::Shrinking
        } else {
            Trend::Stable
        };
        series.push(ImbalanceSeries {
            activity: kind,
            values,
            slope,
            trend,
        });
    }
    Ok(Evolution { series })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::MeasurementsBuilder;

    /// A window whose computation spread factor is `skew` (processor 1
    /// does `1 + skew`, processor 0 does `1 − skew`).
    fn window(skew: f64) -> Measurements {
        let mut b = MeasurementsBuilder::new(2);
        let r = b.add_region("r");
        b.record(r, ActivityKind::Computation, 0, 1.0 - skew)
            .unwrap();
        b.record(r, ActivityKind::Computation, 1, 1.0 + skew)
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn growing_imbalance_is_detected() {
        let windows: Vec<Measurements> = (0..5).map(|i| window(i as f64 * 0.1)).collect();
        let evo = imbalance_evolution(&windows, DispersionKind::Euclidean, 0.02).unwrap();
        let comp = evo.series_of(ActivityKind::Computation).unwrap();
        assert_eq!(comp.trend, Trend::Growing);
        assert!(comp.slope > 0.0);
        assert_eq!(evo.growing(), vec![ActivityKind::Computation]);
        // Values are increasing.
        let vals: Vec<f64> = comp.values.iter().map(|v| v.unwrap()).collect();
        assert!(vals.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn shrinking_and_stable_trends() {
        let shrinking: Vec<Measurements> = (0..5).map(|i| window(0.4 - i as f64 * 0.1)).collect();
        let evo = imbalance_evolution(&shrinking, DispersionKind::Euclidean, 0.02).unwrap();
        assert_eq!(
            evo.series_of(ActivityKind::Computation).unwrap().trend,
            Trend::Shrinking
        );

        let stable: Vec<Measurements> = (0..5).map(|_| window(0.2)).collect();
        let evo = imbalance_evolution(&stable, DispersionKind::Euclidean, 0.02).unwrap();
        assert_eq!(
            evo.series_of(ActivityKind::Computation).unwrap().trend,
            Trend::Stable
        );
    }

    #[test]
    fn activities_without_time_are_skipped() {
        let windows = vec![window(0.1)];
        let evo = imbalance_evolution(&windows, DispersionKind::Euclidean, 0.02).unwrap();
        assert!(evo.series_of(ActivityKind::PointToPoint).is_none());
        assert_eq!(evo.series.len(), 1);
    }

    #[test]
    fn empty_windows_rejected() {
        assert!(matches!(
            imbalance_evolution(&[], DispersionKind::Euclidean, 0.02),
            Err(AnalysisError::EmptyProgram)
        ));
    }

    #[test]
    fn windows_where_activity_pauses_yield_none() {
        // Window 1 has no computation at all.
        let mut b = MeasurementsBuilder::new(2);
        let r = b.add_region("r");
        b.record(r, ActivityKind::Collective, 0, 1.0).unwrap();
        b.record(r, ActivityKind::Collective, 1, 1.0).unwrap();
        let idle = b.build().unwrap();
        let windows = vec![window(0.1), idle, window(0.3)];
        let evo = imbalance_evolution(&windows, DispersionKind::Euclidean, 1e9).unwrap();
        let comp = evo.series_of(ActivityKind::Computation).unwrap();
        assert_eq!(comp.values[1], None);
        assert!(comp.values[0].is_some() && comp.values[2].is_some());
        // Huge tolerance → stable.
        assert_eq!(comp.trend, Trend::Stable);
    }

    #[test]
    fn slope_of_constant_series_is_zero() {
        assert_eq!(least_squares_slope(&[(0.0, 1.0), (1.0, 1.0)]), 0.0);
        assert_eq!(least_squares_slope(&[(0.0, 1.0)]), 0.0);
        assert!((least_squares_slope(&[(0.0, 0.0), (1.0, 2.0), (2.0, 4.0)]) - 2.0).abs() < 1e-12);
    }
}
