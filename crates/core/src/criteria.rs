//! Comparing severity criteria.
//!
//! The paper's future work plans "to define and test new criteria for the
//! identification and localization of performance inefficiencies". This
//! module quantifies how much two criteria *agree* on the same scores —
//! if a cheap criterion selects (nearly) the same candidates as an
//! expensive one, the tool can default to the cheap one.

use limba_stats::rank::RankingCriterion;

use crate::AnalysisError;

/// Agreement between two criteria on one score set.
#[derive(Debug, Clone, PartialEq)]
pub struct Agreement {
    /// Jaccard similarity of the two selections (`|A ∩ B| / |A ∪ B|`);
    /// `1.0` when both select exactly the same items, and by convention
    /// also when both select nothing.
    pub jaccard: f64,
    /// Whether the most severe item (if any) coincides.
    pub same_top: bool,
    /// Sizes of the two selections.
    pub sizes: (usize, usize),
}

/// Computes the agreement of two criteria on `scores`.
///
/// # Errors
///
/// Propagates selection errors (empty scores, invalid parameters).
pub fn criterion_agreement(
    scores: &[f64],
    a: RankingCriterion,
    b: RankingCriterion,
) -> Result<Agreement, AnalysisError> {
    let sa = a.select(scores)?;
    let sb = b.select(scores)?;
    let inter = sa.iter().filter(|i| sb.contains(i)).count();
    let union = sa.len() + sb.len() - inter;
    let jaccard = if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    };
    Ok(Agreement {
        jaccard,
        same_top: sa.first() == sb.first(),
        sizes: (sa.len(), sb.len()),
    })
}

/// Pairwise agreement of a set of criteria on one score set.
#[derive(Debug, Clone, PartialEq)]
pub struct CriteriaStudy {
    /// The labels of the compared criteria, in matrix order.
    pub labels: Vec<String>,
    /// `matrix[i][j]` = Jaccard agreement of criteria `i` and `j`.
    pub matrix: Vec<Vec<f64>>,
}

impl CriteriaStudy {
    /// The pair of distinct criteria with the lowest agreement, if any.
    pub fn most_divergent(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..self.matrix.len() {
            for j in i + 1..self.matrix.len() {
                let v = self.matrix[i][j];
                if best.map(|b| v < b.2).unwrap_or(true) {
                    best = Some((i, j, v));
                }
            }
        }
        best
    }
}

/// Runs the pairwise agreement study of `criteria` (given with display
/// labels) over `scores`.
///
/// # Errors
///
/// Propagates selection errors.
pub fn criteria_study(
    scores: &[f64],
    criteria: &[(String, RankingCriterion)],
) -> Result<CriteriaStudy, AnalysisError> {
    let n = criteria.len();
    let mut matrix = vec![vec![1.0; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let a = criterion_agreement(scores, criteria[i].1, criteria[j].1)?;
            matrix[i][j] = a.jaccard;
            matrix[j][i] = a.jaccard;
        }
    }
    Ok(CriteriaStudy {
        labels: criteria.iter().map(|(l, _)| l.clone()).collect(),
        matrix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCORES: [f64; 6] = [0.9, 0.1, 0.8, 0.2, 0.7, 0.05];

    #[test]
    fn identical_criteria_agree_fully() {
        let a = criterion_agreement(
            &SCORES,
            RankingCriterion::TopK(3),
            RankingCriterion::TopK(3),
        )
        .unwrap();
        assert_eq!(a.jaccard, 1.0);
        assert!(a.same_top);
        assert_eq!(a.sizes, (3, 3));
    }

    #[test]
    fn maximum_vs_topk_overlap() {
        let a = criterion_agreement(
            &SCORES,
            RankingCriterion::Maximum,
            RankingCriterion::TopK(3),
        )
        .unwrap();
        // Max selects {0}; top-3 {0, 2, 4}: Jaccard 1/3.
        assert!((a.jaccard - 1.0 / 3.0).abs() < 1e-12);
        assert!(a.same_top);
    }

    #[test]
    fn disjoint_selections_have_zero_jaccard() {
        let a = criterion_agreement(
            &SCORES,
            RankingCriterion::Maximum,
            RankingCriterion::Threshold(10.0), // selects nothing
        )
        .unwrap();
        assert_eq!(a.jaccard, 0.0);
        assert!(!a.same_top);
    }

    #[test]
    fn both_empty_counts_as_full_agreement() {
        let a = criterion_agreement(
            &SCORES,
            RankingCriterion::Threshold(5.0),
            RankingCriterion::Threshold(9.0),
        )
        .unwrap();
        assert_eq!(a.jaccard, 1.0);
        assert_eq!(a.sizes, (0, 0));
    }

    #[test]
    fn study_matrix_is_symmetric_with_unit_diagonal() {
        let criteria = vec![
            ("max".to_string(), RankingCriterion::Maximum),
            ("top3".to_string(), RankingCriterion::TopK(3)),
            ("p50".to_string(), RankingCriterion::Percentile(50.0)),
        ];
        let study = criteria_study(&SCORES, &criteria).unwrap();
        for i in 0..3 {
            assert_eq!(study.matrix[i][i], 1.0);
            for j in 0..3 {
                assert_eq!(study.matrix[i][j], study.matrix[j][i]);
            }
        }
        let (_, _, v) = study.most_divergent().unwrap();
        assert!(v <= 1.0);
    }

    #[test]
    fn empty_scores_propagate_errors() {
        assert!(
            criterion_agreement(&[], RankingCriterion::Maximum, RankingCriterion::Maximum).is_err()
        );
    }
}
