//! The end-to-end analysis pipeline.

use limba_model::{ActivityKind, CountMatrix, Measurements, ProgramProfile};
use limba_stats::dispersion::DispersionKind;
use limba_stats::rank::RankingCriterion;

use crate::cluster_regions::{cluster_regions, FeatureScaling, RegionClustering};
use crate::coarse::{coarse_analysis, CoarseAnalysis};
use crate::count_views::{count_view, CountView};
use crate::findings::{derive_findings, Findings};
use crate::patterns::{pattern_grid, PatternGrid};
use crate::views::{
    activity_view, processor_view, region_view, ActivityView, ProcessorView, RegionView,
};
use crate::AnalysisError;

/// The complete result of one analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Table-1-style profile (regions × activities breakdown).
    pub profile: ProgramProfile,
    /// Coarse-grain characterization.
    pub coarse: CoarseAnalysis,
    /// Region clustering (`None` when clustering was disabled or
    /// impossible, e.g. fewer regions than clusters).
    pub clustering: Option<RegionClustering>,
    /// The activity view (Tables 2 and 3).
    pub activity_view: ActivityView,
    /// The code-region view (Table 4).
    pub region_view: RegionView,
    /// The processor view.
    pub processor_view: ProcessorView,
    /// Pattern diagrams (Figures 1 and 2), one per performed activity.
    pub patterns: Vec<PatternGrid>,
    /// Counting-parameter dissimilarities, when counting data was given
    /// (see [`Analyzer::analyze_with_counts`]).
    pub counts: Option<CountView>,
    /// The derived findings.
    pub findings: Findings,
}

/// Configurable analysis pipeline implementing the paper's methodology.
///
/// Defaults follow the paper: Euclidean index of dispersion, maximum
/// ranking criterion, k-means with `k = 2`.
///
/// # Example
///
/// ```
/// use limba_analysis::Analyzer;
/// use limba_stats::dispersion::DispersionKind;
/// use limba_stats::rank::RankingCriterion;
///
/// let analyzer = Analyzer::new()
///     .with_dispersion(DispersionKind::Cv)
///     .with_criterion(RankingCriterion::TopK(3))
///     .with_cluster_k(2)
///     .with_seed(7);
/// # let _ = analyzer;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Analyzer {
    dispersion: DispersionKind,
    criterion: RankingCriterion,
    cluster_k: usize,
    scaling: FeatureScaling,
    seed: u64,
    jobs: usize,
}

impl Analyzer {
    /// Creates an analyzer with the paper's defaults.
    pub fn new() -> Self {
        Analyzer {
            dispersion: DispersionKind::Euclidean,
            criterion: RankingCriterion::Maximum,
            cluster_k: 2,
            scaling: FeatureScaling::default(),
            seed: 0,
            jobs: 1,
        }
    }

    /// Sets the index of dispersion.
    pub fn with_dispersion(mut self, kind: DispersionKind) -> Self {
        self.dispersion = kind;
        self
    }

    /// Sets the severity-ranking criterion for tuning candidates.
    pub fn with_criterion(mut self, criterion: RankingCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Sets the number of region clusters (`0` disables clustering).
    pub fn with_cluster_k(mut self, k: usize) -> Self {
        self.cluster_k = k;
        self
    }

    /// Sets the feature scaling used before clustering regions.
    pub fn with_feature_scaling(mut self, scaling: FeatureScaling) -> Self {
        self.scaling = scaling;
        self
    }

    /// Sets the clustering seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads used *inside* one analysis run:
    /// the independent report components (views, clustering, pattern
    /// grids) are computed concurrently. `1` (the default) runs strictly
    /// sequentially; `0` uses one job per available CPU.
    ///
    /// The produced [`Report`] is bit-identical for every job count —
    /// components are pure functions of the measurements, each lands in
    /// a fixed slot, and no reduction order depends on scheduling. The
    /// workspace test-suite locks this guarantee.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// The configured index of dispersion.
    pub fn dispersion(&self) -> DispersionKind {
        self.dispersion
    }

    /// The configured intra-report job count (see [`with_jobs`](Self::with_jobs)).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// A stable fingerprint of everything that influences analysis
    /// *results*: dispersion, criterion, cluster count, scaling, and
    /// seed. The job count is deliberately excluded — thread count never
    /// changes the report, so cached results remain valid across
    /// `--jobs` settings.
    pub fn config_fingerprint(&self) -> u64 {
        crate::snapshot::fnv1a(
            format!(
                "{:?}|{:?}|{}|{:?}|{}",
                self.dispersion, self.criterion, self.cluster_k, self.scaling, self.seed
            )
            .as_bytes(),
        )
    }

    /// Runs the full methodology on `measurements`.
    ///
    /// With [`with_jobs`](Self::with_jobs) above one, the independent
    /// report components are computed concurrently; the result is
    /// bit-identical to the sequential run because every component is a
    /// pure function of the measurements, results land in fixed slots,
    /// and errors are selected in the fixed sequential order rather than
    /// completion order.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::EmptyProgram`] for all-zero measurements
    /// and propagates statistical or clustering failures.
    pub fn analyze(&self, measurements: &Measurements) -> Result<Report, AnalysisError> {
        let parallel = limba_par::effective_jobs(self.jobs) > 1;
        let ((profile, coarse), clustering, views, pv) = limba_par::join4(
            parallel,
            || {
                let profile = ProgramProfile::from_measurements(measurements);
                let coarse = coarse_analysis(measurements, &profile);
                (profile, coarse)
            },
            || {
                if self.cluster_k >= 1 && self.cluster_k <= measurements.regions() {
                    cluster_regions(measurements, self.cluster_k, self.seed, self.scaling).map(Some)
                } else {
                    Ok(None)
                }
            },
            || {
                let av = activity_view(measurements, self.dispersion)?;
                let rv = region_view(measurements, &av)?;
                Ok::<_, AnalysisError>((av, rv))
            },
            || processor_view(measurements),
        );
        // Deterministic error selection: the same component wins no
        // matter which thread failed first.
        let coarse = coarse?;
        let clustering = clustering?;
        let (av, rv) = views?;
        let pv = pv?;
        let performed: Vec<ActivityKind> = measurements
            .activities()
            .iter()
            .filter(|&kind| {
                measurements
                    .region_ids()
                    .any(|r| measurements.performs(r, kind))
            })
            .collect();
        let patterns: Vec<PatternGrid> = limba_par::par_map(
            if parallel { self.jobs } else { 1 },
            &performed,
            |_, &kind| pattern_grid(measurements, kind),
        );
        let findings = derive_findings(measurements, &pv, &av, &rv, self.criterion)?;
        Ok(Report {
            profile,
            coarse,
            clustering,
            activity_view: av,
            region_view: rv,
            processor_view: pv,
            patterns,
            counts: None,
            findings,
        })
    }

    /// Runs the full methodology plus the counting-parameter analysis
    /// (message counts, byte volumes, …) over the matching
    /// [`CountMatrix`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`analyze`](Self::analyze).
    pub fn analyze_with_counts(
        &self,
        measurements: &Measurements,
        counts: &CountMatrix,
    ) -> Result<Report, AnalysisError> {
        let mut report = self.analyze(measurements)?;
        report.counts = Some(count_view(counts, self.dispersion)?);
        Ok(report)
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Report {
    /// Convenience: the pattern grid of one activity, if any region
    /// performs it.
    pub fn pattern_for(&self, kind: ActivityKind) -> Option<&PatternGrid> {
        self.patterns.iter().find(|g| g.activity == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::MeasurementsBuilder;

    fn sample() -> Measurements {
        let mut b = MeasurementsBuilder::new(4);
        let heavy = b.add_region("heavy");
        let light = b.add_region("light");
        for p in 0..4 {
            b.record(heavy, ActivityKind::Computation, p, 4.0 + p as f64)
                .unwrap();
            b.record(heavy, ActivityKind::Collective, p, 1.0).unwrap();
            b.record(light, ActivityKind::PointToPoint, p, 0.5).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn full_pipeline_produces_consistent_report() {
        let report = Analyzer::new().analyze(&sample()).unwrap();
        assert_eq!(report.coarse.heaviest_region_name, "heavy");
        assert_eq!(report.coarse.dominant_activity, ActivityKind::Computation);
        assert_eq!(report.profile.regions.len(), 2);
        let c = report.clustering.as_ref().unwrap();
        assert_eq!(c.k, 2);
        assert!(!c.same_group(limba_model::RegionId::new(0), limba_model::RegionId::new(1)));
        // Three performed activities → three pattern grids.
        assert_eq!(report.patterns.len(), 3);
        assert!(report.pattern_for(ActivityKind::Computation).is_some());
        assert!(report.pattern_for(ActivityKind::Synchronization).is_none());
        assert_eq!(report.findings.tuning_candidates.len(), 1);
    }

    #[test]
    fn cluster_k_zero_disables_clustering() {
        let report = Analyzer::new()
            .with_cluster_k(0)
            .analyze(&sample())
            .unwrap();
        assert!(report.clustering.is_none());
    }

    #[test]
    fn oversized_cluster_k_disables_clustering() {
        let report = Analyzer::new()
            .with_cluster_k(99)
            .analyze(&sample())
            .unwrap();
        assert!(report.clustering.is_none());
    }

    #[test]
    fn alternative_dispersion_changes_values_not_structure() {
        let a = Analyzer::new().analyze(&sample()).unwrap();
        let b = Analyzer::new()
            .with_dispersion(DispersionKind::Gini)
            .analyze(&sample())
            .unwrap();
        assert_eq!(a.region_view.summaries.len(), b.region_view.summaries.len());
        assert_ne!(a.region_view.summaries[0].id, b.region_view.summaries[0].id);
    }

    #[test]
    fn empty_program_rejected() {
        let mut b = MeasurementsBuilder::new(1);
        b.add_region("r");
        let m = b.build().unwrap();
        assert!(matches!(
            Analyzer::new().analyze(&m),
            Err(AnalysisError::EmptyProgram)
        ));
    }

    #[test]
    fn default_is_new() {
        assert_eq!(Analyzer::default(), Analyzer::new());
    }

    #[test]
    fn analyze_with_counts_populates_the_count_view() {
        use limba_model::{CountKind, CountMatrixBuilder, RegionId};
        let m = sample();
        let mut cb = CountMatrixBuilder::new(4);
        cb.record(RegionId::new(1), CountKind::BytesSent, 0, 1024.0)
            .unwrap();
        let counts = cb.build();
        let plain = Analyzer::new().analyze(&m).unwrap();
        assert!(plain.counts.is_none());
        let with = Analyzer::new().analyze_with_counts(&m, &counts).unwrap();
        let view = with.counts.as_ref().unwrap();
        assert_eq!(view.cells.len(), 1);
        assert_eq!(view.cells[0].kind, CountKind::BytesSent);
    }
}
