//! Batch analysis: fan a fleet of measurement matrices across a thread
//! pool, with per-item error isolation and a shared memoization cache.
//!
//! The paper's methodology is embarrassingly parallel across runs: each
//! trace's `t_ijp` matrix is analyzed independently, so a suite sweep or
//! a simulator seed-sweep is a textbook batch. [`BatchAnalyzer`] owns
//! that shape:
//!
//! * **bounded work-stealing** — items are distributed over up to
//!   `jobs` workers via an atomic claim counter ([`limba_par::par_map`]);
//!   results land in input-order slots, so the output `Vec` is
//!   bit-identical for every thread count;
//! * **error isolation** — one degenerate matrix yields an `Err` entry
//!   in its slot and never aborts the rest of the batch;
//! * **memoization** — results are cached under
//!   `(measurements digest, analyzer fingerprint)`, so re-analyzing an
//!   unchanged trace (e.g. repeated suite runs) is a lookup. The cache
//!   can be shared across batches and across threads.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use limba_model::Measurements;

use crate::snapshot::fnv1a;
use crate::{AnalysisError, Analyzer, Report};

/// A content digest of a measurement matrix: region names, activity
/// set, processor count, and every cell's exact bit pattern.
///
/// Two matrices digest equal iff they would analyze identically (modulo
/// 64-bit collisions, acceptable for a cache key).
pub fn measurements_digest(measurements: &Measurements) -> u64 {
    let mut bytes: Vec<u8> = Vec::new();
    bytes.extend_from_slice(&(measurements.regions() as u64).to_le_bytes());
    bytes.extend_from_slice(&(measurements.processors() as u64).to_le_bytes());
    for kind in measurements.activities().iter() {
        bytes.extend_from_slice(&(kind.index() as u64).to_le_bytes());
    }
    for region in measurements.region_ids() {
        let name = measurements.region_info(region).name();
        bytes.extend_from_slice(&(name.len() as u64).to_le_bytes());
        bytes.extend_from_slice(name.as_bytes());
        for kind in measurements.activities().iter() {
            for proc in measurements.processor_ids() {
                bytes.extend_from_slice(
                    &measurements
                        .time(region, kind, proc)
                        .to_bits()
                        .to_le_bytes(),
                );
            }
        }
    }
    fnv1a(&bytes)
}

/// A cache key: `(measurements digest, analyzer fingerprint)`.
type CacheKey = (u64, u64);

/// The shared memoization cache: [`CacheKey`] → report. Cheap to clone
/// (it is an [`Arc`]).
#[derive(Debug, Clone, Default)]
pub struct ReportCache {
    entries: Arc<Mutex<HashMap<CacheKey, Arc<Report>>>>,
}

impl ReportCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ReportCache::default()
    }

    /// Number of memoized reports.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, key: (u64, u64)) -> Option<Arc<Report>> {
        self.entries.lock().expect("cache lock").get(&key).cloned()
    }

    fn insert(&self, key: (u64, u64), report: Arc<Report>) {
        self.entries.lock().expect("cache lock").insert(key, report);
    }
}

/// Analyzes batches of measurement matrices in parallel.
///
/// # Example
///
/// ```
/// use limba_analysis::batch::BatchAnalyzer;
/// use limba_analysis::Analyzer;
/// use limba_model::{ActivityKind, MeasurementsBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut items = Vec::new();
/// for run in 0..4u32 {
///     let mut b = MeasurementsBuilder::new(2);
///     let r = b.add_region("solver");
///     for p in 0..2 {
///         b.record(r, ActivityKind::Computation, p, 1.0 + run as f64 + p as f64)?;
///     }
///     items.push(b.build()?);
/// }
/// let batch = BatchAnalyzer::new(Analyzer::new().with_cluster_k(1)).with_jobs(2);
/// let reports = batch.analyze_batch(&items);
/// assert_eq!(reports.len(), 4);
/// assert!(reports.iter().all(|r| r.is_ok()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchAnalyzer {
    analyzer: Analyzer,
    jobs: usize,
    cache: Option<ReportCache>,
    cancel: Option<limba_par::CancelToken>,
}

impl BatchAnalyzer {
    /// Creates a batch analyzer running `analyzer` on every item,
    /// sequentially until [`with_jobs`](Self::with_jobs) raises the
    /// worker count.
    pub fn new(analyzer: Analyzer) -> Self {
        BatchAnalyzer {
            analyzer,
            jobs: 1,
            cache: None,
            cancel: None,
        }
    }

    /// Sets the number of batch worker threads. `0` uses one job per
    /// available CPU. Output is bit-identical for every setting.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Attaches a memoization cache. Reports for already-seen
    /// `(measurements, config)` pairs are cloned from the cache instead
    /// of recomputed; the cache may be shared between batch analyzers.
    pub fn with_cache(mut self, cache: ReportCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a cooperative cancellation token. When the token trips,
    /// items not yet started come back as
    /// [`AnalysisError::Interrupted`]; items already analyzed keep their
    /// normal results, which stay bit-identical to an uncancelled run —
    /// cancellation changes *which* items ran, never *what* an item
    /// produced.
    pub fn with_cancel(mut self, cancel: limba_par::CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The configured per-item analyzer.
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Analyzes every item, in input order, isolating failures to their
    /// own slot: a degenerate matrix yields `Err` at its index while all
    /// other items still produce reports.
    pub fn analyze_batch(&self, items: &[Measurements]) -> Vec<Result<Report, AnalysisError>> {
        let fingerprint = self.analyzer.config_fingerprint();
        let analyze_one = |measurements: &Measurements| {
            let key = self
                .cache
                .as_ref()
                .map(|_| (measurements_digest(measurements), fingerprint));
            if let (Some(cache), Some(key)) = (self.cache.as_ref(), key) {
                if let Some(hit) = cache.get(key) {
                    return Ok(Report::clone(&hit));
                }
            }
            let report = self.analyzer.analyze(measurements)?;
            if let (Some(cache), Some(key)) = (self.cache.as_ref(), key) {
                cache.insert(key, Arc::new(report.clone()));
            }
            Ok(report)
        };
        match &self.cancel {
            None => limba_par::par_map(self.jobs, items, |_, m| analyze_one(m)),
            Some(cancel) => {
                limba_par::par_map_cancellable(self.jobs, items, cancel, |_, m| analyze_one(m))
                    .into_iter()
                    .map(|slot| slot.unwrap_or(Err(AnalysisError::Interrupted)))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::{ActivityKind, MeasurementsBuilder};

    fn sample(scale: f64) -> Measurements {
        let mut b = MeasurementsBuilder::new(4);
        let heavy = b.add_region("heavy");
        let light = b.add_region("light");
        for p in 0..4 {
            b.record(
                heavy,
                ActivityKind::Computation,
                p,
                scale * (4.0 + p as f64),
            )
            .unwrap();
            b.record(light, ActivityKind::PointToPoint, p, scale * 0.5)
                .unwrap();
        }
        b.build().unwrap()
    }

    fn empty() -> Measurements {
        let mut b = MeasurementsBuilder::new(2);
        b.add_region("silent");
        b.build().unwrap()
    }

    #[test]
    fn batch_matches_individual_analysis() {
        let items = vec![sample(1.0), sample(2.0), sample(3.0)];
        let batch = BatchAnalyzer::new(Analyzer::new()).with_jobs(2);
        let reports = batch.analyze_batch(&items);
        for (item, report) in items.iter().zip(&reports) {
            let solo = Analyzer::new().analyze(item).unwrap();
            assert_eq!(report.as_ref().unwrap(), &solo);
        }
    }

    #[test]
    fn one_bad_item_does_not_poison_the_batch() {
        let items = vec![sample(1.0), empty(), sample(2.0)];
        let reports = BatchAnalyzer::new(Analyzer::new())
            .with_jobs(3)
            .analyze_batch(&items);
        assert!(reports[0].is_ok());
        assert!(matches!(reports[1], Err(AnalysisError::EmptyProgram)));
        assert!(reports[2].is_ok());
    }

    #[test]
    fn cache_hits_skip_recomputation_and_preserve_results() {
        let cache = ReportCache::new();
        let items = vec![sample(1.0), sample(1.0), sample(2.0)];
        let batch = BatchAnalyzer::new(Analyzer::new())
            .with_jobs(1)
            .with_cache(cache.clone());
        let first = batch.analyze_batch(&items);
        // Two distinct matrices → two cache entries, not three.
        assert_eq!(cache.len(), 2);
        let second = batch.analyze_batch(&items);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn cache_distinguishes_analyzer_configs() {
        use limba_stats::dispersion::DispersionKind;
        let cache = ReportCache::new();
        let items = vec![sample(1.0)];
        BatchAnalyzer::new(Analyzer::new())
            .with_cache(cache.clone())
            .analyze_batch(&items);
        BatchAnalyzer::new(Analyzer::new().with_dispersion(DispersionKind::Gini))
            .with_cache(cache.clone())
            .analyze_batch(&items);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cancelled_batch_marks_unstarted_items_interrupted() {
        let items = vec![sample(1.0), sample(2.0), sample(3.0), sample(4.0)];
        let token = limba_par::CancelToken::new();
        token.cancel();
        let reports = BatchAnalyzer::new(Analyzer::new())
            .with_jobs(1)
            .with_cancel(token)
            .analyze_batch(&items);
        assert_eq!(reports.len(), items.len());
        assert!(reports
            .iter()
            .all(|r| matches!(r, Err(AnalysisError::Interrupted))));

        // An untripped token changes nothing.
        let reports = BatchAnalyzer::new(Analyzer::new())
            .with_jobs(2)
            .with_cancel(limba_par::CancelToken::new())
            .analyze_batch(&items);
        let plain = BatchAnalyzer::new(Analyzer::new())
            .with_jobs(2)
            .analyze_batch(&items);
        for (a, b) in reports.iter().zip(&plain) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn digest_is_content_sensitive() {
        assert_eq!(
            measurements_digest(&sample(1.0)),
            measurements_digest(&sample(1.0))
        );
        assert_ne!(
            measurements_digest(&sample(1.0)),
            measurements_digest(&sample(2.0))
        );
    }
}
