//! Dissimilarity analysis of counting parameters.
//!
//! The paper's model covers "counting parameters, such as, number of I/O
//! operations, number of bytes read/written, number of memory accesses,
//! number of cache misses" alongside the timings it focuses on. Counts
//! share the `region × processor` structure, so the same standardization
//! and indices of dispersion apply: an uneven distribution of bytes sent
//! across processors is communication-volume imbalance even before it
//! shows up as time.

use limba_model::{CountKind, CountMatrix, RegionId};
use limba_stats::dispersion::{DispersionIndex, DispersionKind};

use crate::AnalysisError;

/// Dispersion of one recorded `(region, count kind)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CountCell {
    /// The region.
    pub region: RegionId,
    /// The counted quantity.
    pub kind: CountKind,
    /// Total count over all processors.
    pub total: f64,
    /// Index of dispersion of the per-processor counts.
    pub id: f64,
}

/// Per-kind summary across regions.
#[derive(Debug, Clone, PartialEq)]
pub struct CountSummary {
    /// The counted quantity.
    pub kind: CountKind,
    /// Program-wide total of the quantity.
    pub total: f64,
    /// Weighted average of the per-region dispersions, weighted by each
    /// region's share of the kind's total (the counting analogue of
    /// `ID_A`).
    pub id: f64,
}

/// The complete counting-parameter view.
#[derive(Debug, Clone, PartialEq)]
pub struct CountView {
    /// One entry per recorded cell with a positive total.
    pub cells: Vec<CountCell>,
    /// One summary per kind that was recorded.
    pub summaries: Vec<CountSummary>,
}

impl CountView {
    /// The most unevenly distributed cell, if any.
    pub fn most_imbalanced_cell(&self) -> Option<&CountCell> {
        self.cells.iter().max_by(|a, b| a.id.total_cmp(&b.id))
    }

    /// Summary of one kind, if recorded.
    pub fn summary_of(&self, kind: CountKind) -> Option<&CountSummary> {
        self.summaries.iter().find(|s| s.kind == kind)
    }
}

/// Computes dispersion indices over all recorded counting cells.
///
/// Cells whose total is zero carry no distribution and are skipped.
///
/// # Errors
///
/// Propagates statistical errors (which indicate invalid counts).
pub fn count_view(
    counts: &CountMatrix,
    dispersion: DispersionKind,
) -> Result<CountView, AnalysisError> {
    let mut cells = Vec::new();
    for (region, kind, slice) in counts.cells() {
        let total: f64 = slice.iter().sum();
        if total <= 0.0 {
            continue;
        }
        cells.push(CountCell {
            region,
            kind,
            total,
            id: dispersion.index(slice)?,
        });
    }
    let mut summaries: Vec<CountSummary> = Vec::new();
    for cell in &cells {
        match summaries.iter_mut().find(|s| s.kind == cell.kind) {
            Some(s) => {
                s.total += cell.total;
                s.id += cell.total * cell.id; // normalized below
            }
            None => summaries.push(CountSummary {
                kind: cell.kind,
                total: cell.total,
                id: cell.total * cell.id,
            }),
        }
    }
    for s in &mut summaries {
        s.id /= s.total;
    }
    Ok(CountView { cells, summaries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::CountMatrixBuilder;

    fn sample() -> CountMatrix {
        let mut b = CountMatrixBuilder::new(4);
        let r0 = RegionId::new(0);
        let r1 = RegionId::new(1);
        // Balanced messages in region 0.
        for p in 0..4 {
            b.record(r0, CountKind::MessagesSent, p, 10.0).unwrap();
        }
        // All bytes from one processor in region 1.
        b.record(r1, CountKind::BytesSent, 2, 4096.0).unwrap();
        b.build()
    }

    #[test]
    fn balanced_counts_have_zero_dispersion() {
        let v = count_view(&sample(), DispersionKind::Euclidean).unwrap();
        let msg = v
            .cells
            .iter()
            .find(|c| c.kind == CountKind::MessagesSent)
            .unwrap();
        assert!(msg.id.abs() < 1e-12);
        assert_eq!(msg.total, 40.0);
    }

    #[test]
    fn concentrated_counts_are_flagged() {
        let v = count_view(&sample(), DispersionKind::Euclidean).unwrap();
        let worst = v.most_imbalanced_cell().unwrap();
        assert_eq!(worst.kind, CountKind::BytesSent);
        // One of four holds everything: sqrt(1 − 1/4).
        assert!((worst.id - 0.75f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summaries_aggregate_per_kind() {
        let mut b = CountMatrixBuilder::new(2);
        // Two regions of the same kind with different spreads and weights.
        b.record(RegionId::new(0), CountKind::IoOperations, 0, 3.0)
            .unwrap();
        b.record(RegionId::new(0), CountKind::IoOperations, 1, 3.0)
            .unwrap(); // balanced, total 6
        b.record(RegionId::new(1), CountKind::IoOperations, 0, 2.0)
            .unwrap(); // concentrated, total 2
        let v = count_view(&b.build(), DispersionKind::Euclidean).unwrap();
        let s = v.summary_of(CountKind::IoOperations).unwrap();
        assert_eq!(s.total, 8.0);
        // Weighted: (6·0 + 2·sqrt(1/2)) / 8.
        assert!((s.id - 2.0 * 0.5f64.sqrt() / 8.0).abs() < 1e-12);
        assert!(v.summary_of(CountKind::CacheMisses).is_none());
    }

    #[test]
    fn empty_matrix_yields_empty_view() {
        let v = count_view(
            &CountMatrixBuilder::new(2).build(),
            DispersionKind::Euclidean,
        )
        .unwrap();
        assert!(v.cells.is_empty());
        assert!(v.summaries.is_empty());
        assert!(v.most_imbalanced_cell().is_none());
    }
}
