//! Error type for the analysis pipeline.

use std::error::Error;
use std::fmt;

use limba_cluster::ClusterError;
use limba_stats::StatsError;

/// Error raised by the analysis methodology.
#[derive(Debug)]
pub enum AnalysisError {
    /// The measurements contain no time at all (total wall clock zero).
    EmptyProgram,
    /// A statistical computation failed.
    Stats(StatsError),
    /// Region clustering failed.
    Cluster(ClusterError),
    /// A cancellation token tripped before this item was analyzed (see
    /// [`BatchAnalyzer::with_cancel`](crate::batch::BatchAnalyzer::with_cancel)).
    /// The item itself is fine; re-analyzing it without the token
    /// produces the normal report.
    Interrupted,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::EmptyProgram => {
                write!(f, "measurements contain no wall clock time to analyze")
            }
            AnalysisError::Stats(e) => write!(f, "statistical computation failed: {e}"),
            AnalysisError::Cluster(e) => write!(f, "region clustering failed: {e}"),
            AnalysisError::Interrupted => {
                write!(f, "analysis cancelled before this item started")
            }
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Stats(e) => Some(e),
            AnalysisError::Cluster(e) => Some(e),
            AnalysisError::EmptyProgram | AnalysisError::Interrupted => None,
        }
    }
}

impl From<StatsError> for AnalysisError {
    fn from(e: StatsError) -> Self {
        AnalysisError::Stats(e)
    }
}

impl From<ClusterError> for AnalysisError {
    fn from(e: ClusterError) -> Self {
        AnalysisError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(AnalysisError::EmptyProgram
            .to_string()
            .contains("no wall clock"));
        let e = AnalysisError::from(StatsError::EmptyData);
        assert!(e.source().is_some());
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisError>();
    }
}
