//! Run-to-run comparison: verification and validation of tuning.
//!
//! The paper frames tuning as "an iterative process consisting of several
//! steps, dealing with the identification and localization of
//! inefficiencies, their repair and the verification and validation of
//! the achieved performance". The views cover identification and
//! localization; this module covers the last step: given measurements of
//! a run *before* and *after* a repair, quantify what actually improved
//! — per region, per activity, and overall — and whether the imbalance
//! indices moved the right way.

use limba_model::{ActivityKind, Measurements, RegionId};
use limba_stats::dispersion::{DispersionIndex, DispersionKind};

use crate::AnalysisError;

/// Verdict on one region's change between two runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Both the wall-clock time and the dispersion improved (or one
    /// improved with the other unchanged).
    Improved,
    /// Time or dispersion got significantly worse.
    Regressed,
    /// No significant change either way.
    Unchanged,
    /// Faster but more imbalanced, or slower but better balanced.
    Mixed,
}

/// Comparison of one region across two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionDelta {
    /// The region (index in the *before* run; shapes must match).
    pub region: RegionId,
    /// Region display name.
    pub name: String,
    /// `t_i` before, seconds.
    pub before_seconds: f64,
    /// `t_i` after, seconds.
    pub after_seconds: f64,
    /// `before / after` (`> 1` means faster).
    pub speedup: f64,
    /// Weighted dispersion `ID_C` before.
    pub before_id: f64,
    /// Weighted dispersion `ID_C` after.
    pub after_id: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// Comparison of two runs of the same program.
#[derive(Debug, Clone, PartialEq)]
pub struct RunComparison {
    /// Whole-program speedup `T_before / T_after`.
    pub total_speedup: f64,
    /// One delta per region, in region order.
    pub regions: Vec<RegionDelta>,
    /// `(activity, ID_A before, ID_A after)` for every activity performed
    /// in either run.
    pub activity_ids: Vec<(ActivityKind, f64, f64)>,
}

impl RunComparison {
    /// Regions whose verdict is [`Verdict::Regressed`].
    pub fn regressions(&self) -> Vec<&RegionDelta> {
        self.regions
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
            .collect()
    }

    /// The region with the largest speedup.
    pub fn best_improvement(&self) -> Option<&RegionDelta> {
        self.regions
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
    }
}

fn region_weighted_id(
    m: &Measurements,
    r: RegionId,
    dispersion: DispersionKind,
) -> Result<f64, AnalysisError> {
    let t_i = m.region_time(r);
    if t_i <= 0.0 {
        return Ok(0.0);
    }
    let mut weighted = 0.0;
    for kind in m.activities().iter() {
        if m.performs(r, kind) {
            let slice = m.processor_slice(r, kind).expect("performed");
            weighted += m.region_activity_time(r, kind) / t_i * dispersion.index(slice)?;
        }
    }
    Ok(weighted)
}

fn activity_weighted_id(
    m: &Measurements,
    kind: ActivityKind,
    dispersion: DispersionKind,
) -> Result<f64, AnalysisError> {
    let t_j = m.activity_time(kind);
    if t_j <= 0.0 {
        return Ok(0.0);
    }
    let mut weighted = 0.0;
    for r in m.region_ids() {
        if m.performs(r, kind) {
            let slice = m.processor_slice(r, kind).expect("performed");
            weighted += m.region_activity_time(r, kind) / t_j * dispersion.index(slice)?;
        }
    }
    Ok(weighted)
}

/// Compares two runs of the same program (same regions, activities, and
/// processor count). `tolerance` is the relative change below which a
/// quantity counts as unchanged (`0.02` = 2 %).
///
/// # Errors
///
/// Returns [`AnalysisError::EmptyProgram`] when the runs have different
/// shapes or the *before* run has no time, and propagates statistical
/// errors.
pub fn compare_runs(
    before: &Measurements,
    after: &Measurements,
    dispersion: DispersionKind,
    tolerance: f64,
) -> Result<RunComparison, AnalysisError> {
    if !before.same_shape(after) || before.total_time() <= 0.0 {
        return Err(AnalysisError::EmptyProgram);
    }
    let total_after = after.total_time();
    let total_speedup = if total_after > 0.0 {
        before.total_time() / total_after
    } else {
        f64::INFINITY
    };
    let significant = |a: f64, b: f64| (a - b).abs() > tolerance * a.abs().max(b.abs()).max(1e-30);
    let mut regions = Vec::new();
    for r in before.region_ids() {
        let b_t = before.region_time(r);
        let a_t = after.region_time(r);
        let b_id = region_weighted_id(before, r, dispersion)?;
        let a_id = region_weighted_id(after, r, dispersion)?;
        let time_better = significant(b_t, a_t) && a_t < b_t;
        let time_worse = significant(b_t, a_t) && a_t > b_t;
        let id_better = significant(b_id, a_id) && a_id < b_id;
        let id_worse = significant(b_id, a_id) && a_id > b_id;
        let verdict = match (time_better, time_worse, id_better, id_worse) {
            (false, false, false, false) => Verdict::Unchanged,
            (_, false, _, false) => Verdict::Improved,
            (false, _, false, _) => Verdict::Regressed,
            _ => Verdict::Mixed,
        };
        regions.push(RegionDelta {
            region: r,
            name: before.region_info(r).name().to_string(),
            before_seconds: b_t,
            after_seconds: a_t,
            speedup: if a_t > 0.0 { b_t / a_t } else { f64::INFINITY },
            before_id: b_id,
            after_id: a_id,
            verdict,
        });
    }
    let mut activity_ids = Vec::new();
    for kind in before.activities().iter() {
        let b = activity_weighted_id(before, kind, dispersion)?;
        let a = activity_weighted_id(after, kind, dispersion)?;
        if b > 0.0 || a > 0.0 || before.activity_time(kind) > 0.0 || after.activity_time(kind) > 0.0
        {
            activity_ids.push((kind, b, a));
        }
    }
    Ok(RunComparison {
        total_speedup,
        regions,
        activity_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limba_model::MeasurementsBuilder;

    fn run(skew: f64, slow: f64) -> Measurements {
        let mut b = MeasurementsBuilder::new(4);
        let core = b.add_region("core");
        let halo = b.add_region("halo");
        for p in 0..4 {
            let w = 1.0 + if p == 3 { skew } else { 0.0 };
            b.record(core, ActivityKind::Computation, p, slow * w)
                .unwrap();
            b.record(halo, ActivityKind::PointToPoint, p, 0.5).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn repair_is_recognized_as_improvement() {
        let before = run(2.0, 1.0); // skewed
        let after = run(0.0, 1.0); // rebalanced: same total work? t drops on p3
        let cmp = compare_runs(&before, &after, DispersionKind::Euclidean, 0.02).unwrap();
        assert!(cmp.total_speedup > 1.0);
        let core = &cmp.regions[0];
        assert_eq!(core.verdict, Verdict::Improved);
        assert!(core.after_id < core.before_id);
        assert_eq!(cmp.best_improvement().unwrap().name, "core");
        assert!(cmp.regressions().is_empty());
        // Balanced halo unchanged.
        assert_eq!(cmp.regions[1].verdict, Verdict::Unchanged);
    }

    #[test]
    fn regression_is_flagged() {
        let before = run(0.0, 1.0);
        let after = run(2.0, 1.2);
        let cmp = compare_runs(&before, &after, DispersionKind::Euclidean, 0.02).unwrap();
        assert!(cmp.total_speedup < 1.0);
        assert_eq!(cmp.regions[0].verdict, Verdict::Regressed);
        assert_eq!(cmp.regressions().len(), 1);
    }

    #[test]
    fn mixed_changes_are_labelled_mixed() {
        // Faster overall but more imbalanced.
        let before = run(0.0, 2.0);
        let after = run(2.0, 0.8);
        let cmp = compare_runs(&before, &after, DispersionKind::Euclidean, 0.02).unwrap();
        assert_eq!(cmp.regions[0].verdict, Verdict::Mixed);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let before = run(0.0, 1.0);
        let mut b = MeasurementsBuilder::new(4);
        b.add_region("different");
        b.record(RegionId::new(0), ActivityKind::Computation, 0, 1.0)
            .unwrap();
        let other = b.build().unwrap();
        assert!(compare_runs(&before, &other, DispersionKind::Euclidean, 0.02).is_err());
    }

    #[test]
    fn activity_ids_track_both_runs() {
        let before = run(2.0, 1.0);
        let after = run(0.0, 1.0);
        let cmp = compare_runs(&before, &after, DispersionKind::Euclidean, 0.02).unwrap();
        let comp = cmp
            .activity_ids
            .iter()
            .find(|(k, _, _)| *k == ActivityKind::Computation)
            .unwrap();
        assert!(comp.1 > comp.2, "dispersion should drop: {comp:?}");
    }
}
