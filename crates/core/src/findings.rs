//! Findings: the answers the methodology hands to the user.
//!
//! "tools should do what expert programmers do when tuning their
//! programs, that is, detect the presence of inefficiencies, localize
//! them and assess their severity."

use limba_model::{ActivityKind, Measurements, ProcessorId, RegionId};
use limba_stats::rank::RankingCriterion;

use crate::views::{ActivityView, ProcessorView, RegionView};
use crate::AnalysisError;

/// Processor-level findings.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorFindings {
    /// The processor that is the most imbalanced on the largest number of
    /// regions, with that count.
    pub most_frequently_imbalanced: Option<(ProcessorId, usize)>,
    /// The processor whose "most imbalanced" regions account for the most
    /// wall-clock time, with that time.
    pub longest_imbalanced: Option<(ProcessorId, f64)>,
    /// Regions on which each processor is the most imbalanced.
    pub regions_per_processor: Vec<Vec<RegionId>>,
}

/// A region recommended for tuning, with the evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningCandidate {
    /// The region.
    pub region: RegionId,
    /// Region display name.
    pub name: String,
    /// `ID_C_i`.
    pub id: f64,
    /// `SID_C_i` — the ranking key.
    pub sid: f64,
    /// `t_i / T`.
    pub fraction_of_program: f64,
    /// Whether this region is also the heaviest of the program (the
    /// paper's "core" argument for loop 1).
    pub is_heaviest: bool,
}

/// All findings of one analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Findings {
    /// Processor-level findings.
    pub processors: ProcessorFindings,
    /// The most imbalanced activity by raw `ID_A_j`, with the value.
    pub most_imbalanced_activity: Option<(ActivityKind, f64)>,
    /// The most imbalanced activity by scaled `SID_A_j`, with the value.
    pub most_imbalanced_activity_scaled: Option<(ActivityKind, f64)>,
    /// The most imbalanced region by raw `ID_C_i`, with the value.
    pub most_imbalanced_region: Option<(RegionId, f64)>,
    /// Tuning candidates selected by the ranking criterion over `SID_C`,
    /// most severe first.
    pub tuning_candidates: Vec<TuningCandidate>,
}

/// Derives the findings from the three computed views.
///
/// `criterion` selects the tuning candidates from the scaled region
/// indices `SID_C_i`.
///
/// # Errors
///
/// Propagates ranking errors (an empty region view).
pub fn derive_findings(
    measurements: &Measurements,
    processor_view: &ProcessorView,
    activity_view: &ActivityView,
    region_view: &RegionView,
    criterion: RankingCriterion,
) -> Result<Findings, AnalysisError> {
    let p = measurements.processors();
    let counts = processor_view.imbalance_counts(p);
    let durations = processor_view.imbalance_durations(p);
    let mut regions_per_processor = vec![Vec::new(); p];
    for (r, entry) in processor_view.most_imbalanced_per_region.iter().enumerate() {
        if let Some((proc, _, _)) = entry {
            regions_per_processor[proc.index()].push(RegionId::new(r));
        }
    }
    let most_frequently_imbalanced = counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (ProcessorId::new(i), c));
    let longest_imbalanced = durations
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .filter(|&(_, &d)| d > 0.0)
        .map(|(i, &d)| (ProcessorId::new(i), d));

    let heaviest_region = measurements.region_ids().max_by(|&a, &b| {
        measurements
            .region_time(a)
            .total_cmp(&measurements.region_time(b))
    });

    let sids: Vec<f64> = region_view.summaries.iter().map(|s| s.sid).collect();
    let selected = if sids.is_empty() {
        Vec::new()
    } else {
        criterion.select(&sids)?
    };
    let tuning_candidates = selected
        .into_iter()
        .map(|i| {
            let s = &region_view.summaries[i];
            TuningCandidate {
                region: s.region,
                name: s.name.clone(),
                id: s.id,
                sid: s.sid,
                fraction_of_program: s.fraction_of_program,
                is_heaviest: Some(s.region) == heaviest_region,
            }
        })
        .collect();

    Ok(Findings {
        processors: ProcessorFindings {
            most_frequently_imbalanced,
            longest_imbalanced,
            regions_per_processor,
        },
        most_imbalanced_activity: activity_view.most_imbalanced().map(|s| (s.kind, s.id)),
        most_imbalanced_activity_scaled: activity_view
            .most_imbalanced_scaled()
            .map(|s| (s.kind, s.sid)),
        most_imbalanced_region: region_view.most_imbalanced().map(|s| (s.region, s.id)),
        tuning_candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::{activity_view, processor_view, region_view};
    use limba_model::MeasurementsBuilder;
    use limba_stats::dispersion::DispersionKind;

    /// Region 0 (heavy): processor 0 has an outlier mix. Region 1
    /// (light): heavy computation imbalance.
    fn sample() -> Measurements {
        let mut b = MeasurementsBuilder::new(3);
        let r0 = b.add_region("heavy");
        let r1 = b.add_region("light");
        b.record(r0, ActivityKind::Computation, 0, 8.0).unwrap();
        b.record(r0, ActivityKind::PointToPoint, 0, 2.0).unwrap();
        for p in 1..3 {
            b.record(r0, ActivityKind::Computation, p, 5.0).unwrap();
            b.record(r0, ActivityKind::PointToPoint, p, 5.0).unwrap();
        }
        b.record(r1, ActivityKind::Computation, 0, 0.1).unwrap();
        b.record(r1, ActivityKind::Computation, 1, 0.1).unwrap();
        b.record(r1, ActivityKind::Computation, 2, 0.8).unwrap();
        b.build().unwrap()
    }

    fn findings_of(m: &Measurements, criterion: RankingCriterion) -> Findings {
        let av = activity_view(m, DispersionKind::Euclidean).unwrap();
        let rv = region_view(m, &av).unwrap();
        let pv = processor_view(m).unwrap();
        derive_findings(m, &pv, &av, &rv, criterion).unwrap()
    }

    #[test]
    fn processor_findings_identify_outlier() {
        let f = findings_of(&sample(), RankingCriterion::Maximum);
        // Processor 0 is the mix outlier on region 0; region 1 is all
        // computation so every mix is identical there (tie → proc 0).
        let (proc, count) = f.processors.most_frequently_imbalanced.unwrap();
        assert_eq!(proc, ProcessorId::new(0));
        assert_eq!(count, 2);
        let (proc, dur) = f.processors.longest_imbalanced.unwrap();
        assert_eq!(proc, ProcessorId::new(0));
        assert!(dur > 10.0);
        assert_eq!(f.processors.regions_per_processor[0].len(), 2);
    }

    #[test]
    fn activity_and_region_findings() {
        let f = findings_of(&sample(), RankingCriterion::Maximum);
        // Computation in region 1 is hugely spread but tiny; raw ID picks
        // it up through the weighted average anyway (p2p is also spread
        // in region 0 through the mix difference).
        assert!(f.most_imbalanced_activity.is_some());
        let (region, id) = f.most_imbalanced_region.unwrap();
        // Region 1 has [0.1, 0.1, 0.8] computation → very imbalanced.
        assert_eq!(region, RegionId::new(1));
        assert!(id > 0.3);
    }

    #[test]
    fn tuning_candidates_respect_criterion() {
        let max = findings_of(&sample(), RankingCriterion::Maximum);
        assert_eq!(max.tuning_candidates.len(), 1);
        let all = findings_of(&sample(), RankingCriterion::TopK(10));
        assert_eq!(all.tuning_candidates.len(), 2);
        // Candidates are ordered by decreasing SID.
        assert!(all.tuning_candidates[0].sid >= all.tuning_candidates[1].sid);
        // The heavy region is flagged as the program's heaviest.
        let heavy = all
            .tuning_candidates
            .iter()
            .find(|c| c.name == "heavy")
            .unwrap();
        assert!(heavy.is_heaviest);
    }

    #[test]
    fn balanced_program_has_zero_indices_but_still_reports() {
        let mut b = MeasurementsBuilder::new(2);
        let r = b.add_region("r");
        for p in 0..2 {
            b.record(r, ActivityKind::Computation, p, 1.0).unwrap();
        }
        let m = b.build().unwrap();
        let f = findings_of(&m, RankingCriterion::Maximum);
        let (_, id) = f.most_imbalanced_region.unwrap();
        assert_eq!(id, 0.0);
    }
}
