//! `limba` — the Load IMBalance Analysis suite.
//!
//! This facade crate re-exports the whole suite, a from-scratch
//! reproduction of *"Load Imbalance in Parallel Programs"* (Calzarossa,
//! Massari, Tessera — PACT 2003):
//!
//! * [`model`] — the `t_ijp` measurement model (regions × activities ×
//!   processors) and coarse-grain profiles;
//! * [`stats`] — indices of dispersion, majorization theory,
//!   standardization, and ranking criteria;
//! * [`cluster`] — k-means clustering of code regions;
//! * [`trace`] — event tracefiles and their reduction to measurements;
//! * [`mpisim`] — a discrete-event message-passing machine simulator;
//! * [`workloads`] — synthetic applications (CFD proxy, stencil,
//!   master–worker, pipeline, irregular) with imbalance injection;
//! * [`analysis`] — the paper's methodology: the processor / activity /
//!   code-region views, findings, and reports — plus the extensions the
//!   paper's future work calls for: counting-parameter views, imbalance
//!   evolution over time windows, severity-criteria studies, and
//!   hierarchical drill-down over nested regions;
//! * [`calibrate`] — inverse synthesis of measurement matrices from
//!   published marginals and dispersion targets;
//! * [`advisor`] — the closed-loop tuning advisor: a catalog of typed
//!   interventions, analytic gain prediction with majorization bounds,
//!   budgeted beam search, and simulate-verified recommendations;
//! * [`par`] — deterministic parallel execution primitives backing the
//!   batch analyzer, replication sweeps, and intra-report fan-out;
//! * [`guard`] — the supervised execution runtime: deadlines,
//!   cooperative cancellation, panic isolation with bounded retry, and
//!   checksummed checkpoint/resume for long-running sweeps;
//! * [`vfs`] — the filesystem abstraction behind the durability story:
//!   the small `Vfs` trait the checkpoint/spool/stream writers go
//!   through, an in-memory POSIX crash model, and a deterministic
//!   I/O fault injector (ENOSPC, EIO, short writes, failed renames,
//!   power cuts);
//! * [`stream`] — the streaming dataflow pipeline: composable
//!   producer/consumer stages over bounded channels of binary frames,
//!   so simulate → reduce → analyze runs without materializing the
//!   trace (bit-identical to the batch path);
//! * [`viz`] — text tables, pattern diagrams, and SVG output.
//!
//! # Quickstart
//!
//! ```
//! use limba::analysis::Analyzer;
//! use limba::calibrate::paper::paper_measurements;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The case study from the paper, reconstructed from its published data.
//! let measurements = paper_measurements()?;
//! let report = Analyzer::new().analyze(&measurements)?;
//! // Loop 1 is the heaviest region, computation the dominant activity.
//! assert_eq!(report.coarse.heaviest_region_name, "loop 1");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use limba_advisor as advisor;
pub use limba_analysis as analysis;
pub use limba_calibrate as calibrate;
pub use limba_cluster as cluster;
pub use limba_guard as guard;
pub use limba_model as model;
pub use limba_mpisim as mpisim;
pub use limba_par as par;
pub use limba_serve as serve;
pub use limba_stats as stats;
pub use limba_stream as stream;
pub use limba_trace as trace;
pub use limba_vfs as vfs;
pub use limba_viz as viz;
pub use limba_workloads as workloads;
