//! In-tree stand-in for the subset of the [`bytes`] crate API used by
//! the limba tracefile codec: little-endian cursor reads over `&[u8]`
//! ([`Buf`]), an append-only write buffer ([`BytesMut`]/[`BufMut`]), and
//! a frozen immutable byte container ([`Bytes`]).
//!
//! The build environment has no network access to crates.io, so this
//! crate keeps the workspace self-contained. Unlike the upstream crate
//! there is no reference counting or zero-copy splitting — `Bytes` is a
//! plain owned vector — which is all the binary trace codec needs.
//!
//! [`bytes`]: https://docs.rs/bytes

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);
    /// Copies `dst.len()` bytes into `dst` and advances past them.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential little-endian appends to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` reserved bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable owned byte container.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(300);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_f64_le(2.5);
        w.put_slice(b"xyz");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 300);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 2.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 3);
    }
}
