//! In-tree stand-in for the subset of the [`criterion`] benchmark
//! harness API used by the limba workspace: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! The build environment has no network access to crates.io, so this
//! crate keeps the workspace self-contained. Instead of criterion's
//! statistical analysis it runs a fixed warm-up, then times batches
//! until a wall-clock budget is spent, and reports the mean and best
//! time per iteration (plus derived throughput when configured). That
//! is deliberately simple but honest enough to compare alternatives at
//! the order-of-magnitude level, e.g. the `--jobs 1` vs `--jobs 4`
//! batch-analysis speedup this repository's benches exist to show.
//!
//! [`criterion`]: https://docs.rs/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(600);
/// Warm-up iterations before measurement starts.
const WARMUP_ITERS: u64 = 3;

/// Entry point of a benchmark binary; passed to every target function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for upstream compatibility; the shim's sample count is
    /// governed by a wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{id}", self.name), self.throughput, f);
        self
    }

    /// Runs one benchmark in the group with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_one(&format!("{}/{id}", self.name), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` identifier.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An identifier that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

/// Units processed per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to every benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    best: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive via
    /// [`black_box`].
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        let mut iters = 0u64;
        while total < MEASURE_BUDGET {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            total += elapsed;
            best = best.min(elapsed);
            iters += 1;
        }
        self.total = total;
        self.best = best;
        self.iters = iters;
    }
}

fn run_one<F>(name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("{name:<60} (no measurement: Bencher::iter never called)");
        return;
    }
    let mean = bencher.total / bencher.iters as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(
            " {:>12.0} elem/s",
            n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
        Throughput::Bytes(n) => format!(
            " {:>12.0} B/s",
            n as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE)
        ),
    });
    println!(
        "{name:<60} mean {:>12?}  best {:>12?}  ({} iters){}",
        mean,
        bencher.best,
        bencher.iters,
        rate.unwrap_or_default()
    );
}

/// Collects benchmark target functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($group:ident; $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $cfg;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.iters > 0);
        assert!(b.total > Duration::ZERO);
    }

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
