//! In-tree stand-in for the subset of the [`rand`] crate API that the
//! limba workspace uses: a seedable deterministic generator
//! ([`rngs::StdRng`]), uniform range sampling ([`Rng::gen_range`]), and
//! Fisher–Yates shuffling ([`seq::SliceRandom::shuffle`]).
//!
//! The build environment has no network access to crates.io, so this
//! crate exists to keep the workspace self-contained. The generator is
//! SplitMix64 (Steele, Lea, Flood 2014): a 64-bit state avalanche mixer
//! that passes BigCrush at this output width and — crucially for this
//! workspace — is trivially reproducible from a `u64` seed on every
//! platform. All sampling here is deterministic in the seed and the call
//! sequence, which the determinism test-suite relies on.
//!
//! [`rand`]: https://docs.rs/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself uniformly. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // The open-interval draw never returns exactly `hi`; for the
        // uniform-noise use cases here the distinction is immaterial.
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Debiased bounded integer draw (Lemire-style rejection by widening).
fn bounded_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling over the largest multiple of `span` that fits.
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Construction of a generator from seed material, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Unlike the upstream `StdRng` this makes an explicit stream
    /// guarantee: the same seed always produces the same sequence, on
    /// every platform and in every future version of this shim.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..4.0);
            assert!((0.25..4.0).contains(&x));
            let y: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&y));
            let z: f64 = rng.gen_range(-0.5..=0.5);
            assert!((-0.5..=0.5).contains(&z));
        }
    }

    #[test]
    fn integer_draws_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
