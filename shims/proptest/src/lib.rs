//! In-tree stand-in for the subset of the [`proptest`] crate API used by
//! the limba workspace: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter` combinators, range and tuple
//! strategies, `collection::vec`, `option::of`, `bool::ANY`, the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros, and a
//! deterministic test runner.
//!
//! The build environment has no network access to crates.io, so this
//! crate keeps the workspace self-contained. Two deliberate differences
//! from upstream:
//!
//! * **No shrinking.** A failing case reports the deterministic case
//!   seed instead of a minimized input; rerunning is exact because the
//!   runner derives every case from a hash of the test name and the case
//!   index, never from ambient entropy.
//! * **Fully deterministic by construction.** There is no persistence
//!   file and no environment-dependent seeding, which suits a workspace
//!   whose test suite proves bit-reproducibility claims.
//!
//! [`proptest`]: https://docs.rs/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Non-keyword module name mirroring `proptest::bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::{Rejection, TestRng};
    use rand::RngCore;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Any boolean, each with probability one half.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> Result<bool, Rejection> {
            Ok(rng.next_u64() & 1 == 1)
        }
    }
}

/// Collection strategies mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::{Rejection, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Anything usable as the size argument of [`vec`]: an exact length
    /// or a half-open range of lengths.
    pub trait IntoSizeRange {
        /// Inclusive lower and upper length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
            let len = if self.min == self.max {
                self.min
            } else {
                rng.gen_range(self.min..=self.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies mirroring `proptest::option`.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::{Rejection, TestRng};
    use rand::RngCore;

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` of the inner strategy or `None`, each with probability one
    /// half.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Option<S::Value>, Rejection> {
            if rng.next_u64() & 1 == 1 {
                Ok(Some(self.inner.generate(rng)?))
            } else {
                Ok(None)
            }
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test]` functions whose arguments are
/// `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    $( let $pat = $crate::Strategy::generate(&($strat), __rng)?; )+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Uniform choice among strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Like `assert!`, but reports the failure through the property runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but reports the failure through the property
/// runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Discards the current case (without failing) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}
