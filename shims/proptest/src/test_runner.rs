//! The deterministic case runner behind the [`proptest!`] macro.
//!
//! [`proptest!`]: crate::proptest

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The generator handed to strategies. SplitMix64 under the hood; every
/// case seed is derived from the test name and the case index, so runs
/// are bit-reproducible with no persistence files.
pub type TestRng = StdRng;

/// A discarded generation attempt (failed filter or assumption).
#[derive(Debug, Clone)]
pub struct Rejection(pub String);

/// Outcome of one executed case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case does not apply (`prop_assume!` / `prop_filter`); the
    /// runner draws a replacement case.
    Reject(String),
    /// The property is violated; the runner panics with this message.
    Fail(String),
}

impl From<Rejection> for TestCaseError {
    fn from(rejection: Rejection) -> Self {
        TestCaseError::Reject(rejection.0)
    }
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration that runs `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the no-shrinking shim fast
        // while still exercising a spread of shapes.
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a, used to give every test its own deterministic seed stream.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Executes `property` until `config.cases` cases are accepted.
///
/// # Panics
///
/// Panics when a case fails (with the case seed, so the failure can be
/// replayed exactly) or when too many consecutive attempts are rejected.
pub fn run<F>(config: &ProptestConfig, name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let max_attempts = (config.cases as u64).saturating_mul(20).max(1024);
    let mut accepted = 0u32;
    let mut attempt = 0u64;
    let mut last_reject = String::new();
    while accepted < config.cases {
        if attempt >= max_attempts {
            panic!(
                "property '{name}': gave up after {attempt} attempts with only \
                 {accepted}/{} accepted cases (last rejection: {last_reject})",
                config.cases
            );
        }
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        match property(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(reason)) => last_reject = reason,
            Err(TestCaseError::Fail(message)) => {
                panic!("property '{name}' failed (case seed {seed:#018x}): {message}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_configured_number_of_cases() {
        let mut count = 0;
        run(&ProptestConfig::with_cases(10), "counting", |_| {
            count += 1;
            Ok(())
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn rejections_are_retried() {
        let mut attempts = 0;
        run(&ProptestConfig::with_cases(5), "rejecting", |_| {
            attempts += 1;
            if attempts % 2 == 0 {
                Err(TestCaseError::Reject("every other".into()))
            } else {
                Ok(())
            }
        });
        assert!(attempts >= 9);
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic() {
        run(&ProptestConfig::with_cases(5), "failing", |_| {
            Err(TestCaseError::Fail("nope".into()))
        });
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn permanent_rejection_gives_up() {
        run(&ProptestConfig::with_cases(5), "starving", |_| {
            Err(TestCaseError::Reject("always".into()))
        });
    }
}
