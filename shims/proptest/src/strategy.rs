//! The [`Strategy`] trait and the combinators/adapters the workspace
//! uses.

use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleRange};

use crate::test_runner::{Rejection, TestRng};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply draws a value from a deterministic generator, or
/// rejects the attempt (from a failed filter).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    ///
    /// # Errors
    ///
    /// Returns [`Rejection`] when a filter refused the drawn value; the
    /// runner then retries with the next case seed.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and feeds it to `f` to obtain the
    /// strategy that produces the final value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values for which `f` returns false.
    fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }
}

/// Boxes a strategy for use in heterogeneous collections such as
/// [`Union`].
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Rejection> {
        (self.f)(self.inner.generate(rng)?).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        let value = self.inner.generate(rng)?;
        if (self.f)(&value) {
            Ok(value)
        } else {
            Err(Rejection(self.reason.clone()))
        }
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> Result<V, Rejection> {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(rng.gen_range(self.clone()))
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(rng.gen_range(self.clone()))
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
