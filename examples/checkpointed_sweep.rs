//! Checkpoint/resume: interrupt a 64-seed faulted CFD sweep midway,
//! then resume it from its checkpoint and verify the resumed output is
//! byte-identical to an uninterrupted run.
//!
//! ```sh
//! cargo run --example checkpointed_sweep
//! ```
//!
//! The same flow is available from the CLI:
//!
//! ```sh
//! limba simulate cfd --replications 64 --faults preset:flaky-network \
//!       --checkpoint sweep.ckpt --max-units 24   # exits 3 (partial)
//! limba simulate cfd --replications 64 --faults preset:flaky-network \
//!       --checkpoint sweep.ckpt --resume         # exits 0, full table
//! ```

use limba::guard::codec::{ByteReader, ByteWriter};
use limba::guard::{GuardError, JobError, PayloadCodec, SupervisedRun, Supervisor};
use limba::mpisim::{FaultPlan, MachineConfig, Simulator};
use limba::par::derive_seed;
use limba::workloads::{cfd::CfdConfig, Imbalance};

const SEEDS: usize = 64;
const ROOT_SEED: u64 = 2003;

/// One replication's observable result — exactly what its line in the
/// sweep table prints.
struct Row {
    seed: u64,
    makespan: f64,
    retried: u64,
}

struct RowCodec;

impl PayloadCodec<Row> for RowCodec {
    fn encode(&self, row: &Row) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(row.seed);
        w.put_f64(row.makespan); // stored by bit pattern: exact round-trip
        w.put_u64(row.retried);
        w.into_bytes()
    }

    fn decode(&self, bytes: &[u8]) -> Result<Row, GuardError> {
        let mut r = ByteReader::new(bytes);
        let row = Row {
            seed: r.get_u64("seed")?,
            makespan: r.get_f64("makespan")?,
            retried: r.get_u64("retried messages")?,
        };
        r.expect_end("sweep row")?;
        Ok(row)
    }
}

/// Runs replication `index` of the sweep. Everything flows from the
/// index — which run produced the row is unobservable, the foundation
/// of byte-identical resume.
fn replicate(index: usize) -> Result<Row, JobError> {
    let seed = derive_seed(ROOT_SEED, index as u64);
    let program = CfdConfig::new(8)
        .with_iterations(1)
        .with_imbalance(Imbalance::RandomJitter { amplitude: 0.25 })
        .with_seed(seed)
        .build_program()
        .map_err(|e| JobError::Fatal(e.to_string()))?;
    // A flaky network: 3% of transmission attempts dropped and retried
    // with exponential backoff, reseeded per replication.
    let plan = FaultPlan::new(derive_seed(7, index as u64)).with_message_loss(0.03, 4, 1e-4, 2.0);
    let out = Simulator::new(MachineConfig::new(8))
        .run_with_faults(&program, &plan)
        .map_err(|e| JobError::Fatal(e.to_string()))?;
    Ok(Row {
        seed,
        makespan: out.stats.makespan,
        retried: out.faults.retried_messages,
    })
}

/// Renders a run the way the CLI renders a sweep: one line per seed.
fn render(run: &SupervisedRun<Row>) -> String {
    let mut table = String::new();
    for (i, slot) in run.results.iter().enumerate() {
        table.push_str(&match slot {
            Some(Ok(row)) => format!(
                "{i:>3} {:>20} {:>10.4}s {:>4} retried\n",
                row.seed, row.makespan, row.retried
            ),
            Some(Err(failure)) => format!("{i:>3} error: {failure}\n"),
            None => format!("{i:>3} not run (interrupted)\n"),
        });
    }
    table
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let items: Vec<usize> = (0..SEEDS).collect();
    let fingerprint = limba::guard::config_fingerprint(&format!(
        "checkpointed-sweep|seeds={SEEDS}|root={ROOT_SEED}"
    ));
    let ckpt = std::env::temp_dir().join("limba-checkpointed-sweep.ckpt");
    std::fs::remove_file(&ckpt).ok();

    // The reference: the whole sweep in one uninterrupted run.
    let reference = Supervisor::new(4).run("sweep", fingerprint, &items, &RowCodec, |_, &i| {
        replicate(i)
    })?;
    println!(
        "reference run:   {} of {SEEDS} replications",
        reference.manifest.completed
    );

    // Interrupt: cap the invocation at 24 units, checkpointing each
    // completed one. In production the cap is a deadline or Ctrl-C —
    // the unit cap just makes the interruption reproducible here.
    let interrupted = Supervisor::new(4)
        .with_max_units(24)
        .with_checkpoint(&ckpt, false)
        .run("sweep", fingerprint, &items, &RowCodec, |_, &i| {
            replicate(i)
        })?;
    println!(
        "interrupted run: {} completed, {} not run ({})",
        interrupted.manifest.completed,
        interrupted.manifest.skipped,
        interrupted
            .manifest
            .stopped
            .map(|s| s.as_str())
            .unwrap_or("-"),
    );

    // Resume: the checkpoint replays the finished units, the rest run
    // fresh — at a different thread count than the interrupted run.
    let resumed = Supervisor::new(2).with_checkpoint(&ckpt, true).run(
        "sweep",
        fingerprint,
        &items,
        &RowCodec,
        |_, &i| replicate(i),
    )?;
    println!(
        "resumed run:     {} replayed from checkpoint, {} run fresh",
        resumed.manifest.cached, resumed.manifest.completed
    );

    // The point: the resumed table is byte-identical to the reference.
    assert_eq!(render(&resumed), render(&reference));
    println!("resumed output is byte-identical to the uninterrupted run");
    println!("\nmanifest:\n{}", resumed.manifest.to_json());

    std::fs::remove_file(&ckpt).ok();
    Ok(())
}
