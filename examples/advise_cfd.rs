//! The closed tuning loop on the CFD proxy: build a skewed scenario,
//! let the advisor propose and predict interventions, verify the top
//! candidates by re-simulation, and apply the winner — the workflow
//! behind `limba advise --workload cfd`.
//!
//! ```sh
//! cargo run --example advise_cfd
//! ```

use limba::advisor::{Advisor, Scenario};
use limba::mpisim::{MachineConfig, Simulator};
use limba::workloads::{cfd::CfdConfig, Imbalance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper-style skew: per-rank work grows linearly, so the last
    // rank bottlenecks every synchronized phase.
    let ranks = 16;
    let program = CfdConfig::new(ranks)
        .with_iterations(2)
        .with_imbalance(Imbalance::LinearSkew { spread: 0.4 })
        .build_program()?;
    let scenario = Scenario::new(program, MachineConfig::new(ranks))?;

    let advice = Advisor::new().with_top_k(3).advise(&scenario)?;
    print!("{}", limba::viz::advice::render_advice(&advice));

    // "Apply the fix": re-run the winning candidate and confirm the
    // verified gain reproduces exactly (everything is deterministic).
    let top = advice.candidates.first().expect("no recommendation");
    let verified = top.verification.as_ref().expect("top candidate unverified");
    let mut fixed = scenario.clone();
    for intervention in &top.interventions {
        fixed = intervention.apply(&fixed)?;
    }
    let rerun = Simulator::new(fixed.config.clone())
        .run(&fixed.program)?
        .stats
        .makespan;
    assert_eq!(
        rerun, verified.event_makespan,
        "verification must reproduce"
    );
    println!(
        "\napplied: {} -> makespan {:.6} s ({:+.2}% vs baseline)",
        top.labels.join(" + "),
        rerun,
        100.0 * (advice.baseline_makespan - rerun) / advice.baseline_makespan
    );
    assert!(rerun < advice.baseline_makespan, "no improvement");
    Ok(())
}
