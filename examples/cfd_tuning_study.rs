//! A tuning study on the CFD proxy: inject different work distributions,
//! measure how the methodology's indices respond, and verify that fixing
//! the imbalance recovers the balanced runtime — the workflow the paper's
//! introduction motivates ("tuning and performance debugging").
//!
//! ```sh
//! cargo run --example cfd_tuning_study
//! ```

use limba::analysis::compare::{compare_runs, Verdict};
use limba::analysis::Analyzer;
use limba::model::Measurements;
use limba::mpisim::{MachineConfig, Simulator};
use limba::stats::dispersion::DispersionKind;
use limba::workloads::{cfd::CfdConfig, Imbalance};

fn measure(imbalance: Imbalance) -> Result<(f64, Measurements), Box<dyn std::error::Error>> {
    let program = CfdConfig::new(16)
        .with_iterations(2)
        .with_imbalance(imbalance)
        .with_seed(7)
        .build_program()?;
    let out = Simulator::new(MachineConfig::new(16)).run(&program)?;
    let reduced = out.reduce()?;
    Ok((out.stats.makespan, reduced.measurements))
}

fn run(imbalance: Imbalance) -> Result<(f64, f64, String), Box<dyn std::error::Error>> {
    let (makespan, m) = measure(imbalance)?;
    let report = Analyzer::new().analyze(&m)?;
    let top = report
        .findings
        .tuning_candidates
        .first()
        .map(|c| (c.sid, c.name.clone()))
        .unwrap_or((0.0, "none".into()));
    Ok((makespan, top.0, top.1))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenarios: Vec<(&str, Imbalance)> = vec![
        ("balanced", Imbalance::None),
        ("linear skew 40%", Imbalance::LinearSkew { spread: 0.4 }),
        (
            "4 overloaded ranks ×2",
            Imbalance::BlockSkew {
                heavy: 4,
                factor: 2.0,
            },
        ),
        (
            "hotspot rank 9 ×3",
            Imbalance::Hotspot {
                rank: 9,
                factor: 3.0,
            },
        ),
        (
            "OS jitter ±25%",
            Imbalance::RandomJitter { amplitude: 0.25 },
        ),
    ];

    println!(
        "{:<24} {:>10} {:>12} {:>10}",
        "scenario", "makespan", "top SID_C", "candidate"
    );
    let mut balanced_makespan = None;
    for (name, imbalance) in scenarios {
        let (makespan, sid, candidate) = run(imbalance)?;
        if balanced_makespan.is_none() {
            balanced_makespan = Some(makespan);
        }
        println!("{name:<24} {makespan:>9.3}s {sid:>12.5} {candidate:>10}");
    }

    // "Repair": re-decompose the hotspot scenario so every rank gets
    // equal work again, then *verify the repair* with the run comparison
    // — the paper's "verification and validation of the achieved
    // performance" step.
    let (_, before) = measure(Imbalance::Hotspot {
        rank: 9,
        factor: 3.0,
    })?;
    let (fixed_makespan, after) = measure(Imbalance::None)?;
    let cmp = compare_runs(&before, &after, DispersionKind::Euclidean, 0.02)?;
    println!("\nrepair verification (hotspot → rebalanced):");
    println!("  whole-program speedup: {:.2}×", cmp.total_speedup);
    for delta in &cmp.regions {
        println!(
            "  {:<8} {:.3}s → {:.3}s ({:.2}×, ID_C {:.4} → {:.4}) — {:?}",
            delta.name,
            delta.before_seconds,
            delta.after_seconds,
            delta.speedup,
            delta.before_id,
            delta.after_id,
            delta.verdict
        );
    }
    assert!(cmp.total_speedup > 1.0, "the repair must pay off");
    assert!(
        cmp.regions.iter().all(|d| d.verdict != Verdict::Regressed),
        "no region may regress"
    );
    let balanced = balanced_makespan.expect("ran at least one scenario");
    assert!((fixed_makespan - balanced).abs() < 1e-9);
    println!(
        "\nrepaired makespan {fixed_makespan:.3}s matches the balanced baseline {balanced:.3}s"
    );
    Ok(())
}
